"""Ablation benchmark: exact vs independence-assumption selectivity.

Footnote 3 of the paper: "we have taken exact join selectivity values".
This ablation quantifies what that choice buys — the independence
assumption misestimates join cardinalities, degrading the planner's
relaxation predictions.
"""

from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine
from repro.metrics.quality import precision_at_k, required_relaxations
from repro.metrics.report import render_table


def _evaluate(workload, config, k=10, n_queries=12):
    engine = SpecQPEngine(workload.graph, workload.rules, config)
    truth = SpecQPEngine(workload.graph, workload.rules)
    precisions, exact_predictions = [], 0
    queries = workload.queries[:n_queries]
    for query in queries:
        spec = engine.query(query, k)
        true = truth.query_trinit(query, k)
        precisions.append(precision_at_k(spec.answers, true.answers))
        required = required_relaxations(workload.graph, query, true.answers)
        if frozenset(spec.plan.singletons) == required:
            exact_predictions += 1
    return {
        "precision": sum(precisions) / len(precisions),
        "prediction_accuracy": exact_predictions / len(queries),
    }


def test_ablation_selectivity_mode(benchmark, xkg_workload):
    configurations = [
        ("exact (paper)", EngineConfig(selectivity_mode="exact")),
        ("independence", EngineConfig(selectivity_mode="independence")),
    ]

    def run():
        return [
            (label, _evaluate(xkg_workload, config))
            for label, config in configurations
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ("selectivity", "precision", "prediction accuracy"),
            [
                (
                    label,
                    f"{r['precision']:.2f}",
                    f"{r['prediction_accuracy']:.2f}",
                )
                for label, r in results
            ],
            title="Ablation — join selectivity source (XKG)",
        )
    )
    exact = results[0][1]
    assert exact["precision"] >= 0.5
