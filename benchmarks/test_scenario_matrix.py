"""Benchmark: scenario packs through the executor matrix, identical answers.

The scenario packs are the coverage substrate: skewed hot-key traffic,
update-heavy mixes and adversarial shapes (boundary-tie runs, k >
result-count, empty match lists) that the single diverse benchmark
workload never produces.  This benchmark serves a representative pack
selection warm across tuple/block/auto and pins byte-identical answers
at full ``(bindings, score)`` granularity — including through each
pack's update stream — so the equivalence claim is made exactly where
tie resolution and edge-of-k handling are load-bearing.

No timing bar: scenario packs are deliberately small (correctness
coverage, not scale), so a throughput threshold would only measure
fixed costs.  Equivalence is always blocking; the timed run exists to
track the packs' serving cost over time in the benchmark tables.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_scenario
from repro.datasets.workload import Workload
from repro.kg.columnar import ColumnarGraph
from repro.service import WorkloadRunner

EXECUTORS = ("tuple", "block", "auto")

#: One base pack, the hot-key pack, and every adversarial pack — the
#: shapes where executor divergence would first show.
PACKS = (
    "commerce-base",
    "commerce-hot",
    "adversarial-ties",
    "adversarial-unselective",
    "adversarial-edge-k",
)


def columnar_workload(pack) -> Workload:
    """The pack served from its columnar conversion, so ``block``
    actually vectorizes instead of falling back to the tuple path."""
    return Workload(
        pack.workload.name,
        ColumnarGraph.from_graph(pack.workload.graph),
        pack.workload.rules,
        pack.workload.queries,
    )


@pytest.mark.parametrize("name", PACKS)
def test_scenario_pack_equivalence_across_executors(name):
    pack = build_scenario(name)
    workload = columnar_workload(pack)
    batch = list(workload.queries)
    rows = {}
    runners = {}
    for executor in EXECUTORS:
        runner = WorkloadRunner(
            workload, executor=executor, result_cache_capacity=0
        )
        runners[executor] = runner
        rows[executor] = [
            [(a.bindings, a.score) for a in runner.execute_query(q, k=pack.k)]
            for q in batch
        ]
    assert rows["block"] == rows["tuple"], name
    assert rows["auto"] == rows["tuple"], name

    if pack.updates:
        post = {}
        for executor in EXECUTORS:
            runner = runners[executor]
            runner.apply_updates(list(pack.updates))
            post[executor] = [
                [(a.bindings, a.score) for a in runner.execute_query(q, k=pack.k)]
                for q in batch
            ]
        assert post["block"] == post["tuple"], name
        assert post["auto"] == post["tuple"], name
        assert post["tuple"] != rows["tuple"], (
            f"{name}: update stream did not change any answer — the pack "
            "is not exercising invalidation"
        )


def test_scenario_matrix_serving_cost(benchmark):
    """Timed: the adversarial-ties pack warm-served under ``auto``."""
    pack = build_scenario("adversarial-ties")
    workload = columnar_workload(pack)
    runner = WorkloadRunner(workload, executor="auto")
    batch = list(workload.queries)
    runner.run(batch, k=pack.k, mode="warm")  # untimed warm-up

    report = benchmark.pedantic(
        lambda: runner.run(batch, k=pack.k, mode="warm"), rounds=1, iterations=1
    )
    print()
    print(report.render())
    assert report.n_queries == len(batch)
