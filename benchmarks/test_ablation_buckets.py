"""Ablation benchmark: histogram resolution (§4.5.2's remark).

The paper chooses 2-bucket histograms and notes multi-bucket histograms
would model the distribution more exactly at higher planning cost.  This
ablation sweeps 2-bucket vs 4- and 8-bucket planning on the XKG workload
and reports precision and planning time per configuration.
"""

import time

from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine
from repro.metrics.quality import precision_at_k
from repro.metrics.report import render_table


def _evaluate(workload, config, k=10, n_queries=12):
    engine = SpecQPEngine(workload.graph, workload.rules, config)
    truth = SpecQPEngine(workload.graph, workload.rules)
    queries = workload.queries[:n_queries]
    # Warm caches so planning time reflects steady state.
    for query in queries:
        engine.plan(query, k)
    precisions, plan_seconds = [], 0.0
    for query in queries:
        started = time.perf_counter()
        engine.plan(query, k)
        plan_seconds += time.perf_counter() - started
        spec = engine.query(query, k)
        true = truth.query_trinit(query, k)
        precisions.append(precision_at_k(spec.answers, true.answers))
    return {
        "precision": sum(precisions) / len(precisions),
        "plan_ms_per_query": 1000 * plan_seconds / len(queries),
    }


def test_ablation_histogram_buckets(benchmark, xkg_workload):
    configurations = [
        ("2-bucket (paper)", EngineConfig()),
        ("4-bucket", EngineConfig(histogram_kind="n-bucket", n_buckets=4)),
        ("8-bucket", EngineConfig(histogram_kind="n-bucket", n_buckets=8)),
    ]

    def run():
        return [
            (label, _evaluate(xkg_workload, config))
            for label, config in configurations
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ("configuration", "precision", "plan ms/query"),
            [
                (label, f"{r['precision']:.2f}", f"{r['plan_ms_per_query']:.1f}")
                for label, r in results
            ],
            title="Ablation — histogram resolution (XKG)",
        )
    )
    two_bucket = results[0][1]
    eight_bucket = results[2][1]
    # The paper's trade-off: finer histograms cost more planning time.
    assert eight_bucket["plan_ms_per_query"] >= two_bucket["plan_ms_per_query"]
    assert two_bucket["precision"] >= 0.5
