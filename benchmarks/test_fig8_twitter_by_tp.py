"""Benchmark: regenerate Figure 8 — Twitter runtime and memory, T vs S,
grouped by the number of triple patterns (2 or 3), k ∈ {10,15,20}.

Shape to reproduce: S ≤ T on average; the sparse-match regime keeps many
relaxations, so the margins are smaller than on XKG.
"""

from repro.experiments.figures import figure_efficiency_by_patterns, render


def test_fig8_twitter_by_tp(benchmark, twitter_session):
    groups = benchmark.pedantic(
        lambda: figure_efficiency_by_patterns(twitter_session),
        rounds=1,
        iterations=1,
    )
    print()
    print(render(twitter_session, "patterns", "Figure 8"))

    assert {g.group for g in groups} <= {2, 3}
    total_t_objects = sum(g.trinit_objects * g.n_queries for g in groups)
    total_s_objects = sum(g.spec_objects * g.n_queries for g in groups)
    assert total_s_objects <= total_t_objects * 1.05
