"""Benchmark: binary snapshot load vs TSV parse at a million triples.

The columnar storage subsystem's claim is that a graph should load at
disk speed, not at Python-object-churn speed: a snapshot adopts the
dictionary-encoded columns as-is (validated, never reparsed), while TSV
parse pays a Triple object and dict insertion per line.  The shape to
show: snapshot load at least 10x faster than TSV parse on the same
million-triple graph, with both loads answering queries identically.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import generate_scaled_graph
from repro.kg import TriplePattern, Variable
from repro.kg import storage

#: The headline scale from SCALE_PROFILES; see datasets/synthetic.py.
PROFILE = "million"
MIN_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def million_graph():
    return generate_scaled_graph(PROFILE, seed=17)


@pytest.fixture(scope="module")
def stored_paths(million_graph, tmp_path_factory):
    root = tmp_path_factory.mktemp("snapshots")
    tsv_path = root / "million.tsv"
    snapshot_path = root / "million.npz"
    storage.save_tsv(million_graph, tsv_path)
    storage.save_snapshot(million_graph, snapshot_path)
    return tsv_path, snapshot_path


def test_snapshot_load_10x_faster_than_tsv_parse(million_graph, stored_paths):
    tsv_path, snapshot_path = stored_paths

    start = time.perf_counter()
    from_tsv = storage.load_tsv(tsv_path)
    tsv_seconds = time.perf_counter() - start

    start = time.perf_counter()
    from_snapshot = storage.load_snapshot(snapshot_path)
    snapshot_seconds = time.perf_counter() - start

    print(
        f"\n{PROFILE}: tsv parse {tsv_seconds:.2f}s, "
        f"snapshot load {snapshot_seconds:.2f}s, "
        f"speed-up {tsv_seconds / snapshot_seconds:.1f}x"
    )
    assert from_tsv.size == from_snapshot.size == million_graph.size
    assert tsv_seconds >= MIN_SPEEDUP * snapshot_seconds, (
        f"snapshot load should be >= {MIN_SPEEDUP:.0f}x faster than TSV parse: "
        f"tsv={tsv_seconds:.2f}s snapshot={snapshot_seconds:.2f}s "
        f"({tsv_seconds / snapshot_seconds:.1f}x)"
    )

    # Both loads must be the same graph: spot-check raw scores and one
    # full Definition-5 match list on a heavily used predicate.
    store = million_graph.store
    terms = store.term_list()
    for row in range(0, store.n_triples, store.n_triples // 97):
        s = terms[store.subjects[row]]
        p = terms[store.predicates[row]]
        o = terms[store.objects[row]]
        assert from_tsv.score_of(s, p, o) == from_snapshot.score_of(s, p, o)

    pattern = TriplePattern(Variable("s"), terms[store.predicates[0]], Variable("o"))
    tsv_list = from_tsv.match_list(pattern)
    snapshot_list = from_snapshot.match_list(pattern)
    assert tsv_list.triples == snapshot_list.triples
    assert tsv_list.normalized_scores == snapshot_list.normalized_scores


@pytest.fixture(scope="module")
def packed_path(million_graph, tmp_path_factory):
    root = tmp_path_factory.mktemp("packed")
    path = root / "million.kg2"
    storage.save_snapshot_v2(million_graph, path)
    return path


def test_v2_cold_attach_10x_faster_than_npz_load(
    million_graph, stored_paths, packed_path
):
    """The v2 claim: attach time is O(ms), independent of graph size.

    The ``.npz`` loader decompresses and validates every column before
    the first query can run; ``load_snapshot_v2`` parses one JSON
    manifest and maps six sections.  The asserted bar is >= 10x; the
    observed gap at a million triples is far larger (ms vs seconds) —
    re-measure with this benchmark rather than trusting prose.
    """
    _, snapshot_path = stored_paths

    start = time.perf_counter()
    from_npz = storage.load_snapshot(snapshot_path)
    npz_seconds = time.perf_counter() - start

    start = time.perf_counter()
    attached = storage.load_snapshot_v2(packed_path)
    attach_seconds = time.perf_counter() - start

    print(
        f"\n{PROFILE}: npz load {npz_seconds * 1e3:.1f}ms, "
        f"v2 attach {attach_seconds * 1e3:.1f}ms, "
        f"speed-up {npz_seconds / attach_seconds:.1f}x"
    )
    assert attached.size == from_npz.size == million_graph.size
    assert npz_seconds >= MIN_SPEEDUP * attach_seconds, (
        f"v2 attach should be >= {MIN_SPEEDUP:.0f}x faster than npz load: "
        f"npz={npz_seconds:.3f}s attach={attach_seconds:.3f}s "
        f"({npz_seconds / attach_seconds:.1f}x)"
    )

    # Attach speed means nothing if the graphs differ: spot-check scores
    # and one full Definition-5 match list against the npz backend.
    store = million_graph.store
    terms = store.term_list()
    for row in range(0, store.n_triples, store.n_triples // 97):
        s = terms[store.subjects[row]]
        p = terms[store.predicates[row]]
        o = terms[store.objects[row]]
        assert attached.score_of(s, p, o) == from_npz.score_of(s, p, o)

    pattern = TriplePattern(Variable("s"), terms[store.predicates[0]], Variable("o"))
    assert (
        attached.match_list(pattern).triples
        == from_npz.match_list(pattern).triples
    )


def test_v2_file_not_larger_than_npz_by_much(stored_paths, packed_path):
    """Raw uncompressed sections cost some disk vs the deflated npz; the
    contiguity that buys page-cache-friendly attach must stay bounded."""
    import os

    _, snapshot_path = stored_paths
    npz_bytes = os.path.getsize(snapshot_path)
    kg2_bytes = os.path.getsize(packed_path)
    print(f"\nnpz {npz_bytes / 1e6:.1f}MB vs kg2 {kg2_bytes / 1e6:.1f}MB")
    assert kg2_bytes < 4 * npz_bytes
