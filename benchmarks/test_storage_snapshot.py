"""Benchmark: binary snapshot load vs TSV parse at a million triples.

The columnar storage subsystem's claim is that a graph should load at
disk speed, not at Python-object-churn speed: a snapshot adopts the
dictionary-encoded columns as-is (validated, never reparsed), while TSV
parse pays a Triple object and dict insertion per line.  The shape to
show: snapshot load at least 10x faster than TSV parse on the same
million-triple graph, with both loads answering queries identically.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import generate_scaled_graph
from repro.kg import TriplePattern, Variable
from repro.kg import storage

#: The headline scale from SCALE_PROFILES; see datasets/synthetic.py.
PROFILE = "million"
MIN_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def million_graph():
    return generate_scaled_graph(PROFILE, seed=17)


@pytest.fixture(scope="module")
def stored_paths(million_graph, tmp_path_factory):
    root = tmp_path_factory.mktemp("snapshots")
    tsv_path = root / "million.tsv"
    snapshot_path = root / "million.npz"
    storage.save_tsv(million_graph, tsv_path)
    storage.save_snapshot(million_graph, snapshot_path)
    return tsv_path, snapshot_path


def test_snapshot_load_10x_faster_than_tsv_parse(million_graph, stored_paths):
    tsv_path, snapshot_path = stored_paths

    start = time.perf_counter()
    from_tsv = storage.load_tsv(tsv_path)
    tsv_seconds = time.perf_counter() - start

    start = time.perf_counter()
    from_snapshot = storage.load_snapshot(snapshot_path)
    snapshot_seconds = time.perf_counter() - start

    print(
        f"\n{PROFILE}: tsv parse {tsv_seconds:.2f}s, "
        f"snapshot load {snapshot_seconds:.2f}s, "
        f"speed-up {tsv_seconds / snapshot_seconds:.1f}x"
    )
    assert from_tsv.size == from_snapshot.size == million_graph.size
    assert tsv_seconds >= MIN_SPEEDUP * snapshot_seconds, (
        f"snapshot load should be >= {MIN_SPEEDUP:.0f}x faster than TSV parse: "
        f"tsv={tsv_seconds:.2f}s snapshot={snapshot_seconds:.2f}s "
        f"({tsv_seconds / snapshot_seconds:.1f}x)"
    )

    # Both loads must be the same graph: spot-check raw scores and one
    # full Definition-5 match list on a heavily used predicate.
    store = million_graph.store
    terms = store.term_list()
    for row in range(0, store.n_triples, store.n_triples // 97):
        s = terms[store.subjects[row]]
        p = terms[store.predicates[row]]
        o = terms[store.objects[row]]
        assert from_tsv.score_of(s, p, o) == from_snapshot.score_of(s, p, o)

    pattern = TriplePattern(Variable("s"), terms[store.predicates[0]], Variable("o"))
    tsv_list = from_tsv.match_list(pattern)
    snapshot_list = from_snapshot.match_list(pattern)
    assert tsv_list.triples == snapshot_list.triples
    assert tsv_list.normalized_scores == snapshot_list.normalized_scores
