"""Benchmark: regenerate Figure 7 — XKG runtime and memory, T vs S,
grouped by the number of triple patterns *relaxed by Spec-QP*.

Shape to reproduce: the T/S gap is widest when few patterns are relaxed
(the join group does plain rank joins) and vanishes — runtime slightly
inverts, due to planning overhead — when every pattern is relaxed.
"""

from repro.experiments.figures import figure_efficiency_by_relaxed, render


def test_fig7_xkg_by_relaxed(benchmark, xkg_session):
    groups = benchmark.pedantic(
        lambda: figure_efficiency_by_relaxed(xkg_session), rounds=1, iterations=1
    )
    print()
    print(render(xkg_session, "relaxed", "Figure 7"))

    assert groups
    # Within each k: memory gain at the lowest relaxed-count group must be
    # at least the gain at the highest group (the paper's closing-gap shape).
    for k in xkg_session.ks:
        k_groups = sorted(
            (g for g in groups if g.k == k), key=lambda g: g.group
        )
        if len(k_groups) >= 2:
            low, high = k_groups[0], k_groups[-1]
            gain_low = low.trinit_objects / max(low.spec_objects, 1.0)
            gain_high = high.trinit_objects / max(high.spec_objects, 1.0)
            assert gain_low >= gain_high * 0.9, (
                f"k={k}: memory gain did not shrink with more relaxed "
                f"patterns ({gain_low:.2f} vs {gain_high:.2f})"
            )
    # When everything is relaxed the plans coincide: objects equal.
    for g in groups:
        max_patterns = 4
        if g.group == max_patterns:
            assert abs(g.spec_objects - g.trinit_objects) / g.trinit_objects < 0.05
