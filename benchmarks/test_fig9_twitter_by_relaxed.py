"""Benchmark: regenerate Figure 9 — Twitter runtime and memory, T vs S,
grouped by the number of triple patterns relaxed by Spec-QP.

Shape to reproduce: same closing-gap behaviour as Figure 7; for queries
where all patterns are relaxed, Spec-QP's plan equals TriniT's, so the
memory numbers coincide and runtime differs only by planning overhead.
"""

from repro.experiments.figures import figure_efficiency_by_relaxed, render


def test_fig9_twitter_by_relaxed(benchmark, twitter_session):
    groups = benchmark.pedantic(
        lambda: figure_efficiency_by_relaxed(twitter_session),
        rounds=1,
        iterations=1,
    )
    print()
    print(render(twitter_session, "relaxed", "Figure 9"))

    assert groups
    for g in groups:
        # Fully-relaxed 3-pattern queries: identical plans -> near-equal
        # object counts (§4.6.2's observation).
        if g.group == 3:
            assert abs(g.spec_objects - g.trinit_objects) / max(
                g.trinit_objects, 1.0
            ) < 0.05
