"""Benchmark: regenerate Table 2 — precision (= recall) per dataset and k.

Paper's numbers:      k=10   k=15   k=20
  XKG                 0.70   0.88   0.91
  Twitter             0.72   0.78   0.80

Shape to reproduce: precision in the ~0.7–0.95 band on both datasets.
"""

from repro.experiments import table2


def test_table2_xkg(benchmark, xkg_session):
    rows = benchmark.pedantic(
        lambda: table2.table2_precision(xkg_session), rounds=1, iterations=1
    )
    print()
    print(table2.render(xkg_session))
    for row in rows:
        assert 0.0 <= row.precision <= 1.0
    mean = sum(r.precision for r in rows) / len(rows)
    assert mean >= 0.6, f"precision collapsed: {mean:.2f}"


def test_table2_twitter(benchmark, twitter_session):
    rows = benchmark.pedantic(
        lambda: table2.table2_precision(twitter_session), rounds=1, iterations=1
    )
    print()
    print(table2.render(twitter_session))
    mean = sum(r.precision for r in rows) / len(rows)
    assert mean >= 0.6, f"precision collapsed: {mean:.2f}"
