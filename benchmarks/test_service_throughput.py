"""Benchmark: batch serving throughput, cold vs warm shared caches.

The service layer's claim is that workload-scale execution amortises the
statistics catalog, the shape indexes, the sorted match lists and the
PLANGEN decisions across queries.  The control (``mode="cold"``) rebuilds
all of that per query — the cost the single-query path pays.  The shape to
show: warm throughput at least 2× cold on the same ≥100-query batch, with
identical answers either way.
"""

from __future__ import annotations

import pytest

from repro.datasets import XKGConfig, generate_xkg
from repro.service import WorkloadRunner

#: Batch size: one full pass over the query set per round, several rounds,
#: mirroring served traffic where the same queries recur.
BATCH = 100


@pytest.fixture(scope="module")
def service_workload():
    return generate_xkg(
        XKGConfig(n_entities=2400, n_queries=16, n_topics=120, seed=11)
    )


def test_warm_cache_doubles_throughput(benchmark, service_workload):
    runner = WorkloadRunner(service_workload)
    queries = service_workload.stretched(BATCH)

    comparison = benchmark.pedantic(
        lambda: runner.compare(queries, k=5), rounds=1, iterations=1
    )
    cold = comparison["cold"]
    warm = comparison["warm"]
    print()
    print(cold.render())
    print()
    print(warm.render())
    print(f"\nwarm-over-cold speed-up: {comparison['speedup']:.2f}x")

    # Caches must not change what the engine answers.
    assert [o.n_answers for o in warm.outcomes] == [
        o.n_answers for o in cold.outcomes
    ]
    assert [round(o.top_score, 9) for o in warm.outcomes] == [
        round(o.top_score, 9) for o in cold.outcomes
    ]

    assert warm.n_queries == cold.n_queries == BATCH
    assert warm.cache is not None and warm.cache.hit_rate > 0.5
    assert comparison["speedup"] >= 2.0, (
        f"warm cache should at least double throughput: "
        f"cold={cold.queries_per_second:.1f} qps, "
        f"warm={warm.queries_per_second:.1f} qps"
    )
