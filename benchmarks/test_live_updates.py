"""Benchmark: the delta write path vs full rebuild, and post-compaction reads.

Two claims pin the live-update subsystem's performance:

* **Write amplification** — absorbing a 1% update batch on the medium
  profile (100k triples) through the :class:`LiveGraph` delta path must
  be at least **10x faster** than the freeze-thaw alternative (thaw to an
  object graph, apply, re-freeze to columns), because the delta path
  touches only the mutated keys while the rebuild touches every row.
* **Read parity after compaction** — once the delta is folded into a
  fresh base, warm serving throughput over the live wrapper must be
  within **10%** of the static sharded backend: the overlay's empty-delta
  fast paths delegate straight to the base, so steady-state reads pay
  (almost) nothing for writability.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import generate_scaled_graph
from repro.datasets.workload import Workload
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import ShardedGraph
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RuleSet
from repro.service import WorkloadRunner

N_SHARDS = 4
CACHE_CAPACITY = 8
BATCH = 120
K = 10
#: 1% of the medium profile's 100k triples.
UPDATE_FRACTION = 0.01


@pytest.fixture(scope="module")
def medium_graph():
    return generate_scaled_graph("medium", seed=7)


def one_percent_batch(graph: ColumnarGraph) -> list[GraphUpdate]:
    """A 1% mixed batch: fresh adds, score overwrites and removes."""
    import numpy as np

    n = max(1, int(graph.size * UPDATE_FRACTION))
    store = graph.store
    existing = store.decode_rows(np.arange(0, n // 2 * 3, 3))
    batch: list[GraphUpdate] = []
    for index, triple in enumerate(existing):
        if index % 2:
            batch.append(GraphUpdate.remove(*triple.spo))
        else:
            batch.append(GraphUpdate.add(*triple.spo, triple.score + 1.0))
    while len(batch) < n:
        index = len(batch)
        batch.append(
            GraphUpdate.add(f"fresh{index:05d}", "p000", f"e{index:05d}", 5.0)
        )
    return batch[:n]


def test_delta_write_path_beats_full_rebuild(benchmark, medium_graph):
    batch = one_percent_batch(medium_graph)
    assert len(batch) == 1000

    started = time.perf_counter()
    thawed = medium_graph.thaw()
    for update in batch:
        if update.op == "+":
            thawed.add_triple(update.triple())
        else:
            thawed.remove(*update.spo)
    rebuilt = ColumnarGraph.from_graph(thawed)
    rebuild_seconds = time.perf_counter() - started

    def delta_apply():
        live = LiveGraph(medium_graph)
        live.apply_updates(batch)
        return live

    live = benchmark.pedantic(delta_apply, rounds=1, iterations=1)
    delta_seconds = benchmark.stats.stats.mean

    assert live.size == rebuilt.size
    speedup = rebuild_seconds / delta_seconds
    print(
        f"\n1% batch ({len(batch)} updates) on medium: "
        f"rebuild {rebuild_seconds * 1e3:.1f} ms, "
        f"delta {delta_seconds * 1e3:.1f} ms, {speedup:.1f}x"
    )
    assert speedup >= 10, (
        f"delta path should beat full rebuild by >= 10x, got {speedup:.1f}x "
        f"(rebuild {rebuild_seconds:.3f}s, delta {delta_seconds:.3f}s)"
    )

    # And compaction folds back into a store the rebuild path agrees with.
    live.compact()
    assert live.base.size == rebuilt.size


def diverse_queries() -> list[TriplePatternQuery]:
    subject, obj = Variable("s"), Variable("o")
    queries = [
        TriplePatternQuery(
            (TriplePattern(subject, f"p{i:03d}", obj),), name=f"pred-{i}"
        )
        for i in range(32)
    ]
    queries += [
        TriplePatternQuery(
            (TriplePattern(subject, f"p{i:03d}", f"e{j:05d}"),),
            name=f"obj-{i}-{j}",
        )
        for i, j in [(0, 0), (1, 1), (2, 0), (0, 2), (3, 1), (1, 0), (2, 2), (4, 0)]
    ]
    return queries


def warm_qps(graph, queries) -> float:
    """Best warm batch throughput of three runs over a pre-built graph."""
    workload = Workload("live-bench", graph, RuleSet(), queries)
    runner = WorkloadRunner(workload, cache_capacity=CACHE_CAPACITY)
    batch = workload.stretched(BATCH)
    best = 0.0
    for _ in range(3):
        report = runner.run(batch, k=K, mode="warm")
        best = max(best, report.queries_per_second)
    return best


def test_compacted_live_reads_match_static_sharded(benchmark, medium_graph):
    queries = diverse_queries()
    static = ShardedGraph(medium_graph.store, N_SHARDS, strategy="score-range")

    live = LiveGraph(
        ShardedGraph(medium_graph.store, N_SHARDS, strategy="score-range")
    )
    live.apply_updates(one_percent_batch(medium_graph))
    live.compact()
    assert live.delta_size == 0

    static_qps = warm_qps(static, queries)
    live_qps = benchmark.pedantic(
        lambda: warm_qps(live, queries), rounds=1, iterations=1
    )

    ratio = live_qps / static_qps
    print(
        f"\nwarm read qps: static sharded {static_qps:.1f}, "
        f"compacted live {live_qps:.1f} ({ratio:.2f}x)"
    )
    assert ratio >= 0.9, (
        f"compacted live serving should stay within 10% of the static "
        f"sharded backend: static {static_qps:.1f} qps, live {live_qps:.1f} qps"
    )
