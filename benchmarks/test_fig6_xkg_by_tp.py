"""Benchmark: regenerate Figure 6 — XKG runtime and memory, TriniT (T)
vs Spec-QP (S), grouped by the number of triple patterns, k ∈ {10,15,20}.

Shape to reproduce: S ≤ T in both runtime and answer objects on average,
with the margin growing with query size and narrowing as k grows.
"""

from repro.experiments.figures import figure_efficiency_by_patterns, render


def test_fig6_xkg_by_tp(benchmark, xkg_session):
    groups = benchmark.pedantic(
        lambda: figure_efficiency_by_patterns(xkg_session), rounds=1, iterations=1
    )
    print()
    print(render(xkg_session, "patterns", "Figure 6"))

    assert groups, "no groups produced"
    # Aggregate shape check: Spec-QP does not do more work than TriniT.
    total_t_objects = sum(g.trinit_objects * g.n_queries for g in groups)
    total_s_objects = sum(g.spec_objects * g.n_queries for g in groups)
    assert total_s_objects <= total_t_objects * 1.02
    total_t_time = sum(g.trinit_seconds * g.n_queries for g in groups)
    total_s_time = sum(g.spec_seconds * g.n_queries for g in groups)
    assert total_s_time <= total_t_time * 1.15, (
        f"Spec-QP slower overall: S={total_s_time:.2f}s T={total_t_time:.2f}s"
    )
