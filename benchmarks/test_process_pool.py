"""Benchmark: multiprocess serving — one physical graph copy, RSS-verified.

``WorkloadRunner(worker_model="process")`` claims three things:

1. **Answers are byte-identical** to thread serving (always blocking).
2. **One physical copy of the graph**: every worker mmap-attaches the
   same v2 snapshot, so the column pages are shared through the page
   cache.  Verified from ``/proc/<pid>/smaps``: each worker's mapping of
   the snapshot file must hold zero private pages, and the *combined*
   proportional RSS (Pss) of those mappings across all workers must stay
   under 1.5x the file size — i.e. 4 workers resident ~1 copy, where
   private per-worker loads would cost 4x.  (Per-worker *serving* state —
   interpreter, catalog, caches — is deliberately private; the sharing
   claim is about the graph columns, which dominate at scale.)
3. **True multi-core throughput**: with >= 4 cores, 4 process workers
   beat the 4-thread GIL-bound baseline by >= 2x on warm traffic.  The
   timing assertion is skipped on smoke scale and on boxes without the
   cores to show it (this container may have 1); qps is printed either
   way, and cold fleet attach must stay sub-second at every scale.

Set ``SPEC_QP_BENCH_PROFILE=smoke`` for the CI-scale run (equivalence
and sharing assertions stay blocking; timing is informational).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import generate_scaled_graph
from repro.datasets.workload import Workload
from repro.kg import storage
from repro.relax.rules import RuleSet
from repro.service import WorkloadRunner

from test_block_executor import diverse_queries

PROFILE = os.environ.get("SPEC_QP_BENCH_PROFILE", "medium")
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)
ENFORCE_TIMING = PROFILE != "smoke" and CORES >= 4

N_WORKERS = 4
CACHE_CAPACITY = 8
BATCH = 80 if PROFILE != "smoke" else 40
K = 10
MIN_SPEEDUP = 2.0
MAX_COMBINED_OVER_SINGLE = 1.5


def smaps_of_mapping(pid: int, path: str) -> dict[str, int]:
    """Aggregated smaps counters (kB) for *pid*'s mappings of *path*."""
    totals = {"Rss": 0, "Pss": 0, "Private_Dirty": 0, "Private_Clean": 0}
    in_mapping = False
    with open(f"/proc/{pid}/smaps") as handle:
        for line in handle:
            if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
                in_mapping = line.rstrip("\n").endswith(path)
                continue
            if not in_mapping:
                continue
            key, _, rest = line.partition(":")
            if key in totals:
                totals[key] += int(rest.split()[0])
    return totals


@pytest.fixture(scope="module")
def served_workload(tmp_path_factory):
    """The bench workload, its graph attached from a v2 snapshot — so the
    fleet shares the *file* (no per-run export) and the smaps check has a
    stable path to look for."""
    graph = generate_scaled_graph(PROFILE, seed=7)
    path = tmp_path_factory.mktemp("fleet") / f"{PROFILE}.kg2"
    storage.save_snapshot_v2(graph, path)
    attached = storage.load_snapshot_v2(path, name=f"pool-{PROFILE}")
    return (
        Workload(f"pool-{PROFILE}", attached, RuleSet(), diverse_queries(32)),
        str(path),
    )


def test_process_pool_serving(served_workload):
    workload, snapshot_path = served_workload
    batch = workload.stretched(BATCH)

    thread_runner = WorkloadRunner(
        workload,
        n_workers=N_WORKERS,
        cache_capacity=CACHE_CAPACITY,
        result_cache_capacity=0,
    )
    thread_runner.run(batch, k=K)  # untimed prime
    thread_report = thread_runner.run(batch, k=K)

    with WorkloadRunner(
        workload,
        n_workers=N_WORKERS,
        worker_model="process",
        cache_capacity=CACHE_CAPACITY,
        result_cache_capacity=0,
    ) as process_runner:
        attach_started = time.perf_counter()
        first = process_runner.run(batch, k=K)  # fleet spawn + worker attach
        cold_attach_seconds = time.perf_counter() - attach_started
        process_report = process_runner.run(batch, k=K)
        assert process_runner._proc_snapshot == snapshot_path  # shared as-is

        speedup = (
            process_report.queries_per_second
            / thread_report.queries_per_second
        )
        print(
            f"\n{PROFILE} ({CORES} cores): "
            f"{N_WORKERS} threads {thread_report.queries_per_second:.1f} qps, "
            f"{N_WORKERS} processes {process_report.queries_per_second:.1f} qps "
            f"({speedup:.2f}x), cold fleet attach {cold_attach_seconds:.2f}s, "
            f"worker attach {first.extras['process_attach_seconds'] * 1e3:.1f}ms"
        )

        # 1. Byte-identity: same outcome rows batch-wide, same bindings
        # on a spot-checked slice (bindings don't travel in reports).
        assert [
            (o.query_name, o.n_answers, o.top_score, o.plan)
            for o in process_report.outcomes
        ] == [
            (o.query_name, o.n_answers, o.top_score, o.plan)
            for o in thread_report.outcomes
        ]
        for query in workload.queries[:8]:
            assert [
                (a.bindings, a.score)
                for a in process_runner.execute_query(query, K)
            ] == [
                (a.bindings, a.score)
                for a in thread_runner.execute_query(query, K)
            ]

        # 2. One physical copy: the snapshot mapping is read-only shared
        # in every worker, and the combined proportional RSS of those
        # mappings stays ~one file, not one per worker.
        pids = process_report.extras["process_worker_pids"]
        assert len(pids) >= 2  # the fleet really fanned out
        file_kb = os.path.getsize(snapshot_path) / 1024
        combined_pss_kb = 0.0
        touched = 0
        for pid in pids:
            mapping = smaps_of_mapping(pid, snapshot_path)
            assert mapping["Private_Dirty"] == 0, (pid, mapping)
            combined_pss_kb += mapping["Pss"]
            touched += mapping["Rss"] > 0
        print(
            f"snapshot {file_kb / 1024:.1f}MB; combined worker Pss of its "
            f"mappings {combined_pss_kb / 1024:.1f}MB "
            f"({combined_pss_kb / file_kb:.2f}x one copy, "
            f"{len(pids)} workers, {touched} touched it)"
        )
        assert touched == len(pids)  # every worker served off the mmap
        assert combined_pss_kb < MAX_COMBINED_OVER_SINGLE * file_kb, (
            f"{len(pids)} workers should share one physical copy: combined "
            f"Pss {combined_pss_kb:.0f}kB vs file {file_kb:.0f}kB"
        )

        # 3. Throughput and attach latency.
        assert first.extras["process_attach_seconds"] < 1.0  # O(ms) claim
        if ENFORCE_TIMING:
            assert speedup >= MIN_SPEEDUP, (
                f"{N_WORKERS} process workers should beat {N_WORKERS} "
                f"threads by >= {MIN_SPEEDUP}x on {CORES} cores: "
                f"thread={thread_report.queries_per_second:.1f} qps, "
                f"process={process_report.queries_per_second:.1f} qps"
            )
        else:
            print(
                "timing assertion skipped "
                f"(profile={PROFILE}, cores={CORES}; needs medium + >=4 cores)"
            )
