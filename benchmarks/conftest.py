"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures on a
benchmark-scale synthetic workload (smaller than the default CLI scale so
the whole suite stays in minutes; run ``spec-qp all --scale default`` for
fuller numbers).  Sessions are session-scoped: the per-query engine runs
are computed once and shared, mirroring how the paper reports one run of
each system per query.
"""

from __future__ import annotations

import pytest

from repro.datasets import TwitterConfig, XKGConfig, generate_twitter, generate_xkg
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol

#: k values the paper sweeps.
PAPER_KS = (10, 15, 20)


@pytest.fixture(scope="session")
def xkg_workload():
    return generate_xkg(
        XKGConfig(
            n_domains=6,
            types_per_domain=14,
            n_entities=1200,
            n_topics=80,
            n_queries=30,
            seed=42,
        )
    )


@pytest.fixture(scope="session")
def twitter_workload():
    return generate_twitter(
        TwitterConfig(
            n_tweets=2500,
            n_trends=15,
            vocabulary_per_trend=25,
            n_queries=24,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def xkg_session(xkg_workload):
    return ExperimentSession(
        xkg_workload,
        ks=PAPER_KS,
        protocol=TimingProtocol(n_runs=3, n_keep=2),
    )


@pytest.fixture(scope="session")
def twitter_session(twitter_workload):
    return ExperimentSession(
        twitter_workload,
        ks=PAPER_KS,
        protocol=TimingProtocol(n_runs=3, n_keep=2),
    )
