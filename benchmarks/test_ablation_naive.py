"""Ablation benchmark: the §1 motivation — naive vs TriniT vs Spec-QP.

The paper motivates incremental top-k processing with the observation
that the running example yields 48 relaxed queries under naive
evaluation.  This benchmark measures all three engines on the same
queries and checks the expected ordering: naive does the most work,
Spec-QP the least.
"""

import time

from repro.baselines.naive import NaiveEngine
from repro.core.engine import SpecQPEngine
from repro.metrics.report import render_table
from repro.query.rewrite import space_size


def test_ablation_naive_vs_engines(benchmark, xkg_workload, capsys):
    # The naive engine evaluates the FULL cross-product space (the paper's
    # "48 unique queries" point); pick the queries with the smallest
    # spaces so the strawman finishes, and run it uncapped on those.
    queries = sorted(
        xkg_workload.queries,
        key=lambda q: space_size(q, xkg_workload.rules),
    )[:3]
    engine = SpecQPEngine(xkg_workload.graph, xkg_workload.rules)
    naive = NaiveEngine(xkg_workload.graph, xkg_workload.rules)
    k = 10

    def run():
        rows = []
        for query in queries:
            spec = engine.query(query, k)
            trinit = engine.query_trinit(query, k)
            started = time.perf_counter()
            naive.query(query, k)  # full space, no cap
            naive_seconds = time.perf_counter() - started
            rows.append(
                (
                    query.name,
                    space_size(query, xkg_workload.rules),
                    naive_seconds,
                    trinit.total_seconds,
                    spec.total_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ("query", "space size", "naive (full space)", "TriniT", "Spec-QP"),
            [
                (
                    name,
                    size,
                    f"{naive_s * 1000:.0f}ms",
                    f"{trinit_s * 1000:.0f}ms",
                    f"{spec_s * 1000:.0f}ms",
                )
                for name, size, naive_s, trinit_s, spec_s in rows
            ],
            title="Ablation — naive vs TriniT vs Spec-QP (XKG, k=10)",
        )
    )
    total_naive = sum(r[2] for r in rows)
    total_spec = sum(r[4] for r in rows)
    assert total_naive > total_spec, (
        "the capped naive engine should still be slower than Spec-QP"
    )
