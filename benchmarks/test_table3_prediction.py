"""Benchmark: regenerate Table 3 — prediction accuracy grouped by the
number of triple patterns that required relaxation.

Paper's shape: ≥~70% of queries in the populated groups get exactly the
right relaxation set; on Twitter nearly all queries need every pattern
relaxed and Spec-QP identifies that.
"""

from repro.experiments import table3


def _accuracy(cells):
    correct = sum(c.correct for c in cells)
    total = sum(c.total for c in cells)
    return correct / total if total else 1.0


def test_table3_xkg(benchmark, xkg_session):
    cells = benchmark.pedantic(
        lambda: table3.table3_prediction_accuracy(xkg_session),
        rounds=1,
        iterations=1,
    )
    print()
    print(table3.render(xkg_session))
    assert _accuracy(cells) >= 0.5, "prediction accuracy collapsed"


def test_table3_twitter(benchmark, twitter_session):
    cells = benchmark.pedantic(
        lambda: table3.table3_prediction_accuracy(twitter_session),
        rounds=1,
        iterations=1,
    )
    print()
    print(table3.render(twitter_session))
    assert _accuracy(cells) >= 0.5, "prediction accuracy collapsed"
