"""Benchmark: regenerate Table 4 — average score deviation of Spec-QP's
top-k from the true top-k, grouped by query size.

Paper's shape: small absolute errors (0.01–0.5, i.e. a few percent of the
maximum possible score), shrinking as k grows.
"""

from repro.experiments import table4


def test_table4_xkg(benchmark, xkg_session):
    cells = benchmark.pedantic(
        lambda: table4.table4_score_error(xkg_session), rounds=1, iterations=1
    )
    print()
    print(table4.render(xkg_session))
    populated = [c for c in cells if c.total > 0]
    assert populated
    # Deviations stay a small fraction of the max possible score.
    assert all(c.mean_percent <= 50.0 for c in populated)


def test_table4_twitter(benchmark, twitter_session):
    cells = benchmark.pedantic(
        lambda: table4.table4_score_error(twitter_session), rounds=1, iterations=1
    )
    print()
    print(table4.render(twitter_session))
    populated = [c for c in cells if c.total > 0]
    assert all(c.mean_percent <= 50.0 for c in populated)
