"""Benchmark: block vs tuple executor warm throughput, identical answers.

The vectorized engine's performance claim: on the medium columnar
profile under diverse warm serving traffic — distinct patterns churning
a bounded match-list cache, the same traffic shape as the sharding
benchmark — the block-at-a-time executor beats the tuple-at-a-time
executor by a multiple, because a cache miss costs one mask + one
lexsort on id columns instead of mask + sort + decoding thousands of
rows into Triple/PartialAnswer objects.  The acceptance bar: block warm
qps >= 1.5x tuple warm qps (observed ~5-6x), with byte-identical
answers.

Byte-identity is additionally pinned across every backend the block
engine covers — columnar, sharded (1 and 4 shards), live overlays
pre/post compaction — at full ``(bindings, score)`` granularity.

Set ``SPEC_QP_BENCH_PROFILE=smoke`` (the CI smoke job does) to run at
10k-triple scale: the equivalence assertions stay blocking, the timing
assertion is skipped — thresholds are only meaningful at medium scale
on quiet hardware.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import SpecQPEngine
from repro.datasets import generate_scaled_graph
from repro.datasets.workload import Workload
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import ShardedGraph
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RuleSet
from repro.service import WorkloadRunner

PROFILE = os.environ.get("SPEC_QP_BENCH_PROFILE", "medium")
ENFORCE_TIMING = PROFILE != "smoke"

#: Small on purpose: served traffic has more distinct patterns than any
#: bounded cache holds, so match lists are (re)built on the hot path —
#: exactly where encoded columns beat object decoding.
CACHE_CAPACITY = 8
BATCH = 120 if PROFILE != "smoke" else 40
K = 10
MIN_SPEEDUP = 1.5


def diverse_queries(n_predicates: int) -> list[TriplePatternQuery]:
    """Open scans, object-bound lookups and 2-pattern chain joins."""
    s, o, t = Variable("s"), Variable("o"), Variable("t")
    queries = [
        TriplePatternQuery(
            (TriplePattern(s, f"p{i:03d}", o),), name=f"pred-{i}"
        )
        for i in range(min(32, n_predicates))
    ]
    queries += [
        TriplePatternQuery(
            (TriplePattern(s, f"p{i:03d}", f"e{j:05d}"),), name=f"obj-{i}-{j}"
        )
        for i, j in [(0, 0), (1, 1), (2, 0), (0, 2), (3, 1), (1, 0), (2, 2), (4, 0)]
    ]
    queries += [
        TriplePatternQuery(
            (
                TriplePattern(s, f"p{i:03d}", o),
                TriplePattern(o, f"p{i + 1:03d}", t),
            ),
            name=f"chain-{i}",
        )
        for i in (0, 5, 9)
    ]
    return queries


@pytest.fixture(scope="module")
def bench_workload():
    graph = generate_scaled_graph(PROFILE, seed=7)
    return Workload(
        "block-bench", graph, RuleSet(), diverse_queries(n_predicates=32)
    )


def test_block_executor_speedup_over_tuple(benchmark, bench_workload):
    batch = bench_workload.stretched(BATCH)

    def run(executor: str):
        runner = WorkloadRunner(
            bench_workload, cache_capacity=CACHE_CAPACITY, executor=executor
        )
        return runner.run(batch, k=K, mode="warm")

    tuple_report = run("tuple")
    block_report = benchmark.pedantic(lambda: run("block"), rounds=1, iterations=1)

    print()
    print(tuple_report.render())
    print()
    print(block_report.render())
    speedup = block_report.queries_per_second / tuple_report.queries_per_second
    print(f"\nblock-over-tuple warm speed-up: {speedup:.2f}x ({PROFILE} profile)")

    # The executor must not change what the engine answers.
    assert [o.n_answers for o in block_report.outcomes] == [
        o.n_answers for o in tuple_report.outcomes
    ]
    assert [o.top_score for o in block_report.outcomes] == [
        o.top_score for o in tuple_report.outcomes
    ]
    assert block_report.extras["executor"] == "block"
    assert block_report.n_queries == tuple_report.n_queries == BATCH

    if ENFORCE_TIMING:
        assert speedup >= MIN_SPEEDUP, (
            f"block executor should beat tuple by >= {MIN_SPEEDUP}x on the "
            f"{PROFILE} profile: tuple={tuple_report.queries_per_second:.1f} "
            f"qps, block={block_report.queries_per_second:.1f} qps"
        )


def test_block_answers_byte_identical_across_backends(bench_workload):
    """Full-resolution equivalence: every backend family, both executors."""
    store = bench_workload.graph.store
    queries = bench_workload.queries[:3] + bench_workload.queries[-2:]

    def updates():
        sample = [t for _, t in zip(range(8), bench_workload.graph.triples())]
        ups = [GraphUpdate.remove(*t.spo) for t in sample[:4]]
        ups += [
            GraphUpdate.add(t.subject, t.predicate, t.object, t.score + 3.0)
            for t in sample[4:]
        ]
        ups += [
            GraphUpdate.add(f"hot-{i}", "p000", f"e{i:05d}", 90_000.0 + i)
            for i in range(3)
        ]
        return ups

    backends: dict[str, object] = {
        "columnar": ColumnarGraph(store, name="bench"),
        "sharded-1": ShardedGraph(store, 1, strategy="score-range"),
        "sharded-4": ShardedGraph(store, 4, strategy="score-range"),
    }
    for base_kind in ("columnar", "sharded-4"):
        for stage in ("pre", "post"):
            live = LiveGraph(backends[base_kind])
            live.apply_updates(updates())
            if stage == "post":
                live.compact()
            backends[f"live-{base_kind}-{stage}"] = live

    reference = None
    for name, graph in backends.items():
        rows = {}
        tuple_engine = SpecQPEngine(graph, bench_workload.rules, executor="tuple")
        block_engine = SpecQPEngine(
            graph,
            bench_workload.rules,
            catalog=tuple_engine.catalog,  # planning shared; execution differs
            executor="block",
        )
        for executor, engine in (("tuple", tuple_engine), ("block", block_engine)):
            if executor == "block":
                assert engine.executor.uses_block_path(), name
            rows[executor] = [
                [(a.bindings, a.score) for a in engine.query(q, k=K).answers]
                for q in queries
            ]
        assert rows["block"] == rows["tuple"], name
        live_backend = name.startswith("live-")
        if not live_backend:
            # All static backends serve the same triples -> same answers.
            if reference is None:
                reference = rows["tuple"]
            assert rows["tuple"] == reference, name
