"""Benchmark: sharded vs unsharded warm throughput on the medium profile.

The sharding subsystem's performance claim: with ``score-range`` shards,
top-k execution materialises only the hot shard's slice of each match
list — threshold early termination spares the cold shards' decode and
sort — so a diverse warm workload (distinct patterns churning a bounded
match-list cache, the shape of served traffic) runs a multiple faster
than unsharded execution *with byte-identical answers*.  The acceptance
bar: multi-shard warm qps >= 1.3x single-shard.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_scaled_graph
from repro.datasets.workload import Workload
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RuleSet
from repro.service import WorkloadRunner

N_SHARDS = 4
#: Small on purpose: served traffic has more distinct patterns than any
#: bounded cache holds, so match lists are (re)built on the hot path —
#: exactly where lazy shard scans save their work.
CACHE_CAPACITY = 8
BATCH = 120
K = 10


@pytest.fixture(scope="module")
def medium_workload():
    """The medium scale profile (100k triples) under a diverse query set:
    every predicate's open pattern plus a handful of object-bound ones."""
    graph = generate_scaled_graph("medium", seed=7)
    subject, obj = Variable("s"), Variable("o")
    queries = [
        TriplePatternQuery(
            (TriplePattern(subject, f"p{i:03d}", obj),), name=f"pred-{i}"
        )
        for i in range(32)
    ]
    queries += [
        TriplePatternQuery(
            (TriplePattern(subject, f"p{i:03d}", f"e{j:05d}"),),
            name=f"obj-{i}-{j}",
        )
        for i, j in [(0, 0), (1, 1), (2, 0), (0, 2), (3, 1), (1, 0), (2, 2), (4, 0)]
    ]
    return Workload("shard-bench", graph, RuleSet(), queries)


def test_sharded_warm_throughput_beats_single_shard(benchmark, medium_workload):
    batch = medium_workload.stretched(BATCH)

    def run(shards: int):
        runner = WorkloadRunner(
            medium_workload,
            cache_capacity=CACHE_CAPACITY,
            shards=shards,
            shard_strategy="score-range",
        )
        return runner.run(batch, k=K, mode="warm")

    single = run(1)
    multi = benchmark.pedantic(lambda: run(N_SHARDS), rounds=1, iterations=1)

    print()
    print(single.render())
    print()
    print(multi.render())
    speedup = multi.queries_per_second / single.queries_per_second
    print(f"\nsharded-over-single speed-up: {speedup:.2f}x")

    # Sharding must not change what the engine answers.
    assert [o.n_answers for o in multi.outcomes] == [
        o.n_answers for o in single.outcomes
    ]
    assert [o.top_score for o in multi.outcomes] == [
        o.top_score for o in single.outcomes
    ]

    assert multi.n_queries == single.n_queries == BATCH
    assert multi.extras["shards"] == N_SHARDS
    assert speedup >= 1.3, (
        f"sharded warm serving should beat single-shard by >= 1.3x: "
        f"single={single.queries_per_second:.1f} qps, "
        f"sharded={multi.queries_per_second:.1f} qps"
    )
