#!/usr/bin/env python
"""Generate every scenario pack and validate it against the golden manifests.

``make scenarios`` runs this before the slow scenario test sweep: each
shipped pack is rebuilt from its frozen seed, structurally validated
(:meth:`ScenarioPack.validate`), and its manifest — triple/query/update
counts plus the sha256 content checksum — is compared against
``tests/datasets/golden_scenarios.json``.  Any generator drift (a numpy
upgrade changing a distribution method, an edit to a schema or intent)
fails here with a per-field diff before a human ever wonders why a
benchmark moved.

``--write`` regenerates the golden file after an *intentional* generator
change; the diff then shows up in review next to the change that caused
it.

Usage::

    PYTHONPATH=src python scripts/validate_scenarios.py
    PYTHONPATH=src python scripts/validate_scenarios.py --write
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import build_all_scenarios  # noqa: E402

GOLDEN_PATH = REPO_ROOT / "tests" / "datasets" / "golden_scenarios.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help="regenerate the golden manifest file instead of checking it",
    )
    parser.add_argument(
        "--golden", default=str(GOLDEN_PATH), metavar="PATH",
        help="golden manifest file (default: tests/datasets/golden_scenarios.json)",
    )
    args = parser.parse_args(argv)
    golden_path = Path(args.golden)

    packs = build_all_scenarios()
    manifests = {name: pack.manifest() for name, pack in packs.items()}
    failures: list[str] = []
    for name, pack in packs.items():
        problems = pack.validate()
        failures += [f"{name}: {p}" for p in problems]
        m = manifests[name]
        print(
            f"{name:<26s} triples={m['triples']:<6d} queries={m['queries']:<4d} "
            f"updates={m['updates']:<4d} rules={m['rules']:<4d} "
            f"checksum={m['checksum']}"
        )

    if args.write:
        golden_path.write_text(
            json.dumps(manifests, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote {golden_path}")
    else:
        golden = json.loads(golden_path.read_text())
        for name in sorted(set(golden) | set(manifests)):
            if name not in manifests:
                failures.append(f"{name}: in golden file but no longer shipped")
                continue
            if name not in golden:
                failures.append(f"{name}: shipped but missing from golden file")
                continue
            for field, expected in golden[name].items():
                actual = manifests[name].get(field)
                if actual != expected:
                    failures.append(
                        f"{name}: {field} drifted "
                        f"(golden {expected!r}, built {actual!r})"
                    )

    if failures:
        print("\nscenario validation FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "\n(after an intentional generator change, regenerate with "
            "`python scripts/validate_scenarios.py --write`)",
            file=sys.stderr,
        )
        return 1
    print(f"\n{len(packs)} packs OK against {golden_path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
