#!/usr/bin/env python
"""Run the perf benchmark matrix and persist a machine-readable baseline.

``make bench`` invokes this after the pytest benchmark suite to write
``BENCH_PR5.json``: warm serving throughput (qps, latency percentiles)
for every executor × shard-count × cache-capacity combination on the
diverse medium-profile workload, plus the headline speed-up ratios.
Future PRs diff their numbers against this file instead of re-deriving
the baseline from prose in old commit messages.

The matrix is the block-executor benchmark's setting
(``benchmarks/test_block_executor.py``): bounded cache = the diverse
serving shape where list (re)builds are hot; full cache = the
steady-state shape where everything is already sorted.  Equivalence
across executors is asserted here too — a baseline produced by two
engines that disagree would be meaningless.

Usage::

    PYTHONPATH=src python scripts/bench_summary.py --output BENCH_PR5.json
    PYTHONPATH=src python scripts/bench_summary.py --profile smoke  # quick
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import numpy as np  # noqa: E402

from repro.datasets import generate_scaled_graph  # noqa: E402
from repro.datasets.workload import Workload  # noqa: E402
from repro.relax.rules import RuleSet  # noqa: E402
from repro.service import WorkloadRunner  # noqa: E402

# The baseline serves exactly the traffic the asserted benchmark serves —
# import its query set rather than copying it, so editing the benchmark's
# traffic can never silently desynchronize BENCH_PR5.json.
from test_block_executor import diverse_queries  # noqa: E402

SEED = 7
K = 10
BOUNDED_CACHE = 8
FULL_CACHE = 2048


def run_matrix(profile: str, batch_size: int) -> dict:
    graph = generate_scaled_graph(profile, seed=SEED)
    workload = Workload(
        f"bench-{profile}", graph, RuleSet(), diverse_queries(n_predicates=32)
    )
    batch = workload.stretched(batch_size)

    runs: list[dict] = []
    outcomes_by_key: dict[tuple, list] = {}
    for shards in (1, 4):
        for cache_capacity in (BOUNDED_CACHE, FULL_CACHE):
            for executor in ("tuple", "block"):
                runner = WorkloadRunner(
                    workload,
                    cache_capacity=cache_capacity,
                    shards=shards,
                    shard_strategy="score-range",
                    executor=executor,
                )
                report = runner.run(batch, k=K, mode="warm")
                runs.append(
                    {
                        "executor": executor,
                        "shards": shards,
                        "cache_capacity": cache_capacity,
                        "qps": round(report.queries_per_second, 1),
                        "mean_ms": round(report.mean_latency * 1e3, 3),
                        "p50_ms": round(report.latency_percentile(50) * 1e3, 3),
                        "p99_ms": round(report.latency_percentile(99) * 1e3, 3),
                        "wall_s": round(report.wall_seconds, 3),
                        "warmup_s": round(report.warmup_seconds, 3),
                    }
                )
                outcomes_by_key[(shards, cache_capacity, executor)] = [
                    (o.n_answers, o.top_score) for o in report.outcomes
                ]
                print(
                    f"shards={shards} cache={cache_capacity:<4d} "
                    f"executor={executor:<5s} "
                    f"{report.queries_per_second:9.1f} qps  "
                    f"p50 {report.latency_percentile(50) * 1e3:7.3f} ms  "
                    f"p99 {report.latency_percentile(99) * 1e3:7.3f} ms"
                )

    # Executors must agree before the numbers mean anything.
    for shards in (1, 4):
        for cache_capacity in (BOUNDED_CACHE, FULL_CACHE):
            tuple_rows = outcomes_by_key[(shards, cache_capacity, "tuple")]
            block_rows = outcomes_by_key[(shards, cache_capacity, "block")]
            if tuple_rows != block_rows:
                raise SystemExit(
                    f"executor outcomes diverge at shards={shards}, "
                    f"cache={cache_capacity} — baseline aborted"
                )

    def qps(shards: int, cache_capacity: int, executor: str) -> float:
        for run in runs:
            if (
                run["shards"] == shards
                and run["cache_capacity"] == cache_capacity
                and run["executor"] == executor
            ):
                return run["qps"]
        raise KeyError((shards, cache_capacity, executor))

    speedups = {
        "block_over_tuple_1shard_bounded_cache": round(
            qps(1, BOUNDED_CACHE, "block") / qps(1, BOUNDED_CACHE, "tuple"), 2
        ),
        "block_over_tuple_4shard_bounded_cache": round(
            qps(4, BOUNDED_CACHE, "block") / qps(4, BOUNDED_CACHE, "tuple"), 2
        ),
        "block_over_tuple_1shard_full_cache": round(
            qps(1, FULL_CACHE, "block") / qps(1, FULL_CACHE, "tuple"), 2
        ),
        "sharded4_over_1shard_tuple_bounded_cache": round(
            qps(4, BOUNDED_CACHE, "tuple") / qps(1, BOUNDED_CACHE, "tuple"), 2
        ),
        "sharded4_over_1shard_block_bounded_cache": round(
            qps(4, BOUNDED_CACHE, "block") / qps(1, BOUNDED_CACHE, "block"), 2
        ),
    }
    return {
        "bench": "PR5 vectorized block-at-a-time execution engine",
        "profile": profile,
        "seed": SEED,
        "k": K,
        "batch": batch_size,
        "n_triples": graph.size,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "runs": runs,
        "speedups": speedups,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_PR5.json"), metavar="PATH"
    )
    parser.add_argument(
        "--profile", default="medium", choices=("smoke", "medium", "million")
    )
    parser.add_argument("--batch", type=int, default=120)
    args = parser.parse_args(argv)

    summary = run_matrix(args.profile, args.batch)
    output = Path(args.output)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output} ({output.stat().st_size} bytes)")
    for name, value in summary["speedups"].items():
        print(f"  {name}: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
