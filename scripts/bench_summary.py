#!/usr/bin/env python
"""Run the perf benchmark matrix and persist a machine-readable baseline.

``make bench`` invokes this after the pytest benchmark suite to write
``BENCH_PR9.json``: warm serving throughput (qps, latency percentiles)
for every executor × shard-count × cache-capacity combination on the
diverse medium-profile workload — including the cost-based
``executor="auto"`` mode — plus the whole-answer result-cache hit path,
the worker-model dimension (4 threads vs 4 mmap-attached processes,
with peak combined Pss and cold-attach latency per cell), and the
headline speed-up ratios.  Future PRs diff their numbers against
this file instead of re-deriving the baseline from prose in old commit
messages; ``--diff PRIOR.json`` renders that comparison directly.

Methodology: every cell primes once (catalog warm-up plus one untimed
batch, so list caches reach their steady state) and then keeps the best
of ``--repeats`` timed batches — single-run numbers on shared hardware
are noise, and the cost rule's margins (is auto >= the better pinned
executor?) are exactly where noise bites.  Within each shards ×
cache-capacity group the three executors' timed batches are
*interleaved* (tuple, block, auto, tuple, block, auto, ...) rather than
run back to back, so machine-load drift hits all three equally and the
auto-vs-pinned ratios compare like with like.  The executor matrix runs with
the result cache *disabled* so it measures execution strategy, not
whole-answer reuse; the result cache gets its own section.  Equivalence
across executors is asserted here too and is always blocking — a
baseline produced by engines that disagree would be meaningless.  The
``--diff`` table, by contrast, is informational: CI hardware timing
drifts, answers must not.

Usage::

    PYTHONPATH=src python scripts/bench_summary.py --output BENCH_PR9.json
    PYTHONPATH=src python scripts/bench_summary.py --profile smoke  # quick
    PYTHONPATH=src python scripts/bench_summary.py --diff BENCH_PR6.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import numpy as np  # noqa: E402

from repro.datasets import generate_scaled_graph  # noqa: E402
from repro.datasets.workload import Workload  # noqa: E402
from repro.relax.rules import RuleSet  # noqa: E402
from repro.service import WorkloadRunner  # noqa: E402

# The baseline serves exactly the traffic the asserted benchmark serves —
# import its query set rather than copying it, so editing the benchmark's
# traffic can never silently desynchronize the baseline JSON.
from test_block_executor import diverse_queries  # noqa: E402
from test_process_pool import smaps_of_mapping  # noqa: E402

SEED = 7
K = 10
BOUNDED_CACHE = 8
FULL_CACHE = 2048
EXECUTORS = ("tuple", "block", "auto")
POOL_WORKERS = 4


def best_timed_run(runner: WorkloadRunner, batch, repeats: int):
    """Prime once, then the best-qps report of *repeats* timed batches."""
    runner.run(batch, k=K, mode="warm")  # untimed: warm-up + steady state
    best = None
    for _ in range(repeats):
        report = runner.run(batch, k=K, mode="warm")
        if best is None or report.queries_per_second > best.queries_per_second:
            best = report
    return best


def run_matrix(workload: Workload, batch, repeats: int) -> tuple[list, dict]:
    runs: list[dict] = []
    outcomes_by_key: dict[tuple, list] = {}
    for shards in (1, 4):
        for cache_capacity in (BOUNDED_CACHE, FULL_CACHE):
            # Prime all three executors' runners first, then interleave
            # their timed batches: load drift between back-to-back cells
            # would otherwise masquerade as an executor effect.
            runners = {}
            for executor in EXECUTORS:
                runners[executor] = WorkloadRunner(
                    workload,
                    cache_capacity=cache_capacity,
                    shards=shards,
                    shard_strategy="score-range",
                    executor=executor,
                    result_cache_capacity=0,  # measure strategy, not reuse
                )
                runners[executor].run(batch, k=K, mode="warm")  # untimed
            best: dict[str, object] = {}
            for _ in range(repeats):
                for executor in EXECUTORS:
                    report = runners[executor].run(batch, k=K, mode="warm")
                    prior = best.get(executor)
                    if (
                        prior is None
                        or report.queries_per_second
                        > prior.queries_per_second
                    ):
                        best[executor] = report
            for executor in EXECUTORS:
                report = best[executor]
                row = {
                    "executor": executor,
                    "shards": shards,
                    "cache_capacity": cache_capacity,
                    "qps": round(report.queries_per_second, 1),
                    "mean_ms": round(report.mean_latency * 1e3, 3),
                    "p50_ms": round(report.latency_percentile(50) * 1e3, 3),
                    "p99_ms": round(report.latency_percentile(99) * 1e3, 3),
                    "wall_s": round(report.wall_seconds, 3),
                }
                if executor == "auto":
                    row["auto_executor_mix"] = report.extras[
                        "auto_executor_mix"
                    ]
                runs.append(row)
                outcomes_by_key[(shards, cache_capacity, executor)] = [
                    (o.n_answers, o.top_score) for o in report.outcomes
                ]
                mix = row.get("auto_executor_mix", "")
                print(
                    f"shards={shards} cache={cache_capacity:<4d} "
                    f"executor={executor:<5s} "
                    f"{report.queries_per_second:9.1f} qps  "
                    f"p50 {report.latency_percentile(50) * 1e3:7.3f} ms  "
                    f"p99 {report.latency_percentile(99) * 1e3:7.3f} ms"
                    + (f"  mix={mix}" if mix else "")
                )

    # Executors must agree before the numbers mean anything (blocking).
    for shards in (1, 4):
        for cache_capacity in (BOUNDED_CACHE, FULL_CACHE):
            tuple_rows = outcomes_by_key[(shards, cache_capacity, "tuple")]
            for executor in ("block", "auto"):
                other = outcomes_by_key[(shards, cache_capacity, executor)]
                if other != tuple_rows:
                    raise SystemExit(
                        f"executor outcomes diverge ({executor} vs tuple) at "
                        f"shards={shards}, cache={cache_capacity} — "
                        "baseline aborted"
                    )

    def qps(shards: int, cache_capacity: int, executor: str) -> float:
        for run in runs:
            if (
                run["shards"] == shards
                and run["cache_capacity"] == cache_capacity
                and run["executor"] == executor
            ):
                return run["qps"]
        raise KeyError((shards, cache_capacity, executor))

    speedups = {
        "block_over_tuple_1shard_bounded_cache": round(
            qps(1, BOUNDED_CACHE, "block") / qps(1, BOUNDED_CACHE, "tuple"), 2
        ),
        "block_over_tuple_4shard_bounded_cache": round(
            qps(4, BOUNDED_CACHE, "block") / qps(4, BOUNDED_CACHE, "tuple"), 2
        ),
        "block_over_tuple_1shard_full_cache": round(
            qps(1, FULL_CACHE, "block") / qps(1, FULL_CACHE, "tuple"), 2
        ),
        "sharded4_over_1shard_tuple_bounded_cache": round(
            qps(4, BOUNDED_CACHE, "tuple") / qps(1, BOUNDED_CACHE, "tuple"), 2
        ),
        "sharded4_over_1shard_block_bounded_cache": round(
            qps(4, BOUNDED_CACHE, "block") / qps(1, BOUNDED_CACHE, "block"), 2
        ),
    }
    # The cost rule's acceptance: auto keeps the better pinned pipeline
    # in every cell (>= 1.0 means it never picked itself into a loss).
    for shards in (1, 4):
        for cache_capacity in (BOUNDED_CACHE, FULL_CACHE):
            best_pinned = max(
                qps(shards, cache_capacity, "tuple"),
                qps(shards, cache_capacity, "block"),
            )
            speedups[
                f"auto_over_best_pinned_{shards}shard_"
                f"{'bounded' if cache_capacity == BOUNDED_CACHE else 'full'}_cache"
            ] = round(qps(shards, cache_capacity, "auto") / best_pinned, 2)
    return runs, speedups


def run_result_cache_section(workload: Workload, batch, repeats: int) -> dict:
    """The whole-answer hit path vs uncached steady-state tuple serving.

    Both runners serve the same repeated-query batch at full match-list
    cache; the uncached one re-executes every repeat, the cached one
    answers from the result cache.  The ratio is the price of a pipeline
    walk the cache skips.
    """
    uncached = WorkloadRunner(
        workload,
        cache_capacity=FULL_CACHE,
        executor="tuple",
        result_cache_capacity=0,
    )
    base = best_timed_run(uncached, batch, repeats)

    cached = WorkloadRunner(
        workload, cache_capacity=FULL_CACHE, executor="tuple"
    )
    hits = best_timed_run(cached, batch, repeats)
    if hits.extras["result_cache_hits"] != len(batch):
        raise SystemExit(
            f"result-cache section expected an all-hit batch, got "
            f"{hits.extras['result_cache_hits']}/{len(batch)} hits"
        )
    base_rows = [(o.n_answers, o.top_score) for o in base.outcomes]
    hit_rows = [(o.n_answers, o.top_score) for o in hits.outcomes]
    if base_rows != hit_rows:
        raise SystemExit("result-cache answers diverge from uncached — aborted")

    section = {
        "uncached_tuple_full_cache_qps": round(base.queries_per_second, 1),
        "warm_hit_qps": round(hits.queries_per_second, 1),
        "warm_hit_p50_ms": round(hits.latency_percentile(50) * 1e3, 4),
        "hit_over_uncached": round(
            hits.queries_per_second / base.queries_per_second, 2
        ),
    }
    print(
        f"result cache: uncached {base.queries_per_second:9.1f} qps, "
        f"all-hit {hits.queries_per_second:9.1f} qps "
        f"({section['hit_over_uncached']}x)"
    )
    return section


def _process_pss_kb(pid: int) -> int:
    """Whole-process proportional RSS of *pid* in kB (VmRSS fallback)."""
    try:
        with open(f"/proc/{pid}/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def run_worker_model_section(workload: Workload, batch, repeats: int) -> dict:
    """4 threads vs 4 mmap-attached processes on the same warm traffic.

    Equivalence between the two models is blocking — a pool that answers
    differently is broken, whatever its qps.  The memory story is
    recorded, not asserted (the asserted version lives in
    ``benchmarks/test_process_pool.py``): combined Pss of the workers'
    mappings of the shared v2 snapshot (the one-physical-copy claim — a
    value near 1.0x the file size means the fleet shares pages; naive
    per-worker loads would cost ~1x *per worker*), whole-fleet peak Pss,
    and the cold fleet-attach latency (snapshot export + spawn +
    per-worker v2 attach) alongside the per-worker attach time alone.
    """
    import os
    import time

    thread_runner = WorkloadRunner(
        workload,
        n_workers=POOL_WORKERS,
        cache_capacity=BOUNDED_CACHE,
        executor="tuple",
        result_cache_capacity=0,
    )
    thread_best = best_timed_run(thread_runner, batch, repeats)

    with WorkloadRunner(
        workload,
        n_workers=POOL_WORKERS,
        worker_model="process",
        cache_capacity=BOUNDED_CACHE,
        executor="tuple",
        result_cache_capacity=0,
    ) as process_runner:
        started = time.perf_counter()
        first = process_runner.run(batch, k=K)  # export + spawn + attach
        cold_attach_seconds = time.perf_counter() - started
        process_best = first
        for _ in range(repeats):
            report = process_runner.run(batch, k=K)
            if report.queries_per_second > process_best.queries_per_second:
                process_best = report

        thread_rows = [(o.n_answers, o.top_score) for o in thread_best.outcomes]
        process_rows = [
            (o.n_answers, o.top_score) for o in process_best.outcomes
        ]
        if thread_rows != process_rows:
            raise SystemExit(
                "worker-model answers diverge (process vs thread) — "
                "baseline aborted"
            )

        snapshot_path = process_runner._proc_snapshot
        pids = process_best.extras["process_worker_pids"]
        snapshot_kb = os.path.getsize(snapshot_path) / 1024
        try:
            mapping_pss_kb = sum(
                smaps_of_mapping(pid, snapshot_path)["Pss"] for pid in pids
            )
            fleet_pss_kb = _process_pss_kb(os.getpid()) + sum(
                _process_pss_kb(pid) for pid in pids
            )
        except OSError:  # no /proc (non-Linux): skip the memory columns
            mapping_pss_kb = fleet_pss_kb = 0

    section = {
        "workers": POOL_WORKERS,
        "thread_qps": round(thread_best.queries_per_second, 1),
        "process_qps": round(process_best.queries_per_second, 1),
        "process_over_thread": round(
            process_best.queries_per_second / thread_best.queries_per_second,
            2,
        ),
        "cold_fleet_attach_s": round(cold_attach_seconds, 2),
        "worker_attach_ms": round(
            first.extras["process_attach_seconds"] * 1e3, 2
        ),
        "snapshot_mb": round(snapshot_kb / 1024, 2),
        "snapshot_mapping_pss_over_one_copy": round(
            mapping_pss_kb / snapshot_kb, 2
        )
        if snapshot_kb
        else None,
        "fleet_peak_pss_mb": round(fleet_pss_kb / 1024, 1),
        "cores": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
    }
    print(
        f"worker model: {POOL_WORKERS} threads "
        f"{thread_best.queries_per_second:9.1f} qps, "
        f"{POOL_WORKERS} processes "
        f"{process_best.queries_per_second:9.1f} qps "
        f"({section['process_over_thread']}x on {section['cores']} cores); "
        f"snapshot mapping Pss "
        f"{section['snapshot_mapping_pss_over_one_copy']}x one copy, "
        f"worker attach {section['worker_attach_ms']}ms"
    )
    return section


def run_scenario_section(name: str, repeats: int) -> dict:
    """One scenario pack through the executor matrix, equivalence blocking.

    The pack is served from its columnar conversion (so ``block`` really
    vectorizes instead of falling back to the tuple pipeline), at the
    pack's own ``k``.  All three executors must produce identical
    outcome rows — on the adversarial packs this is exactly the
    boundary-tie / edge-of-k regime the canonical tie cut exists for, so
    a divergence here aborts the baseline.  Update-carrying packs replay
    their stream and re-assert equivalence on the post-update version.
    """
    from repro.datasets import build_scenario
    from repro.kg.columnar import ColumnarGraph

    pack = build_scenario(name)
    columnar = Workload(
        pack.workload.name,
        ColumnarGraph.from_graph(pack.workload.graph),
        pack.workload.rules,
        pack.workload.queries,
    )
    batch = list(columnar.queries)
    section: dict = {"manifest": pack.manifest()}
    runners = {}
    for executor in EXECUTORS:
        runners[executor] = WorkloadRunner(
            columnar,
            cache_capacity=FULL_CACHE,
            executor=executor,
            result_cache_capacity=0,
        )
        runners[executor].run(batch, k=pack.k, mode="warm")  # untimed
    outcomes = {}
    for executor in EXECUTORS:
        best = None
        for _ in range(repeats):
            report = runners[executor].run(batch, k=pack.k, mode="warm")
            if best is None or report.queries_per_second > best.queries_per_second:
                best = report
        outcomes[executor] = [(o.n_answers, o.top_score) for o in best.outcomes]
        section[f"{executor}_qps"] = round(best.queries_per_second, 1)
        print(
            f"scenario={name:<24s} executor={executor:<5s} "
            f"{best.queries_per_second:9.1f} qps"
        )
    for executor in ("block", "auto"):
        if outcomes[executor] != outcomes["tuple"]:
            raise SystemExit(
                f"scenario {name}: executor outcomes diverge "
                f"({executor} vs tuple) — baseline aborted"
            )
    if pack.updates:
        post = {}
        for executor in EXECUTORS:
            runner = runners[executor]
            counts = runner.apply_updates(list(pack.updates))
            report = runner.run(batch, k=pack.k, mode="warm")
            post[executor] = [(o.n_answers, o.top_score) for o in report.outcomes]
            section["updates_applied"] = counts["adds"] + counts["removes"]
        for executor in ("block", "auto"):
            if post[executor] != post["tuple"]:
                raise SystemExit(
                    f"scenario {name}: post-update outcomes diverge "
                    f"({executor} vs tuple) — baseline aborted"
                )
    return section


def render_diff(current: dict, prior_path: Path) -> str:
    """An informational qps table against a prior baseline JSON.

    Matches matrix cells on (executor, shards, cache_capacity); cells
    only one side has (e.g. the prior file predates ``auto``) are listed
    as new/dropped.  Never fails the run — timing drifts with hardware,
    and the blocking guarantees (equivalence, all-hit batches) already
    ran above.
    """
    prior = json.loads(prior_path.read_text())
    prior_runs = {
        (r["executor"], r["shards"], r["cache_capacity"]): r
        for r in prior.get("runs", [])
    }
    current_runs = {
        (r["executor"], r["shards"], r["cache_capacity"]): r
        for r in current["runs"]
    }
    lines = [
        f"qps vs {prior_path.name} ({prior.get('bench', 'unnamed baseline')}):",
        f"  {'cell':<34} {'prior':>10} {'now':>10} {'ratio':>7}",
    ]
    for key in sorted(current_runs, key=str):
        executor, shards, cache_capacity = key
        cell = f"executor={executor} shards={shards} cache={cache_capacity}"
        now = current_runs[key]["qps"]
        before = prior_runs.get(key)
        if before is None:
            lines.append(f"  {cell:<34} {'—':>10} {now:>10.1f} {'new':>7}")
            continue
        ratio = now / before["qps"] if before["qps"] else float("inf")
        lines.append(
            f"  {cell:<34} {before['qps']:>10.1f} {now:>10.1f} {ratio:>6.2f}x"
        )
    for key in sorted(set(prior_runs) - set(current_runs), key=str):
        executor, shards, cache_capacity = key
        cell = f"executor={executor} shards={shards} cache={cache_capacity}"
        lines.append(
            f"  {cell:<34} {prior_runs[key]['qps']:>10.1f} {'—':>10} "
            f"{'gone':>7}"
        )
    return "\n".join(lines)


def build_summary(
    profile: str, batch_size: int, repeats: int,
    scenarios: list[str] | None = None,
) -> dict:
    graph = generate_scaled_graph(profile, seed=SEED)
    workload = Workload(
        f"bench-{profile}", graph, RuleSet(), diverse_queries(n_predicates=32)
    )
    batch = workload.stretched(batch_size)
    runs, speedups = run_matrix(workload, batch, repeats)
    result_cache = run_result_cache_section(workload, batch, repeats)
    worker_models = run_worker_model_section(workload, batch, repeats)
    scenario_sections = {
        name: run_scenario_section(name, repeats) for name in scenarios or []
    }
    summary = {
        "bench": "PR9 zero-copy mmap snapshots + multiprocess worker pool",
        "profile": profile,
        "seed": SEED,
        "k": K,
        "batch": batch_size,
        "repeats": repeats,
        "n_triples": graph.size,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "runs": runs,
        "result_cache": result_cache,
        "worker_models": worker_models,
        "speedups": speedups,
    }
    if scenario_sections:
        summary["scenarios"] = scenario_sections
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_PR9.json"), metavar="PATH"
    )
    parser.add_argument(
        "--profile", default="medium", choices=("smoke", "medium", "million")
    )
    parser.add_argument("--batch", type=int, default=120)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed batches per cell; the best is reported (default 3)",
    )
    parser.add_argument(
        "--diff", default=None, metavar="PRIOR.json",
        help="also print an informational qps comparison against a prior "
        "baseline file (equivalence checks stay blocking regardless)",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        dest="scenarios",
        help="also run the named scenario pack through the executor matrix "
        "(repeatable; equivalence is blocking, incl. post-update); adds a "
        "per-scenario section to the JSON",
    )
    args = parser.parse_args(argv)

    summary = build_summary(
        args.profile, args.batch, args.repeats, scenarios=args.scenarios
    )
    output = Path(args.output)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output} ({output.stat().st_size} bytes)")
    for name, value in summary["speedups"].items():
        print(f"  {name}: {value}x")
    print(
        f"  result_cache_hit_over_uncached: "
        f"{summary['result_cache']['hit_over_uncached']}x"
    )
    print(
        f"  process_over_thread_{summary['worker_models']['workers']}workers: "
        f"{summary['worker_models']['process_over_thread']}x "
        f"({summary['worker_models']['cores']} cores)"
    )
    if args.diff:
        print()
        print(render_diff(summary, Path(args.diff)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
