#!/usr/bin/env python
"""Docs link check: every relative link in the Markdown docs must resolve.

Scans README.md and docs/*.md (the hand-written documentation suite —
driver-maintained artifacts like PAPERS.md/SNIPPETS.md are out of scope)
for ``[text](target)`` links, ignores external URLs and pure anchors,
and fails (exit 1) listing every target that does not exist relative to
the linking file.  Run via ``make docs`` or CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_doc_files(root: Path) -> list[Path]:
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def broken_links(doc: Path, root: Path) -> list[str]:
    problems = []
    for match in LINK.finditer(doc.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("<"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            problems.append(f"{doc.relative_to(root)}: broken link -> {target}")
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    docs = iter_doc_files(root)
    if not docs:
        print("no Markdown files found", file=sys.stderr)
        return 1
    problems = [p for doc in docs for p in broken_links(doc, root)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(docs)} files, {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
