#!/usr/bin/env python
"""Docs checks: links must resolve, Python snippets must import-check.

Scans README.md and docs/*.md (the hand-written documentation suite —
driver-maintained artifacts like PAPERS.md/SNIPPETS.md are out of scope)
and fails (exit 1) listing every problem found:

* every relative ``[text](target)`` link must point at an existing file
  (external URLs and pure anchors are skipped);
* every fenced ```` ```python ```` snippet must parse, and every import
  statement in it must execute against ``src/`` — so renaming or
  removing a public symbol breaks the build, not the reader;
* the ``convert`` command lines documented in ``docs/storage.md`` must
  actually round-trip: a tiny graph is driven through
  tsv → kg2 → npz → tsv via the real CLI entry point and the final TSV
  must equal the first byte for byte.

Run via ``make docs`` or CI.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
PYTHON_FENCE = re.compile(r"^```python\n(.*?)^```", re.DOTALL | re.MULTILINE)


def iter_doc_files(root: Path) -> list[Path]:
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def broken_links(doc: Path, root: Path) -> list[str]:
    problems = []
    for match in LINK.finditer(doc.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("<"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            problems.append(f"{doc.relative_to(root)}: broken link -> {target}")
    return problems


def broken_snippets(doc: Path, root: Path) -> tuple[list[str], int]:
    """Syntax-check each fenced python snippet and execute its imports.

    Only ``import``/``from ... import`` statements run (at any nesting
    level); the rest of the snippet is compile-checked but never
    executed, so docs can show mutations without side effects.
    """
    problems: list[str] = []
    text = doc.read_text(encoding="utf-8")
    n_snippets = 0
    for n_snippets, match in enumerate(PYTHON_FENCE.finditer(text), start=1):
        code = match.group(1)
        where = f"{doc.relative_to(root)}: python snippet {n_snippets}"
        line_offset = text[: match.start()].count("\n") + 1
        try:
            tree = ast.parse(code)
        except SyntaxError as error:
            problems.append(
                f"{where} (near line {line_offset + (error.lineno or 0)}): "
                f"syntax error: {error.msg}"
            )
            continue
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            statement = ast.Module(body=[node], type_ignores=[])
            try:
                exec(compile(statement, f"<{where}>", "exec"), {})
            except Exception as error:  # noqa: BLE001 - report, don't crash
                problems.append(
                    f"{where} (line {line_offset + node.lineno}): "
                    f"import failed: {error}"
                )
    return problems, n_snippets


def convert_roundtrip_problems() -> list[str]:
    """Drive the documented ``convert`` CLI through the v2 packed format.

    ``docs/storage.md`` shows tsv ⇄ npz ⇄ kg2 command lines; run the
    full loop on a tiny graph so those lines cannot rot: the TSV that
    comes back out of tsv → kg2 → npz → tsv must be byte-identical to
    the one that went in (both backends export the same canonical
    order).
    """
    import tempfile

    try:
        from repro.experiments.cli import main as cli_main
        from repro.kg import KnowledgeGraph
        from repro.kg.storage import save_tsv
    except Exception as error:  # noqa: BLE001 - report, don't crash
        return [f"convert roundtrip: cannot import the CLI: {error}"]
    graph = KnowledgeGraph(name="docs-roundtrip")
    for s, p, o, score in [
        ("shakira", "rdf:type", "singer", 95.0),
        ("dylan", "rdf:type", "singer", 85.0),
        ("dylan", "rdf:type", "writer", 80.0),
        ("prince", "plays", "piano", 72.5),
    ]:
        graph.add(s, p, o, score=score)
    with tempfile.TemporaryDirectory() as tmp:
        first = Path(tmp) / "a.tsv"
        save_tsv(graph, first)
        hops = [first, Path(tmp) / "b.kg2", Path(tmp) / "c.npz", Path(tmp) / "d.tsv"]
        for source, target in zip(hops, hops[1:]):
            try:
                code = cli_main(
                    ["convert", "--input", str(source), "--output", str(target)]
                )
            except Exception as error:  # noqa: BLE001 - report, don't crash
                return [
                    f"convert roundtrip: {source.name} -> {target.name} "
                    f"raised: {error}"
                ]
            if code != 0:
                return [
                    f"convert roundtrip: {source.name} -> {target.name} "
                    f"exited {code}"
                ]
        if hops[-1].read_bytes() != first.read_bytes():
            return [
                "convert roundtrip: tsv -> kg2 -> npz -> tsv did not "
                "round-trip byte-identically"
            ]
    return []


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "src"))  # snippets import the package itself
    docs = iter_doc_files(root)
    if not docs:
        print("no Markdown files found", file=sys.stderr)
        return 1
    problems: list[str] = []
    total_snippets = 0
    for doc in docs:
        problems.extend(broken_links(doc, root))
        snippet_problems, n_snippets = broken_snippets(doc, root)
        problems.extend(snippet_problems)
        total_snippets += n_snippets
    problems.extend(convert_roundtrip_problems())
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(docs)} files ({total_snippets} python snippets), "
        f"{len(problems)} problems"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
