# Spec-QP reproduction — common entry points.
#
#   make test    tier-1 verification (unit + property + integration + benchmarks)
#   make bench   benchmark suite only, with timing tables
#   make docs    docs link + snippet import check, run every runnable doc surface
#   make workload  demo the batch-serving layer (cold vs warm)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench docs workload

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-enable

docs:
	$(PYTHON) scripts/check_docs_links.py
	$(PYTHON) -c "import repro; assert repro.__doc__ and 'Quickstart' in repro.__doc__"
	$(PYTHON) examples/quickstart.py > /dev/null && echo "quickstart OK"

workload:
	$(PYTHON) -m repro.experiments workload --scale small --mode both
