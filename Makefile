# Spec-QP reproduction — common entry points.
#
#   make test    tier-1 verification (unit + property + integration + benchmarks)
#   make bench   benchmark suite with timing tables + the BENCH_PR9.json baseline
#   make bench-diff  regenerate the baseline and diff it against the prior PR's
#   make cov     tests with line coverage + the CI floor (needs pytest-cov)
#   make docs    docs link + snippet import check, run every runnable doc surface
#   make workload  demo the batch-serving layer (cold vs warm)
#   make scenarios  build + validate every scenario pack, run the slow matrix

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

#: Coverage floor enforced by `make cov` and the CI coverage job.
COV_FAIL_UNDER ?= 80

#: Where `make bench` persists the machine-readable perf baseline.
BENCH_JSON ?= BENCH_PR9.json

#: The prior baseline `make bench-diff` compares against.
BENCH_PRIOR ?= BENCH_PR6.json

.PHONY: test bench bench-diff cov docs workload scenarios

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-enable
	$(PYTHON) scripts/bench_summary.py --output $(BENCH_JSON)

bench-diff:
	$(PYTHON) scripts/bench_summary.py --output $(BENCH_JSON) --diff $(BENCH_PRIOR)

cov:
	$(PYTHON) -m pytest tests -q --cov=repro \
		--cov-report=term-missing:skip-covered \
		--cov-fail-under=$(COV_FAIL_UNDER)

docs:
	$(PYTHON) scripts/check_docs_links.py
	$(PYTHON) -c "import repro; assert repro.__doc__ and 'Quickstart' in repro.__doc__"
	@for script in examples/*.py; do \
		echo "running $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "examples OK"

workload:
	$(PYTHON) -m repro.experiments workload --scale small --mode both

scenarios:
	$(PYTHON) scripts/validate_scenarios.py
	$(PYTHON) -m pytest tests -q -m slow_scenario
