#!/usr/bin/env python
"""Ablation: what makes the speculative planner tick?

Sweeps the two modelling choices §4.5.2 discusses:

* histogram resolution — the paper's 2-bucket model vs finer n-bucket
  histograms (better estimates, more planning work);
* join selectivity — exact (the paper's choice) vs independence-assumption
  estimates.

For each configuration we report average precision against the true
top-k, average predicted relaxations, and planning time.

Run:  python examples/planner_ablation.py
"""

import time

from repro import EngineConfig, SpecQPEngine
from repro.datasets import XKGConfig, generate_xkg
from repro.metrics.quality import precision_at_k


def evaluate(workload, config: EngineConfig, k: int = 10) -> dict:
    engine = SpecQPEngine(workload.graph, workload.rules, config)
    truth_engine = SpecQPEngine(workload.graph, workload.rules)
    precisions, n_relaxed, plan_ms = [], [], []
    for query in workload.queries:
        started = time.perf_counter()
        decision = engine.plan(query, k)
        # Second plan call measures warm planning cost.
        started = time.perf_counter()
        decision = engine.plan(query, k)
        plan_ms.append((time.perf_counter() - started) * 1000)
        spec = engine.query(query, k)
        trinit = truth_engine.query_trinit(query, k)
        precisions.append(precision_at_k(spec.answers, trinit.answers))
        n_relaxed.append(decision.plan.n_relaxed)
    n = len(workload.queries)
    return {
        "precision": sum(precisions) / n,
        "avg_relaxed": sum(n_relaxed) / n,
        "plan_ms": sum(plan_ms) / n,
    }


def main() -> None:
    workload = generate_xkg(
        XKGConfig(n_domains=5, n_entities=1000, n_topics=60, n_queries=16, seed=17)
    )
    print("workload:", workload.summary())
    print(f"\n{'configuration':<38} {'precision':>9} {'avg#relax':>9} {'plan':>9}")

    configurations = [
        ("2-bucket / exact selectivity (paper)", EngineConfig()),
        ("4-bucket / exact", EngineConfig(histogram_kind="n-bucket", n_buckets=4)),
        ("8-bucket / exact", EngineConfig(histogram_kind="n-bucket", n_buckets=8)),
        ("2-bucket / independence", EngineConfig(selectivity_mode="independence")),
    ]
    for label, config in configurations:
        result = evaluate(workload, config)
        print(
            f"{label:<38} {result['precision']:>9.2f} "
            f"{result['avg_relaxed']:>9.2f} {result['plan_ms']:>7.1f}ms"
        )


if __name__ == "__main__":
    main()
