#!/usr/bin/env python
"""Hashtag search over a tweet corpus — the paper's second scenario.

Tweets are ⟨tweetID, hasTag, term⟩ triples scored by retweet count;
relaxations are mined from term co-occurrence with the §4.2 weights
``w = #tweets(T1 ∧ T2) / #tweets(T1)``.  This is the sparse-match regime:
conjunctions of terms rarely have k exact answers, so the planner keeps
most relaxations — and Spec-QP's value is *recognising* that correctly
rather than pruning.

Run:  python examples/twitter_trends.py
"""

from repro import SpecQPEngine
from repro.datasets import TwitterConfig, generate_twitter
from repro.relax.cooccurrence import CooccurrenceIndex


def main() -> None:
    workload = generate_twitter(
        TwitterConfig(n_tweets=3000, n_trends=15, n_queries=8, seed=21)
    )
    print("workload:", workload.summary())

    # Peek at the mined co-occurrence structure for one query term.
    first_query = workload.queries[0]
    term = first_query.patterns[0].object
    index = CooccurrenceIndex(workload.graph, "hasTag")
    print(f"\nterm {term!r} appears in {index.count(term)} tweets; "
          "top relaxations:")
    for other, weight in index.neighbours(term)[:5]:
        print(f"  {term} ~> {other}  w={weight:.3f}")

    engine = SpecQPEngine(workload.graph, workload.rules)

    for query in workload.queries[:5]:
        terms = [p.object for p in query.patterns]
        decision = engine.plan(query, k=10)
        spec = engine.query(query, k=10)
        trinit = engine.query_trinit(query, k=10)
        overlap = {a.bindings for a in spec.answers} & {
            a.bindings for a in trinit.answers
        }
        print(f"\ntweets with {' + '.join(terms)}")
        print(f"  plan {decision.plan.describe()}: "
              f"{decision.plan.n_relaxed}/{len(query)} patterns relaxed")
        print(f"  {len(spec.answers)} answers, "
              f"precision={len(overlap) / max(len(trinit.answers), 1):.2f}, "
              f"best score={spec.answers[0].score:.3f}" if spec.answers
              else "  no answers at all")


if __name__ == "__main__":
    main()
