#!/usr/bin/env python
"""Exploring a generated XKG-style knowledge graph with mined relaxations.

This example exercises the *offline pipeline* a downstream user would run
on their own data:

1. generate (or load) a scored knowledge graph,
2. mine weighted relaxation rules from instance overlap,
3. build the statistics catalog,
4. interactively answer top-k queries, inspecting the speculative plans.

Run:  python examples/music_exploration.py
"""

from repro import EngineConfig, SpecQPEngine
from repro.datasets import XKGConfig, generate_xkg
from repro.relax.space import summarize


def main() -> None:
    # 1-2. Generate a KG + mined rules + example queries in one call.
    workload = generate_xkg(
        XKGConfig(n_domains=5, n_entities=1200, n_topics=80, n_queries=10, seed=3)
    )
    print("workload:", workload.summary())

    engine = SpecQPEngine(workload.graph, workload.rules, EngineConfig(k=10))

    # 3. Warm the statistics catalog offline (the paper's precomputation).
    stats = engine.catalog.precompute(queries=workload.queries)
    print("catalog warmed:", stats)

    # 4. Run every query; show the plan and the quality of its answers.
    for query in workload.queries[:6]:
        space = summarize(query, workload.rules)
        decision = engine.plan(query)
        spec = engine.query(query)
        trinit = engine.query_trinit(query)
        overlap = {a.bindings for a in spec.answers} & {
            a.bindings for a in trinit.answers
        }
        precision = len(overlap) / max(len(trinit.answers), 1)

        print(f"\n{query.name}: {len(query)} patterns, "
              f"{space.total_variants} relaxation variants")
        print(f"  plan {decision.plan.describe()} "
              f"(E_Q(k)={decision.expected_kth_original:.3f})")
        for pattern_decision in decision.per_pattern:
            marker = "RELAX" if pattern_decision.relax else "keep "
            rule = pattern_decision.tested_rule
            tested = f"w={rule.weight:.2f}" if rule else "no rules"
            print(f"    [{marker}] {pattern_decision.pattern}  "
                  f"({tested}, E_Q'(1)={pattern_decision.expected_relaxed_top:.3f})")
        print(f"  precision@10={precision:.2f}  "
              f"objects S={spec.answer_objects_created} "
              f"T={trinit.answer_objects_created}  "
              f"time S={spec.total_seconds * 1000:.1f}ms "
              f"T={trinit.total_seconds * 1000:.1f}ms")


if __name__ == "__main__":
    main()
