#!/usr/bin/env python
"""Quickstart: the paper's running example end to end.

Builds a small music knowledge graph, declares the Table-1 relaxations,
and asks the paper's introduction query — "which singers also write
lyrics and play guitar and piano?" — under three engines:

* exact (no relaxations, plain rank joins),
* TriniT (all relaxations, the true top-k),
* Spec-QP (speculatively pruned relaxations).

Run:  python examples/quickstart.py
"""

from repro import (
    KnowledgeGraph,
    RelaxationRule,
    RuleSet,
    SpecQPEngine,
    TriplePattern,
    Variable,
)

QUERY = """
SELECT ?s WHERE{
  ?s 'rdf:type' <singer>.
  ?s 'rdf:type' <lyricist>.
  ?s 'rdf:type' <guitarist>.
  ?s 'rdf:type' <pianist>
}
"""


def build_graph() -> KnowledgeGraph:
    """A pocket-size music KG. Scores play the role of popularity counts."""
    kg = KnowledgeGraph(name="music")
    facts = [
        # entity, types...                      (score = popularity)
        ("shakira", ["singer", "lyricist", "guitarist", "vocalist"], 95),
        ("prince", ["vocalist", "lyricist", "guitarist", "pianist"], 92),
        ("beyonce", ["singer", "lyricist", "vocalist"], 90),
        ("dylan", ["singer", "lyricist", "guitarist", "writer", "musician"], 85),
        ("stevie", ["singer", "lyricist", "guitarist", "percussionist"], 82),
        ("freddie", ["vocalist", "pianist", "writer", "musician"], 80),
        ("elton", ["singer", "pianist", "lyricist", "musician"], 75),
        ("miley", ["singer", "vocalist", "jazz_singer"], 60),
        ("norah", ["jazz_singer", "pianist", "vocalist"], 55),
        ("slash", ["guitarist", "musician", "instrumentalist"], 50),
        ("yiruma", ["pianist", "percussionist", "musician"], 40),
        ("taher", ["singer"], 2),
    ]
    for entity, types, popularity in facts:
        for type_name in types:
            kg.add(entity, "rdf:type", type_name, score=float(popularity))
    return kg


def build_rules() -> RuleSet:
    """Exactly Table 1 of the paper, with illustrative weights."""
    s = Variable("s")

    def tp(name: str) -> TriplePattern:
        return TriplePattern(s, "rdf:type", name)

    rules = RuleSet()
    for domain, range_, weight in [
        ("singer", "vocalist", 0.8),
        ("singer", "jazz_singer", 0.6),
        ("singer", "artist", 0.3),
        ("lyricist", "writer", 0.7),
        ("guitarist", "musician", 0.6),
        ("guitarist", "instrumentalist", 0.5),
        ("pianist", "percussionist", 0.4),
    ]:
        rules.add(RelaxationRule(tp(domain), tp(range_), weight))
    return rules


def show(label: str, answers, extra: str = "") -> None:
    print(f"\n{label}{extra}")
    if not answers:
        print("  (no answers)")
    for rank, answer in enumerate(answers, start=1):
        print(f"  {rank}. {answer.as_dict()['s']:<10} score={answer.score:.3f}")


def main() -> None:
    kg = build_graph()
    rules = build_rules()
    engine = SpecQPEngine(kg, rules)
    print(f"graph: {kg.size} triples, {len(rules)} relaxation rules")

    # 1. Exact match: the empty-answer problem in action.
    exact = engine.query_exact(QUERY, k=5)
    show("exact match (no relaxations):", exact.answers)

    # 2. TriniT: all relaxations -> the true top-k.
    trinit = engine.query_trinit(QUERY, k=5)
    show("TriniT (all relaxations, true top-k):", trinit.answers)

    # 3. Spec-QP: relax only where the estimator predicts top-k impact.
    spec = engine.query(QUERY, k=5)
    show(
        "Spec-QP (speculative):",
        spec.answers,
        extra=f"  plan={spec.plan.describe()}",
    )

    print(
        f"\nanswer objects created — TriniT: {trinit.answer_objects_created}, "
        f"Spec-QP: {spec.answer_objects_created}"
    )
    overlap = {a.bindings for a in spec.answers} & {
        a.bindings for a in trinit.answers
    }
    denom = max(len(trinit.answers), 1)
    print(f"precision vs true top-k: {len(overlap) / denom:.2f}")


if __name__ == "__main__":
    main()
