#!/usr/bin/env python
"""Chain relaxations — the paper's §6 future-work feature, implemented.

A geography-flavoured KG where ``?s bornIn paris`` misses people born in
Paris *suburbs*; the chain relaxation

    ⟨?s bornIn paris⟩  ~>  ⟨?s bornIn ?m⟩ . ⟨?m locatedIn paris⟩   (w=0.6)

recovers them with discounted scores, alongside ordinary single-pattern
relaxations.

Run:  python examples/chain_relaxations.py
"""

from repro import (
    KnowledgeGraph,
    RelaxationRule,
    RuleSet,
    SpecQPEngine,
    TriplePattern,
    Variable,
)
from repro.relax.chains import ChainRelaxationRule, ChainRuleSet

S, M = Variable("s"), Variable("m")


def build_graph() -> KnowledgeGraph:
    kg = KnowledgeGraph(name="geo")
    population = [
        # direct Paris births
        ("edith", "bornIn", "paris", 95),
        ("voltaire", "bornIn", "paris", 88),
        # suburb births, suburbs located in paris region
        ("verlaine", "bornIn", "metz", 60),
        ("django", "bornIn", "liberchies", 72),
        ("annie", "bornIn", "saintdenis", 66),
        ("kylian", "bornIn", "bondy", 80),
        # geography
        ("saintdenis", "locatedIn", "paris", 50),
        ("bondy", "locatedIn", "paris", 45),
        ("metz", "locatedIn", "france", 40),
        # a sibling city for the flat relaxation
        ("serge", "bornIn", "paris_17e", 70),
        ("jane", "bornIn", "paris_17e", 64),
    ]
    for s, p, o, score in population:
        kg.add(s, p, o, score=float(score))
    return kg


def main() -> None:
    kg = build_graph()

    flat_rules = RuleSet(
        [
            RelaxationRule(
                TriplePattern(S, "bornIn", "paris"),
                TriplePattern(S, "bornIn", "paris_17e"),
                weight=0.9,
            )
        ]
    )
    chain_rules = ChainRuleSet(
        [
            ChainRelaxationRule(
                domain=TriplePattern(S, "bornIn", "paris"),
                chain=(
                    TriplePattern(S, "bornIn", M),
                    TriplePattern(M, "locatedIn", "paris"),
                ),
                weight=0.6,
            )
        ]
    )

    query = "SELECT ?s WHERE { ?s <bornIn> <paris> }"

    plain = SpecQPEngine(kg, flat_rules)
    with_chains = SpecQPEngine(kg, flat_rules, chain_rules=chain_rules)

    print("without chain relaxations:")
    for answer in plain.query_trinit(query, k=10).answers:
        print(f"  {answer.as_dict()['s']:<10} {answer.score:.3f}")

    print("\nwith the bornIn-chain relaxation (w=0.6):")
    for answer in with_chains.query_trinit(query, k=10).answers:
        print(f"  {answer.as_dict()['s']:<10} {answer.score:.3f}")

    print("\nnote: suburb-born people (kylian, annie) enter the ranking with")
    print("chain-discounted scores; verlaine (metz → france) stays out.")


if __name__ == "__main__":
    main()
