"""Unit tests for repro.relax.rules."""

import pytest

from repro.errors import RelaxationError
from repro.kg.pattern import TriplePattern, var
from repro.relax.rules import RelaxationRule, RuleSet


def tp(name, v="s"):
    return TriplePattern(var(v), "rdf:type", name)


class TestRuleValidation:
    def test_valid_rule(self):
        rule = RelaxationRule(tp("singer"), tp("vocalist"), 0.8)
        assert rule.weight == 0.8

    @pytest.mark.parametrize("weight", [0.0, -0.5, 1.5])
    def test_bad_weights_rejected(self, weight):
        with pytest.raises(RelaxationError):
            RelaxationRule(tp("a"), tp("b"), weight)

    def test_weight_one_allowed(self):
        assert RelaxationRule(tp("a"), tp("b"), 1.0).weight == 1.0

    def test_variable_change_rejected(self):
        with pytest.raises(RelaxationError):
            RelaxationRule(tp("a", "s"), tp("b", "other"), 0.5)

    def test_identity_rule_rejected(self):
        with pytest.raises(RelaxationError):
            RelaxationRule(tp("a"), tp("a"), 0.5)


class TestRetargeting:
    def test_rename_to_other_variable(self):
        rule = RelaxationRule(tp("singer", "s"), tp("vocalist", "s"), 0.8)
        retargeted = rule.rename_to(tp("singer", "x"))
        assert retargeted.domain == tp("singer", "x")
        assert retargeted.range == tp("vocalist", "x")
        assert retargeted.weight == 0.8

    def test_rename_to_wrong_key_raises(self):
        rule = RelaxationRule(tp("singer"), tp("vocalist"), 0.8)
        with pytest.raises(RelaxationError):
            rule.rename_to(tp("pianist"))


class TestRuleSet:
    def test_add_and_lookup(self):
        rs = RuleSet([RelaxationRule(tp("a"), tp("b"), 0.5)])
        assert len(rs) == 1
        assert rs.has_rules_for(tp("a"))
        assert not rs.has_rules_for(tp("zz"))

    def test_lookup_is_variable_agnostic(self):
        rs = RuleSet([RelaxationRule(tp("a", "s"), tp("b", "s"), 0.5)])
        rules = rs.for_pattern(tp("a", "x"))
        assert len(rules) == 1
        assert rules[0].range == tp("b", "x")

    def test_sorted_best_weight_first(self):
        rs = RuleSet()
        rs.add(RelaxationRule(tp("a"), tp("low"), 0.2))
        rs.add(RelaxationRule(tp("a"), tp("high"), 0.9))
        weights = [r.weight for r in rs.for_pattern(tp("a"))]
        assert weights == [0.9, 0.2]

    def test_same_domain_range_replaces(self):
        rs = RuleSet()
        rs.add(RelaxationRule(tp("a"), tp("b"), 0.5))
        rs.add(RelaxationRule(tp("a"), tp("b"), 0.7))
        rules = rs.for_pattern(tp("a"))
        assert len(rules) == 1
        assert rules[0].weight == 0.7

    def test_n_rules_for(self):
        rs = RuleSet()
        rs.add(RelaxationRule(tp("a"), tp("b"), 0.5))
        rs.add(RelaxationRule(tp("a"), tp("c"), 0.4))
        assert rs.n_rules_for(tp("a")) == 2
        assert rs.n_rules_for(tp("zz")) == 0

    def test_iteration_and_domains(self):
        rs = RuleSet()
        rs.add(RelaxationRule(tp("a"), tp("b"), 0.5))
        rs.add(RelaxationRule(tp("x"), tp("y"), 0.4))
        assert len(list(rs)) == 2
        assert len(rs.domains()) == 2

    def test_merged_with(self):
        rs1 = RuleSet([RelaxationRule(tp("a"), tp("b"), 0.5)])
        rs2 = RuleSet([RelaxationRule(tp("x"), tp("y"), 0.4)])
        merged = rs1.merged_with(rs2)
        assert merged.has_rules_for(tp("a"))
        assert merged.has_rules_for(tp("x"))
        # Originals untouched
        assert not rs1.has_rules_for(tp("x"))
