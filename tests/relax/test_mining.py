"""Unit tests for instance-overlap relaxation mining."""

import pytest

from repro.errors import RelaxationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.relax.mining import (
    containment_weight,
    mine_object_relaxations,
    mine_predicate_relaxations,
    rules_from_taxonomy,
)


@pytest.fixture
def typed_graph():
    kg = KnowledgeGraph()
    # 4 singers; 3 of them also vocalists; 2 also musicians.
    for e in ("a", "b", "c", "d"):
        kg.add(e, "rdf:type", "singer")
    for e in ("a", "b", "c"):
        kg.add(e, "rdf:type", "vocalist")
    for e in ("a", "b"):
        kg.add(e, "rdf:type", "musician")
    kg.add("z", "rdf:type", "vocalist")  # vocalist-only entity
    return kg


class TestContainment:
    def test_full_containment(self):
        assert containment_weight({"a", "b"}, {"a", "b", "c"}) == 1.0

    def test_partial(self):
        assert containment_weight({"a", "b", "c", "d"}, {"a", "b"}) == 0.5

    def test_empty_a(self):
        assert containment_weight(set(), {"a"}) == 0.0

    def test_asymmetry(self):
        a, b = {"a", "b", "c", "d"}, {"a", "b", "c"}
        assert containment_weight(a, b) != containment_weight(b, a)


class TestObjectMining:
    def test_weights_match_overlap(self, typed_graph):
        rules = mine_object_relaxations(typed_graph, "rdf:type", min_weight=0.05)
        singer = TriplePattern(var("s"), "rdf:type", "singer")
        by_target = {r.range.object: r.weight for r in rules.for_pattern(singer)}
        assert by_target["vocalist"] == pytest.approx(3 / 4)
        assert by_target["musician"] == pytest.approx(2 / 4)

    def test_min_weight_filters(self, typed_graph):
        rules = mine_object_relaxations(typed_graph, "rdf:type", min_weight=0.6)
        singer = TriplePattern(var("s"), "rdf:type", "singer")
        targets = {r.range.object for r in rules.for_pattern(singer)}
        assert targets == {"vocalist"}

    def test_max_rules_cap(self, typed_graph):
        rules = mine_object_relaxations(
            typed_graph, "rdf:type", min_weight=0.05, max_rules_per_constant=1
        )
        singer = TriplePattern(var("s"), "rdf:type", "singer")
        assert len(rules.for_pattern(singer)) == 1

    def test_constants_filter(self, typed_graph):
        rules = mine_object_relaxations(
            typed_graph, "rdf:type", constants=["vocalist"]
        )
        assert not rules.has_rules_for(TriplePattern(var("s"), "rdf:type", "singer"))
        assert rules.has_rules_for(TriplePattern(var("s"), "rdf:type", "vocalist"))

    def test_full_containment_excluded(self, typed_graph):
        # weight 1.0 rules are excluded (weight must be < 1 for mined rules)
        kg = typed_graph
        kg.add("e", "rdf:type", "duplicate_singer")
        rules = mine_object_relaxations(kg, "rdf:type")
        for rule in rules:
            assert rule.weight < 1.0

    def test_bad_min_weight_raises(self, typed_graph):
        with pytest.raises(RelaxationError):
            mine_object_relaxations(typed_graph, "rdf:type", min_weight=1.0)


class TestPredicateMining:
    def test_overlapping_predicates(self):
        kg = KnowledgeGraph()
        for e in ("a", "b", "c"):
            kg.add(e, "sings", f"song_{e}")
        for e in ("a", "b"):
            kg.add(e, "performs", f"song_{e}")
        rules = mine_predicate_relaxations(kg, min_weight=0.1)
        sings = TriplePattern(var("s"), "sings", var("o"))
        by_target = {r.range.predicate: r.weight for r in rules.for_pattern(sings)}
        assert by_target["performs"] == pytest.approx(2 / 3)


class TestTaxonomyRules:
    def test_table1_shape(self):
        taxonomy = {
            "singer": [("vocalist", 0.8), ("jazz_singer", 0.6), ("artist", 0.3)],
            "lyricist": [("writer", 0.7)],
        }
        rules = rules_from_taxonomy(taxonomy)
        singer = TriplePattern(var("s"), "rdf:type", "singer")
        assert len(rules.for_pattern(singer)) == 3
        assert rules.for_pattern(singer)[0].weight == 0.8
