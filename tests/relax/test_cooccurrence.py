"""Unit tests for the Twitter co-occurrence relaxation scheme."""

import pytest

from repro.errors import RelaxationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.relax.cooccurrence import CooccurrenceIndex, mine_cooccurrence_rules


@pytest.fixture
def tweets_graph():
    """4 tweets: #ariana appears in 3, #intoyouvideo in 2 (both with
    #ariana), video in 1 (with both)."""
    kg = KnowledgeGraph()
    corpus = {
        "t1": ["#ariana", "#intoyouvideo", "video"],
        "t2": ["#ariana", "#intoyouvideo"],
        "t3": ["#ariana", "dangerous"],
        "t4": ["other", "dangerous"],
    }
    for tweet_id, terms in corpus.items():
        for term in terms:
            kg.add(tweet_id, "hasTag", term, score=1.0)
    return kg


class TestCooccurrenceIndex:
    def test_counts(self, tweets_graph):
        index = CooccurrenceIndex(tweets_graph, "hasTag")
        assert index.count("#ariana") == 3
        assert index.count("#intoyouvideo") == 2
        assert index.count("nonexistent") == 0
        assert index.n_groups == 4

    def test_pair_counts_symmetric(self, tweets_graph):
        index = CooccurrenceIndex(tweets_graph, "hasTag")
        assert index.pair_count("#ariana", "#intoyouvideo") == 2
        assert index.pair_count("#intoyouvideo", "#ariana") == 2

    def test_pair_count_self(self, tweets_graph):
        index = CooccurrenceIndex(tweets_graph, "hasTag")
        assert index.pair_count("#ariana", "#ariana") == 3

    def test_weight_formula(self, tweets_graph):
        # w = #tweets(T1 ∧ T2) / #tweets(T1) — the paper's §4.2 formula.
        index = CooccurrenceIndex(tweets_graph, "hasTag")
        assert index.weight("#intoyouvideo", "#ariana") == pytest.approx(1.0)
        assert index.weight("#ariana", "#intoyouvideo") == pytest.approx(2 / 3)
        assert index.weight("nonexistent", "#ariana") == 0.0

    def test_weight_asymmetric(self, tweets_graph):
        index = CooccurrenceIndex(tweets_graph, "hasTag")
        assert index.weight("video", "#ariana") != index.weight("#ariana", "video")

    def test_neighbours_sorted(self, tweets_graph):
        index = CooccurrenceIndex(tweets_graph, "hasTag")
        neighbours = index.neighbours("#ariana")
        weights = [w for _, w in neighbours]
        assert weights == sorted(weights, reverse=True)

    def test_other_predicates_ignored(self, tweets_graph):
        tweets_graph.add("t1", "postedBy", "user1")
        index = CooccurrenceIndex(tweets_graph, "hasTag")
        assert index.count("user1") == 0


class TestMining:
    def test_rules_built_with_formula_weights(self, tweets_graph):
        rules = mine_cooccurrence_rules(tweets_graph, "hasTag", min_weight=0.1)
        pattern = TriplePattern(var("s"), "hasTag", "#ariana")
        by_target = {r.range.object: r.weight for r in rules.for_pattern(pattern)}
        assert by_target["#intoyouvideo"] == pytest.approx(2 / 3)

    def test_weight_one_rules_excluded(self, tweets_graph):
        # #intoyouvideo -> #ariana has weight 1.0: excluded (mined rules
        # must strictly reduce scores).
        rules = mine_cooccurrence_rules(tweets_graph, "hasTag", min_weight=0.1)
        pattern = TriplePattern(var("s"), "hasTag", "#intoyouvideo")
        targets = {r.range.object for r in rules.for_pattern(pattern)}
        assert "#ariana" not in targets

    def test_items_filter(self, tweets_graph):
        rules = mine_cooccurrence_rules(
            tweets_graph, "hasTag", items=["#ariana"], min_weight=0.1
        )
        assert all(r.domain.object == "#ariana" for r in rules)

    def test_max_rules_per_item(self, tweets_graph):
        rules = mine_cooccurrence_rules(
            tweets_graph, "hasTag", min_weight=0.05, max_rules_per_item=1
        )
        pattern = TriplePattern(var("s"), "hasTag", "#ariana")
        assert len(rules.for_pattern(pattern)) <= 1

    def test_bad_min_weight(self, tweets_graph):
        with pytest.raises(RelaxationError):
            mine_cooccurrence_rules(tweets_graph, "hasTag", min_weight=-0.1)
