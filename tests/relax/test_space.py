"""Unit tests for relaxation-space summaries."""

import pytest

from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet
from repro.relax.space import summarize


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def rules():
    rs = RuleSet()
    rs.add(RelaxationRule(tp("a"), tp("a1"), 0.9))
    rs.add(RelaxationRule(tp("a"), tp("a2"), 0.5))
    rs.add(RelaxationRule(tp("b"), tp("b1"), 0.4))
    return rs


class TestSummarize:
    def test_counts_and_total(self, rules):
        q = TriplePatternQuery((tp("a"), tp("b"), tp("c")))
        summary = summarize(q, rules)
        assert [p.n_rules for p in summary.per_pattern] == [2, 1, 0]
        assert summary.total_variants == 3 * 2 * 1

    def test_relaxable_flags(self, rules):
        q = TriplePatternQuery((tp("a"), tp("c")))
        summary = summarize(q, rules)
        assert summary.per_pattern[0].relaxable
        assert not summary.per_pattern[1].relaxable
        assert summary.n_relaxable_patterns == 1

    def test_best_weights(self, rules):
        q = TriplePatternQuery((tp("a"), tp("b")))
        summary = summarize(q, rules)
        assert summary.per_pattern[0].best_weight == 0.9
        assert summary.per_pattern[1].best_weight == 0.4
        assert summary.max_weight_product == pytest.approx(0.36)

    def test_unrelaxable_ignored_in_product(self, rules):
        q = TriplePatternQuery((tp("a"), tp("c")))
        assert summarize(q, rules).max_weight_product == pytest.approx(0.9)
