"""Unit tests for chain relaxations (the §6 future-work extension)."""

import pytest

from repro.errors import RelaxationError
from repro.kg.pattern import TriplePattern, var
from repro.relax.chains import ChainRelaxationRule, ChainRuleSet


def chain_rule(weight=0.5):
    return ChainRelaxationRule(
        domain=TriplePattern(var("s"), "bornIn", "paris"),
        chain=(
            TriplePattern(var("s"), "bornIn", var("m")),
            TriplePattern(var("m"), "locatedIn", "paris"),
        ),
        weight=weight,
    )


class TestValidation:
    def test_valid_rule(self):
        rule = chain_rule()
        assert rule.intermediate_variables == ("m",)

    @pytest.mark.parametrize("weight", [0.0, -1.0, 1.0001])
    def test_bad_weight(self, weight):
        with pytest.raises(RelaxationError):
            chain_rule(weight)

    def test_single_pattern_chain_rejected(self):
        with pytest.raises(RelaxationError):
            ChainRelaxationRule(
                domain=TriplePattern(var("s"), "p", "o"),
                chain=(TriplePattern(var("s"), "q", var("m")),),
                weight=0.5,
            )

    def test_missing_domain_variable_rejected(self):
        with pytest.raises(RelaxationError):
            ChainRelaxationRule(
                domain=TriplePattern(var("s"), "p", "o"),
                chain=(
                    TriplePattern(var("x"), "q", var("m")),
                    TriplePattern(var("m"), "r", "o"),
                ),
                weight=0.5,
            )

    def test_no_intermediate_variable_rejected(self):
        with pytest.raises(RelaxationError):
            ChainRelaxationRule(
                domain=TriplePattern(var("s"), "p", "o"),
                chain=(
                    TriplePattern(var("s"), "q", "o"),
                    TriplePattern(var("s"), "r", "o"),
                ),
                weight=0.5,
            )

    def test_disconnected_chain_rejected(self):
        with pytest.raises(RelaxationError):
            ChainRelaxationRule(
                domain=TriplePattern(var("s"), "p", "o"),
                chain=(
                    TriplePattern(var("s"), "q", var("m")),
                    TriplePattern(var("z"), "r", var("w")),
                ),
                weight=0.5,
            )


class TestRetargeting:
    def test_rename_outer_variable(self):
        rule = chain_rule()
        retargeted = rule.rename_to(TriplePattern(var("x"), "bornIn", "paris"))
        assert retargeted.chain[0] == TriplePattern(var("x"), "bornIn", var("m"))
        assert retargeted.chain[1] == TriplePattern(var("m"), "locatedIn", "paris")

    def test_rename_wrong_key_rejected(self):
        with pytest.raises(RelaxationError):
            chain_rule().rename_to(TriplePattern(var("s"), "diedIn", "paris"))


class TestChainRuleSet:
    def test_add_and_lookup(self):
        rules = ChainRuleSet([chain_rule()])
        assert len(rules) == 1
        domain = TriplePattern(var("q"), "bornIn", "paris")
        assert rules.has_rules_for(domain)
        retargeted = rules.for_pattern(domain)
        assert retargeted[0].domain == domain

    def test_same_chain_replaces(self):
        rules = ChainRuleSet()
        rules.add(chain_rule(0.5))
        rules.add(chain_rule(0.7))
        assert len(list(rules)) == 1
        assert next(iter(rules)).weight == 0.7

    def test_sorted_by_weight(self):
        other = ChainRelaxationRule(
            domain=TriplePattern(var("s"), "bornIn", "paris"),
            chain=(
                TriplePattern(var("s"), "livesIn", var("m")),
                TriplePattern(var("m"), "locatedIn", "paris"),
            ),
            weight=0.9,
        )
        rules = ChainRuleSet([chain_rule(0.5), other])
        weights = [r.weight for r in rules.for_pattern(chain_rule().domain)]
        assert weights == [0.9, 0.5]
