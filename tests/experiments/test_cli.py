"""Unit tests for the CLI entry point."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.cli import build_workload, main, run_experiment
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol


class TestBuildWorkload:
    def test_small_xkg(self):
        w = build_workload("xkg", "small", seed=None)
        assert w.name == "xkg"
        assert len(w.queries) == 24

    def test_seed_override(self):
        w1 = build_workload("twitter", "small", seed=1)
        w2 = build_workload("twitter", "small", seed=1)
        assert [q.patterns for q in w1.queries] == [q.patterns for q in w2.queries]

    def test_unknown_dataset(self):
        with pytest.raises(ExperimentError):
            build_workload("freebase", "small", None)

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            build_workload("xkg", "galactic", None)


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def session(self):
        workload = build_workload("twitter", "small", seed=3)
        # Trim to a handful of queries to keep CLI tests fast.
        workload.queries = workload.queries[:6]
        return ExperimentSession(
            workload, ks=(3,), protocol=TimingProtocol(1, 1)
        )

    def test_tables_render(self, session):
        for name in ("table2", "table3", "table4"):
            assert name.replace("table", "Table ") in run_experiment(name, session)

    def test_twitter_figures(self, session):
        assert "Figure 8" in run_experiment("fig8", session)
        assert "Figure 9" in run_experiment("fig9", session)

    def test_wrong_dataset_figure_rejected(self, session):
        with pytest.raises(ExperimentError):
            run_experiment("fig6", session)

    def test_unknown_experiment(self, session):
        with pytest.raises(ExperimentError):
            run_experiment("table9", session)


class TestMain:
    def test_main_runs_table2(self, capsys):
        code = main(
            [
                "table2",
                "--dataset", "twitter",
                "--scale", "small",
                "--ks", "3",
                "--runs", "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "workload" in output

    def test_main_figure_with_chart(self, capsys):
        code = main(
            [
                "fig8",
                "--dataset", "twitter",
                "--scale", "small",
                "--ks", "3",
                "--runs", "1",
                "--chart",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 8" in output
        assert "█" in output  # chart bars rendered


class TestConvert:
    @pytest.fixture
    def tsv_path(self, tmp_path):
        path = tmp_path / "mini.tsv"
        path.write_text("a\tp\tb\t2\nc\tp\td\t5\n")
        return path

    def test_tsv_to_snapshot_and_back(self, tsv_path, tmp_path, capsys):
        snapshot = tmp_path / "mini.npz"
        assert main(["convert", "--input", str(tsv_path), "--output", str(snapshot)]) == 0
        assert "2 triples" in capsys.readouterr().out
        assert snapshot.exists()

        back = tmp_path / "back.tsv"
        assert main(["convert", "--input", str(snapshot), "--output", str(back)]) == 0
        assert back.read_bytes() == tsv_path.read_bytes()

    def test_graph_name_override(self, tsv_path, tmp_path):
        from repro.kg import storage

        snapshot = tmp_path / "named.npz"
        code = main(
            [
                "convert",
                "--input", str(tsv_path),
                "--output", str(snapshot),
                "--graph-name", "renamed",
            ]
        )
        assert code == 0
        assert storage.load_snapshot(snapshot).name == "renamed"

    def test_missing_arguments_fail(self, capsys):
        assert main(["convert"]) == 2
        assert "requires --input and --output" in capsys.readouterr().err

    def test_unknown_suffix_fails(self, tsv_path, capsys):
        code = main(["convert", "--input", str(tsv_path), "--output", "out.parquet"])
        assert code == 2
        assert "cannot infer storage format" in capsys.readouterr().err

    def test_bad_tsv_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsv"
        bad.write_text("a\tp\tb\tinf\n")
        code = main(["convert", "--input", str(bad), "--output", str(tmp_path / "o.npz")])
        assert code == 2
        assert "non-finite score" in capsys.readouterr().err

    def test_missing_input_file_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "convert",
                "--input", str(tmp_path / "absent.tsv"),
                "--output", str(tmp_path / "o.npz"),
            ]
        )
        assert code == 2
        assert "convert failed" in capsys.readouterr().err


class TestUpdate:
    @pytest.fixture
    def tsv_path(self, tmp_path):
        path = tmp_path / "mini.tsv"
        path.write_text("a\tp\tb\t2\nc\tp\td\t5\ne\tp\tf\t3\n")
        return path

    @pytest.fixture
    def updates_path(self, tmp_path):
        path = tmp_path / "edits.tsv"
        path.write_text(
            "# mutation feed\n"
            "+\tg\tp\th\t9\n"     # fresh add
            "+\ta\tp\tb\t7\n"     # score overwrite
            "-\tc\tp\td\n"        # remove
            "-\tno\tsuch\trow\n"  # absent remove
            "+\ti\tp\tj\n"        # score defaults to 1.0
        )
        return path

    def test_update_tsv_to_snapshot(self, tsv_path, updates_path, tmp_path, capsys):
        from repro.kg import storage

        out = tmp_path / "updated.npz"
        code = main(
            [
                "update",
                "--input", str(tsv_path),
                "--updates", str(updates_path),
                "--output", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "3 adds / 1 removes (1 absent)" in printed
        graph = storage.load_snapshot(out)
        rows = {t.spo: t.score for t in graph.triples()}
        assert rows == {
            ("a", "p", "b"): 7.0,
            ("e", "p", "f"): 3.0,
            ("g", "p", "h"): 9.0,
            ("i", "p", "j"): 1.0,
        }

    def test_update_with_compact_threshold(self, tsv_path, updates_path, tmp_path, capsys):
        out = tmp_path / "updated.tsv"
        code = main(
            [
                "update",
                "--input", str(tsv_path),
                "--updates", str(updates_path),
                "--output", str(out),
                "--compact-threshold", "2",
            ]
        )
        assert code == 0
        assert "compactions" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) == 4

    def test_missing_arguments_fail(self, tsv_path, capsys):
        assert main(["update", "--input", str(tsv_path)]) == 2
        assert "requires --input, --updates and --output" in capsys.readouterr().err

    def test_bad_update_line_fails_cleanly(self, tsv_path, tmp_path, capsys):
        bad = tmp_path / "bad.tsv"
        bad.write_text("*\ta\tp\tb\n")
        code = main(
            [
                "update",
                "--input", str(tsv_path),
                "--updates", str(bad),
                "--output", str(tmp_path / "o.npz"),
            ]
        )
        assert code == 2
        assert "update op" in capsys.readouterr().err


class TestScenarioFlag:
    def test_workload_serves_a_pack(self, capsys):
        code = main(
            ["workload", "--scenario", "adversarial-ties", "--min-queries", "0"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "# scenario: adversarial-ties (seed 809)" in printed
        assert "scenario:adversarial-ties" in printed

    def test_workload_k_defaults_to_the_packs_k(self, capsys):
        code = main(
            ["workload", "--scenario", "adversarial-edge-k", "--min-queries", "0"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "k=25" in printed
        # Update-carrying pack in warm mode: the stream replays and a
        # second post-update batch is reported.
        assert "# scenario update stream:" in printed
        assert printed.count("WorkloadReport") == 2

    def test_workload_without_scenario_keeps_default_k(self, capsys):
        code = main(
            ["workload", "--dataset", "xkg", "--scale", "small",
             "--min-queries", "0"]
        )
        assert code == 0
        assert "k=10" in capsys.readouterr().out

    def test_workload_seed_overrides_the_packs_seed(self, capsys):
        code = main(
            ["workload", "--scenario", "media-base", "--seed", "3",
             "--min-queries", "0"]
        )
        assert code == 0
        assert "# scenario: media-base (seed 3)" in capsys.readouterr().out

    def test_workload_unknown_scenario_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["workload", "--scenario", "nope"])
        assert "--scenario" in capsys.readouterr().err

    def test_update_replays_the_packs_stream(self, tmp_path, capsys):
        out = tmp_path / "post-update.npz"
        code = main(
            ["update", "--scenario", "social-update-heavy",
             "--output", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "scenario social-update-heavy (seed 613)" in printed
        assert "applied 160 adds / 80 removes" in printed
        assert out.exists()

    def test_update_rejects_packs_without_a_stream(self, capsys):
        code = main(["update", "--scenario", "commerce-base"])
        assert code == 2
        assert "ships no update stream" in capsys.readouterr().err

    @pytest.mark.slow_scenario
    def test_every_shipped_pack_serves_end_to_end(self, capsys):
        """`make scenarios` coverage: `workload --scenario NAME` runs
        every registered pack through the full serving path."""
        from repro.datasets import scenario_names

        for name in scenario_names():
            code = main(
                ["workload", "--scenario", name, "--min-queries", "0",
                 "--executor", "auto"]
            )
            printed = capsys.readouterr().out
            assert code == 0, name
            assert f"# scenario: {name}" in printed
