"""Golden regression tests for the table experiments (smoke profile).

Tables 2–4 are fully deterministic given a seeded workload: they report
answer-set metrics (precision, prediction accuracy, score deviation) and
contain no wall-clock columns.  Freezing the exact rendered output on the
smoke-sized workloads pins the whole pipeline — dataset generation, rule
mining, statistics, PLANGEN, operators, metric aggregation *and* the
renderers — so a refactor that silently drifts any of them fails loudly
here instead of shipping wrong numbers.

If a change legitimately alters these numbers (e.g. a new estimator
default), regenerate the goldens and say so in the commit:

    PYTHONPATH=src python -m pytest tests/experiments/test_golden_tables.py -q
"""

from __future__ import annotations

import pytest

from repro.experiments import table2, table3, table4
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol

XKG_TABLE2 = """\
Table 2 — precision over xkg
============================
k  precision (=recall)  #queries
-  -------------------  --------
3  0.72                 12
5  0.78                 12"""

XKG_TABLE3 = """\
Table 3 — prediction accuracy over xkg (correct(total))
=======================================================
queries requiring  k=3   k=5
-----------------  ----  ----
0 relaxation(s)    -(-)  -(-)
1 relaxation(s)    0(1)  1(1)
2 relaxation(s)    1(5)  1(4)
3 relaxation(s)    3(5)  3(4)
4 relaxation(s)    0(1)  2(3)"""

XKG_TABLE4 = """\
Table 4 — score deviation over xkg (mean(percent)±std)
======================================================
k  #TP=2           #TP=3          #TP=4
-  --------------  -------------  -------------
3  0.52(26%)±0.37  0.07(2%)±0.12  0.09(2%)±0.15
5  0.14(7%)±0.17   0.09(3%)±0.15  0.09(2%)±0.16"""

TWITTER_TABLE2 = """\
Table 2 — precision over twitter
================================
k  precision (=recall)  #queries
-  -------------------  --------
3  0.83                 10
5  0.86                 10"""

TWITTER_TABLE3 = """\
Table 3 — prediction accuracy over twitter (correct(total))
===========================================================
queries requiring  k=3   k=5
-----------------  ----  ----
0 relaxation(s)    1(1)  0(1)
1 relaxation(s)    0(2)  -(-)
2 relaxation(s)    1(3)  2(5)
3 relaxation(s)    4(4)  4(4)"""

TWITTER_TABLE4 = """\
Table 4 — score deviation over twitter (mean(percent)±std)
==========================================================
k  #TP=2          #TP=3
-  -------------  -------------
3  0.14(7%)±0.22  0.03(1%)±0.05
5  0.18(9%)±0.26  0.00(0%)±0.00"""


@pytest.fixture(scope="module")
def xkg_session(tiny_xkg_workload):
    return ExperimentSession(
        tiny_xkg_workload, ks=(3, 5), protocol=TimingProtocol(n_runs=1, n_keep=1)
    )


@pytest.fixture(scope="module")
def twitter_session(tiny_twitter_workload):
    return ExperimentSession(
        tiny_twitter_workload, ks=(3, 5), protocol=TimingProtocol(n_runs=1, n_keep=1)
    )


class TestXKGGoldens:
    def test_table2(self, xkg_session):
        assert table2.render(xkg_session) == XKG_TABLE2

    def test_table3(self, xkg_session):
        assert table3.render(xkg_session) == XKG_TABLE3

    def test_table4(self, xkg_session):
        assert table4.render(xkg_session) == XKG_TABLE4


class TestTwitterGoldens:
    def test_table2(self, twitter_session):
        assert table2.render(twitter_session) == TWITTER_TABLE2

    def test_table3(self, twitter_session):
        assert table3.render(twitter_session) == TWITTER_TABLE3

    def test_table4(self, twitter_session):
        assert table4.render(twitter_session) == TWITTER_TABLE4


class TestGoldensHoldUnderSharding:
    """The sharded substrate must reproduce the frozen numbers exactly."""

    def test_xkg_tables_identical_when_sharded(self, tiny_xkg_workload):
        from repro.datasets.workload import Workload
        from repro.kg.sharding import ShardedGraph

        sharded = Workload(
            tiny_xkg_workload.name,
            ShardedGraph.from_graph(
                tiny_xkg_workload.graph, 3, strategy="score-range"
            ),
            tiny_xkg_workload.rules,
            list(tiny_xkg_workload.queries),
        )
        session = ExperimentSession(
            sharded, ks=(3, 5), protocol=TimingProtocol(n_runs=1, n_keep=1)
        )
        assert table2.render(session) == XKG_TABLE2
        assert table3.render(session) == XKG_TABLE3
        assert table4.render(session) == XKG_TABLE4
