"""Unit tests for CSV/JSON export of experiment records."""

import csv
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.export import FIELDS, export_csv, export_json, record_to_row
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol


@pytest.fixture(scope="module")
def session(tiny_twitter_workload):
    return ExperimentSession(
        tiny_twitter_workload,
        ks=(3,),
        protocol=TimingProtocol(n_runs=1, n_keep=1),
    )


class TestRecordToRow:
    def test_all_fields_present(self, session):
        record = session.records(3)[0]
        row = record_to_row(record)
        assert set(row) == set(FIELDS)

    def test_values_consistent(self, session):
        record = session.records(3)[0]
        row = record_to_row(record)
        assert row["k"] == 3
        assert row["precision"] == record.precision
        assert row["n_patterns"] == record.n_patterns


class TestCSV:
    def test_round_trip(self, session, tmp_path):
        path = tmp_path / "records.csv"
        n = export_csv(session, path)
        assert n == len(session.workload.queries)
        with open(path, encoding="utf-8", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == n
        assert set(rows[0]) == set(FIELDS)
        assert all(0.0 <= float(r["precision"]) <= 1.0 for r in rows)

    def test_unknown_k_rejected(self, session, tmp_path):
        with pytest.raises(ExperimentError):
            export_csv(session, tmp_path / "x.csv", ks=(99,))


class TestJSON:
    def test_document_shape(self, session, tmp_path):
        path = tmp_path / "records.json"
        n = export_json(session, path)
        document = json.loads(path.read_text())
        assert document["workload"]["name"] == "twitter"
        assert document["ks"] == [3]
        assert len(document["records"]) == n

    def test_with_answers(self, session, tmp_path):
        path = tmp_path / "records_full.json"
        export_json(session, path, include_answers=True)
        document = json.loads(path.read_text())
        record = document["records"][0]
        assert "spec_answers" in record
        assert "trinit_answers" in record
        for answer in record["trinit_answers"]:
            assert set(answer) == {"bindings", "score"}

    def test_json_is_deterministic(self, session, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        export_json(session, a)
        export_json(session, b)
        assert a.read_text() == b.read_text()
