"""Unit tests for ASCII chart rendering."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import FigureGroup
from repro.experiments.plotting import render_chart


def group(k=10, g=2, t_s=0.2, s_s=0.1, t_o=1000, s_o=400):
    return FigureGroup(
        k=k,
        group=g,
        n_queries=5,
        trinit_seconds=t_s,
        spec_seconds=s_s,
        trinit_objects=t_o,
        spec_objects=s_o,
    )


class TestRenderChart:
    def test_runtime_chart_contains_bars_and_values(self):
        text = render_chart([group()], "runtime", title="Fig X")
        assert "Fig X" in text
        assert "█" in text  # T bar
        assert "▒" in text  # S bar
        assert "200.0ms" in text
        assert "100.0ms" in text

    def test_memory_chart(self):
        text = render_chart([group()], "memory")
        assert "1,000" in text
        assert "400" in text

    def test_one_panel_per_k(self):
        text = render_chart([group(k=10), group(k=20)], "runtime")
        assert "k=10" in text and "k=20" in text

    def test_bigger_value_longer_bar(self):
        text = render_chart([group(t_s=0.4, s_s=0.1)], "runtime")
        lines = text.splitlines()
        t_line = next(l for l in lines if l.strip().startswith("T"))
        s_line = next(l for l in lines if l.strip().startswith("S"))
        assert t_line.count("█") > s_line.count("▒")

    def test_unknown_metric_rejected(self):
        with pytest.raises(ExperimentError):
            render_chart([group()], "latency")

    def test_empty_groups_rejected(self):
        with pytest.raises(ExperimentError):
            render_chart([], "runtime")


class TestFigureGroupHelpers:
    def test_runtime_gain(self):
        assert group(t_s=0.4, s_s=0.2).runtime_gain == pytest.approx(2.0)

    def test_runtime_gain_zero_spec(self):
        assert group(s_s=0.0).runtime_gain == float("inf")
