"""Unit tests for the table/figure aggregations."""

import pytest

from repro.experiments import table2, table3, table4
from repro.experiments.figures import (
    figure_efficiency_by_patterns,
    figure_efficiency_by_relaxed,
    render as render_figure,
)
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol


@pytest.fixture(scope="module")
def session(tiny_xkg_workload):
    return ExperimentSession(
        tiny_xkg_workload,
        ks=(3, 5),
        protocol=TimingProtocol(n_runs=2, n_keep=1),
    )


class TestTable2:
    def test_one_row_per_k(self, session):
        rows = table2.table2_precision(session)
        assert [row.k for row in rows] == [3, 5]

    def test_precision_in_unit_interval(self, session):
        for row in table2.table2_precision(session):
            assert 0.0 <= row.precision <= 1.0

    def test_render_contains_values(self, session):
        text = table2.render(session)
        assert "Table 2" in text
        assert "xkg" in text


class TestTable3:
    def test_cells_partition_queries(self, session):
        cells = table3.table3_prediction_accuracy(session)
        for k in session.ks:
            total = sum(c.total for c in cells if c.k == k)
            assert total == len(session.workload.queries)

    def test_correct_at_most_total(self, session):
        for cell in table3.table3_prediction_accuracy(session):
            assert 0 <= cell.correct <= cell.total

    def test_cell_format(self, session):
        cells = table3.table3_prediction_accuracy(session)
        empty = [c for c in cells if c.total == 0]
        nonempty = [c for c in cells if c.total > 0]
        if empty:
            assert empty[0].format() == "-(-)"
        assert nonempty, "expected some non-empty groups"
        assert "(" in nonempty[0].format()

    def test_render(self, session):
        assert "Table 3" in table3.render(session)


class TestTable4:
    def test_cells_cover_sizes_and_ks(self, session):
        cells = table4.table4_score_error(session)
        sizes = {len(q) for q in session.workload.queries}
        assert {c.n_patterns for c in cells} == sizes
        assert {c.k for c in cells} == set(session.ks)

    def test_errors_non_negative(self, session):
        for cell in table4.table4_score_error(session):
            assert cell.mean_error >= 0.0
            assert cell.std_error >= 0.0
            assert cell.mean_percent >= 0.0

    def test_render(self, session):
        text = table4.render(session)
        assert "Table 4" in text
        assert "%" in text


class TestFigures:
    def test_groups_partition_queries(self, session):
        for groups_fn in (
            figure_efficiency_by_patterns,
            figure_efficiency_by_relaxed,
        ):
            groups = groups_fn(session)
            for k in session.ks:
                assert sum(g.n_queries for g in groups if g.k == k) == len(
                    session.workload.queries
                )

    def test_values_positive(self, session):
        for group in figure_efficiency_by_patterns(session):
            assert group.trinit_seconds > 0
            assert group.spec_seconds > 0
            assert group.trinit_objects > 0
            assert group.spec_objects > 0

    def test_relaxed_axis_bounded_by_patterns(self, session):
        max_patterns = max(len(q) for q in session.workload.queries)
        for group in figure_efficiency_by_relaxed(session):
            assert 0 <= group.group <= max_patterns

    def test_runtime_gain_defined(self, session):
        for group in figure_efficiency_by_patterns(session):
            assert group.runtime_gain > 0

    def test_render(self, session):
        text = render_figure(session, "patterns", "Figure 6")
        assert "Figure 6" in text
        assert "T/S" in text
