"""Unit tests for the experiment session."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol


@pytest.fixture(scope="module")
def session(tiny_xkg_workload):
    return ExperimentSession(
        tiny_xkg_workload,
        ks=(3, 5),
        protocol=TimingProtocol(n_runs=2, n_keep=1),
    )


class TestSession:
    def test_validation(self, tiny_xkg_workload):
        with pytest.raises(ExperimentError):
            ExperimentSession(tiny_xkg_workload, ks=())
        with pytest.raises(ExperimentError):
            ExperimentSession(tiny_xkg_workload, ks=(0,))

    def test_records_one_per_query(self, session):
        records = session.records(3)
        assert len(records) == len(session.workload.queries)

    def test_records_cached(self, session):
        query = session.workload.queries[0]
        assert session.record(query, 3) is session.record(query, 3)

    def test_record_fields_consistent(self, session):
        record = session.records(3)[0]
        assert record.dataset == "xkg"
        assert record.k == 3
        assert record.n_patterns >= 2
        assert 0.0 <= record.precision <= 1.0
        assert record.spec_total_seconds > 0
        assert record.trinit_total_seconds > 0
        assert record.spec_answer_objects > 0
        assert record.trinit_answer_objects > 0
        assert record.error.mean >= 0.0

    def test_trinit_is_ground_truth_length(self, session):
        for record in session.records(3):
            assert len(record.trinit_answers) <= 3

    def test_predicted_vs_required_sets_valid(self, session):
        for record in session.records(3):
            assert record.predicted_relaxed <= set(range(record.n_patterns))
            assert record.required_relaxed <= set(range(record.n_patterns))

    def test_prediction_correct_property(self, session):
        for record in session.records(3):
            expected = record.predicted_relaxed == record.required_relaxed
            assert record.prediction_correct == expected

    def test_perfect_precision_implies_zero_error(self, session):
        for record in session.records(3):
            if record.precision == 1.0 and len(record.spec_answers) == len(
                record.trinit_answers
            ):
                # Same answer sets in the same order implies tiny error.
                if [a.bindings for a in record.spec_answers] == [
                    a.bindings for a in record.trinit_answers
                ]:
                    assert record.error.mean == pytest.approx(0.0, abs=1e-9)

    def test_all_records_covers_all_ks(self, session):
        records = session.all_records()
        assert {r.k for r in records} == {3, 5}
