"""Tests for the relax-all-when-insufficient planner extension and the
catalog-driven executor cost rule.

Algorithm 1 tests one relaxation at a time: when the true top-k needs
*simultaneous* relaxations of several patterns (every single-relaxed
query is empty), the paper-faithful planner prunes all relaxations and
misses the answers.  The extension keeps every relaxable pattern whenever
the original query cannot fill the top-k.

The cost-rule tests pin :func:`~repro.core.planner.choose_executor`'s
economics: hot (cache-resident) short-list workloads stream through the
tuple pipeline, cold long-list workloads vectorize through the block
pipeline — and because both pipelines are byte-identical, either forced
choice yields the same answers the rule's pick does.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine
from repro.core.planner import (
    DEFAULT_TUPLE_REBUILD_ROWS,
    choose_executor,
)
from repro.kg.columnar import ColumnarGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet
from repro.service import MatchListCache
from repro.stats.catalog import StatisticsCatalog


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def multi_relaxation_case():
    """A query whose only answer needs BOTH patterns relaxed at once."""
    kg = KnowledgeGraph()
    # 'winner' matches neither a nor b, but matches both relaxations.
    kg.add("winner", "rdf:type", "a_relax", score=10.0)
    kg.add("winner", "rdf:type", "b_relax", score=10.0)
    # Red herrings so the single lists are non-empty but the joins are not.
    kg.add("only_a", "rdf:type", "a", score=5.0)
    kg.add("only_b", "rdf:type", "b", score=5.0)
    rules = RuleSet(
        [
            RelaxationRule(tp("a"), tp("a_relax"), 0.9),
            RelaxationRule(tp("b"), tp("b_relax"), 0.9),
        ]
    )
    query = TriplePatternQuery((tp("a"), tp("b")), projection=(var("s"),))
    return kg, rules, query


class TestPaperFaithfulBehaviour:
    def test_default_planner_prunes_everything(self, multi_relaxation_case):
        kg, rules, query = multi_relaxation_case
        engine = SpecQPEngine(kg, rules)  # extension off by default
        decision = engine.plan(query, k=1)
        # Each single-relaxed query is empty -> E_Q'(1)=0 -> nothing relaxed.
        assert decision.plan.singletons == ()
        result = engine.query(query, k=1)
        assert result.answers == ()  # the known miss


class TestExtension:
    def test_extension_recovers_the_answer(self, multi_relaxation_case):
        kg, rules, query = multi_relaxation_case
        engine = SpecQPEngine(
            kg, rules, EngineConfig(relax_all_when_insufficient=True)
        )
        decision = engine.plan(query, k=1)
        assert set(decision.plan.singletons) == {0, 1}
        result = engine.query(query, k=1)
        assert len(result.answers) == 1
        assert result.answers[0].as_dict()["s"] == "winner"
        assert result.answers[0].score == pytest.approx(0.9 + 0.9)

    def test_extension_inactive_when_query_sufficient(self):
        """With enough exact answers, the flag must not change plans."""
        kg = KnowledgeGraph()
        for i in range(20):
            score = 100.0 - i
            kg.add(f"e{i}", "rdf:type", "a", score=score)
            kg.add(f"e{i}", "rdf:type", "b", score=score)
        kg.add("r", "rdf:type", "a_relax", score=1.0)
        kg.add("r", "rdf:type", "b", score=1.0)
        rules = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.1)])
        query = TriplePatternQuery((tp("a"), tp("b")))
        plain = SpecQPEngine(kg, rules).plan(query, k=5)
        extended = SpecQPEngine(
            kg, rules, EngineConfig(relax_all_when_insufficient=True)
        ).plan(query, k=5)
        assert plain.plan.singletons == extended.plan.singletons == ()

    def test_extension_respects_unrelaxable_patterns(self, multi_relaxation_case):
        kg, rules, query = multi_relaxation_case
        rules_only_a = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.9)])
        engine = SpecQPEngine(
            kg, rules_only_a, EngineConfig(relax_all_when_insufficient=True)
        )
        decision = engine.plan(query, k=1)
        # Pattern b has no rules: it can never become a singleton.
        assert decision.plan.singletons == (0,)

    def test_config_propagates_through_with_k(self):
        config = EngineConfig(relax_all_when_insufficient=True)
        assert config.with_k(20).relax_all_when_insufficient is True


def long_list_graph(rows_per_type: int = 2 * DEFAULT_TUPLE_REBUILD_ROWS):
    """A columnar graph whose every type has far more rows than the
    tuple-rebuild threshold."""
    kg = KnowledgeGraph()
    for type_name in ("a", "b"):
        for i in range(rows_per_type):
            kg.add(f"e{i}", "rdf:type", type_name, score=float(i % 97))
    return ColumnarGraph.from_graph(kg, name="long")


class TestExecutorCostRule:
    """The regression net for :func:`choose_executor`'s economics."""

    def test_hot_short_list_workload_picks_tuple(self, music_graph):
        """Every match list resident in the shared cache → tuple: the
        pull pipeline streams off the warm lists with no block setup."""
        graph = ColumnarGraph.from_graph(music_graph, name="hot")
        cache = MatchListCache(capacity=64)
        graph.attach_match_list_cache(cache)
        query = TriplePatternQuery((tp("singer"), tp("lyricist")))
        for pattern in query.patterns:
            graph.match_list(pattern)  # warm the cache
        catalog = StatisticsCatalog(graph)
        catalog.precompute(queries=[query])
        choice = choose_executor(query, catalog, cache=cache)
        assert choice.executor == "tuple"
        assert choice.reason == "cache-resident"
        assert choice.cache_resident
        assert choice.missing_rows == 0

    def test_cold_long_list_workload_picks_block(self):
        """Nothing resident and the measured rebuild is large → block:
        the vectorized mask + lexsort amortises the per-query setup."""
        graph = long_list_graph()
        query = TriplePatternQuery((tp("a"), tp("b")))
        catalog = StatisticsCatalog(graph)
        catalog.precompute(queries=[query])
        choice = choose_executor(query, catalog, cache=MatchListCache(8))
        assert choice.executor == "block"
        assert choice.reason == "long-rebuild"
        assert choice.resident_patterns == 0
        assert choice.missing_rows == 4 * DEFAULT_TUPLE_REBUILD_ROWS

    def test_unmeasured_patterns_count_as_cold(self):
        """No catalog statistics at all → assume the worst → block."""
        graph = long_list_graph()
        catalog = StatisticsCatalog(graph)  # nothing precomputed
        query = TriplePatternQuery((tp("a"), tp("b")))
        choice = choose_executor(query, catalog)
        assert choice.executor == "block"
        assert choice.reason == "unmeasured-lists"
        assert choice.missing_rows is None

    def test_short_cold_rebuild_still_picks_tuple(self, music_graph):
        """Cold but tiny lists → tuple: sorting a handful of rows is
        cheaper than assembling blocks."""
        graph = ColumnarGraph.from_graph(music_graph, name="short")
        query = TriplePatternQuery((tp("singer"), tp("lyricist")))
        catalog = StatisticsCatalog(graph)
        catalog.precompute(queries=[query])
        choice = choose_executor(query, catalog, cache=MatchListCache(8))
        assert choice.executor == "tuple"
        assert choice.reason == "short-rebuild"
        assert 0 < choice.missing_rows <= DEFAULT_TUPLE_REBUILD_ROWS

    def test_partial_residency_counts_only_missing_rows(self, music_graph):
        graph = ColumnarGraph.from_graph(music_graph, name="partial")
        singer, lyricist = tp("singer"), tp("lyricist")
        query = TriplePatternQuery((singer, lyricist))
        catalog = StatisticsCatalog(graph)
        # Precompute before attaching the cache: building stats
        # materialises match lists, which would warm every pattern.
        catalog.precompute(queries=[query])
        graph.invalidate_caches()
        cache = MatchListCache(capacity=64)
        graph.attach_match_list_cache(cache)
        graph.match_list(singer)  # only one of the two is resident
        choice = choose_executor(query, catalog, cache=cache)
        assert choice.resident_patterns == 1
        assert choice.total_patterns == 2
        assert choice.missing_rows == catalog.match_count(lyricist)

    def test_block_unavailable_forces_tuple(self):
        graph = long_list_graph()
        catalog = StatisticsCatalog(graph)
        query = TriplePatternQuery((tp("a"),))
        choice = choose_executor(query, catalog, block_available=False)
        assert choice.executor == "tuple"
        assert choice.reason == "block-unavailable"

    def test_pinned_engines_report_pinned_choices(self, music_graph):
        graph = ColumnarGraph.from_graph(music_graph, name="pinned")
        rules = RuleSet()
        query = TriplePatternQuery((tp("singer"),))
        for kind in ("tuple", "block"):
            engine = SpecQPEngine(graph, rules, executor=kind)
            choice = engine.resolve_executor(query)
            assert choice.executor == kind
            assert choice.reason == "pinned"
        # Pinned block over an object graph downgrades to tuple (the
        # executor cannot run blocks there), still reported as pinned.
        object_engine = SpecQPEngine(KnowledgeGraph(), rules, executor="block")
        downgraded = object_engine.resolve_executor(query)
        assert downgraded.executor == "tuple"
        assert downgraded.reason == "pinned"

    def test_either_forced_executor_matches_the_rules_pick(self, music_graph):
        """The rule only ever trades speed: forcing tuple, forcing block
        and letting auto decide all return identical answers."""
        hot = ColumnarGraph.from_graph(music_graph, name="force-hot")
        cold = long_list_graph()
        cases = [
            (hot, TriplePatternQuery((tp("singer"), tp("lyricist"))), 5),
            (cold, TriplePatternQuery((tp("a"), tp("b"))), 10),
        ]
        rules = RuleSet(
            [RelaxationRule(tp("singer"), tp("vocalist"), 0.8)]
        )
        for graph, query, k in cases:
            results = {
                kind: SpecQPEngine(graph, rules, executor=kind).query(query, k=k)
                for kind in ("tuple", "block", "auto")
            }
            tuple_rows = [
                (a.bindings, a.score) for a in results["tuple"].answers
            ]
            for kind in ("block", "auto"):
                rows = [(a.bindings, a.score) for a in results[kind].answers]
                assert rows == tuple_rows, (kind, graph.name)
