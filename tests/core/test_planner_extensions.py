"""Tests for the relax-all-when-insufficient planner extension.

Algorithm 1 tests one relaxation at a time: when the true top-k needs
*simultaneous* relaxations of several patterns (every single-relaxed
query is empty), the paper-faithful planner prunes all relaxations and
misses the answers.  The extension keeps every relaxable pattern whenever
the original query cannot fill the top-k.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def multi_relaxation_case():
    """A query whose only answer needs BOTH patterns relaxed at once."""
    kg = KnowledgeGraph()
    # 'winner' matches neither a nor b, but matches both relaxations.
    kg.add("winner", "rdf:type", "a_relax", score=10.0)
    kg.add("winner", "rdf:type", "b_relax", score=10.0)
    # Red herrings so the single lists are non-empty but the joins are not.
    kg.add("only_a", "rdf:type", "a", score=5.0)
    kg.add("only_b", "rdf:type", "b", score=5.0)
    rules = RuleSet(
        [
            RelaxationRule(tp("a"), tp("a_relax"), 0.9),
            RelaxationRule(tp("b"), tp("b_relax"), 0.9),
        ]
    )
    query = TriplePatternQuery((tp("a"), tp("b")), projection=(var("s"),))
    return kg, rules, query


class TestPaperFaithfulBehaviour:
    def test_default_planner_prunes_everything(self, multi_relaxation_case):
        kg, rules, query = multi_relaxation_case
        engine = SpecQPEngine(kg, rules)  # extension off by default
        decision = engine.plan(query, k=1)
        # Each single-relaxed query is empty -> E_Q'(1)=0 -> nothing relaxed.
        assert decision.plan.singletons == ()
        result = engine.query(query, k=1)
        assert result.answers == ()  # the known miss


class TestExtension:
    def test_extension_recovers_the_answer(self, multi_relaxation_case):
        kg, rules, query = multi_relaxation_case
        engine = SpecQPEngine(
            kg, rules, EngineConfig(relax_all_when_insufficient=True)
        )
        decision = engine.plan(query, k=1)
        assert set(decision.plan.singletons) == {0, 1}
        result = engine.query(query, k=1)
        assert len(result.answers) == 1
        assert result.answers[0].as_dict()["s"] == "winner"
        assert result.answers[0].score == pytest.approx(0.9 + 0.9)

    def test_extension_inactive_when_query_sufficient(self):
        """With enough exact answers, the flag must not change plans."""
        kg = KnowledgeGraph()
        for i in range(20):
            score = 100.0 - i
            kg.add(f"e{i}", "rdf:type", "a", score=score)
            kg.add(f"e{i}", "rdf:type", "b", score=score)
        kg.add("r", "rdf:type", "a_relax", score=1.0)
        kg.add("r", "rdf:type", "b", score=1.0)
        rules = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.1)])
        query = TriplePatternQuery((tp("a"), tp("b")))
        plain = SpecQPEngine(kg, rules).plan(query, k=5)
        extended = SpecQPEngine(
            kg, rules, EngineConfig(relax_all_when_insufficient=True)
        ).plan(query, k=5)
        assert plain.plan.singletons == extended.plan.singletons == ()

    def test_extension_respects_unrelaxable_patterns(self, multi_relaxation_case):
        kg, rules, query = multi_relaxation_case
        rules_only_a = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.9)])
        engine = SpecQPEngine(
            kg, rules_only_a, EngineConfig(relax_all_when_insufficient=True)
        )
        decision = engine.plan(query, k=1)
        # Pattern b has no rules: it can never become a singleton.
        assert decision.plan.singletons == (0,)

    def test_config_propagates_through_with_k(self):
        config = EngineConfig(relax_all_when_insufficient=True)
        assert config.with_k(20).relax_all_when_insufficient is True
