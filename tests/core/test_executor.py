"""Unit tests for the plan executor."""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.plan import QueryPlan
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def setup():
    kg = KnowledgeGraph()
    for e, score in (("x", 10.0), ("y", 8.0), ("z", 6.0)):
        kg.add(e, "rdf:type", "a", score=score)
        kg.add(e, "rdf:type", "b", score=score / 2)
    kg.add("w", "rdf:type", "a_relax", score=20.0)
    kg.add("w", "rdf:type", "b", score=1.0)
    rules = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.9)])
    query = TriplePatternQuery((tp("a"), tp("b")), projection=(var("s"),))
    return kg, rules, query


class TestExecution:
    def test_exact_plan_excludes_relaxed_answers(self, setup):
        kg, rules, query = setup
        executor = PlanExecutor(kg, rules)
        result = executor.execute(QueryPlan.exact(query), k=10)
        names = {a.as_dict()["s"] for a in result.answers}
        assert names == {"x", "y", "z"}

    def test_trinit_plan_includes_relaxed_answer(self, setup):
        kg, rules, query = setup
        executor = PlanExecutor(kg, rules)
        result = executor.execute(QueryPlan.trinit(query), k=10)
        names = {a.as_dict()["s"] for a in result.answers}
        assert "w" in names

    def test_speculative_plan_with_relaxed_first_pattern(self, setup):
        kg, rules, query = setup
        executor = PlanExecutor(kg, rules)
        result = executor.execute(QueryPlan.speculative(query, (0,)), k=10)
        names = {a.as_dict()["s"] for a in result.answers}
        assert "w" in names  # relaxation of 'a' was processed

    def test_k_truncates(self, setup):
        kg, rules, query = setup
        executor = PlanExecutor(kg, rules)
        result = executor.execute(QueryPlan.trinit(query), k=2)
        assert len(result.answers) == 2

    def test_scores_descending(self, setup):
        kg, rules, query = setup
        executor = PlanExecutor(kg, rules)
        result = executor.execute(QueryPlan.trinit(query), k=10)
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_measurements_populated(self, setup):
        kg, rules, query = setup
        executor = PlanExecutor(kg, rules)
        result = executor.execute(QueryPlan.trinit(query), k=10)
        assert result.execution_seconds > 0.0
        assert result.answer_objects_created > 0
        assert result.tuples_pulled > 0

    def test_exact_cheaper_than_trinit(self, setup):
        kg, rules, query = setup
        executor = PlanExecutor(kg, rules)
        exact = executor.execute(QueryPlan.exact(query), k=10)
        trinit = executor.execute(QueryPlan.trinit(query), k=10)
        assert exact.answer_objects_created <= trinit.answer_objects_created
