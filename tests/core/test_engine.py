"""Unit tests for the SpecQPEngine facade, on the music fixture."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine


@pytest.fixture
def engine(music_graph, music_rules):
    return SpecQPEngine(music_graph, music_rules)


class TestQueryInterface:
    def test_accepts_sparql_text(self, engine):
        result = engine.query(
            "SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <lyricist> }",
            k=3,
        )
        assert len(result.answers) >= 1

    def test_accepts_query_object(self, engine, singer_lyricist_query):
        result = engine.query(singer_lyricist_query, k=3)
        assert len(result.answers) >= 1

    def test_default_k_from_config(self, music_graph, music_rules):
        engine = SpecQPEngine(music_graph, music_rules, EngineConfig(k=2))
        result = engine.query_trinit("SELECT ?s WHERE { ?s <rdf:type> <musician> }")
        assert len(result.answers) == 2

    def test_result_metadata(self, engine, singer_lyricist_query):
        result = engine.query(singer_lyricist_query, k=3)
        assert result.decision is not None
        assert result.planning_seconds >= 0
        assert result.total_seconds >= result.execution_seconds
        assert result.n_relaxed == len(result.plan.singletons)

    def test_trinit_has_no_decision(self, engine, singer_lyricist_query):
        result = engine.query_trinit(singer_lyricist_query, k=3)
        assert result.decision is None
        assert result.planning_seconds == 0.0
        assert result.plan.n_relaxed == len(singer_lyricist_query)


class TestSemantics:
    def test_exact_subset_of_trinit_answer_space(self, engine, singer_lyricist_query):
        exact = engine.query_exact(singer_lyricist_query, k=10)
        trinit = engine.query_trinit(singer_lyricist_query, k=10)
        # Every exact answer appears in the trinit answer space with at
        # least the exact score (relaxations can only add answers).
        trinit_bindings = {a.bindings: a.score for a in trinit.answers}
        for answer in exact.answers:
            if answer.bindings in trinit_bindings:
                assert trinit_bindings[answer.bindings] >= answer.score - 1e-9

    def test_exact_top1_shakira(self, engine, singer_lyricist_query):
        # shakira: singer 100/100=1.0, lyricist 70/99; beyonce: 0.9 + 60/99.
        exact = engine.query_exact(singer_lyricist_query, k=1)
        assert exact.answers[0].as_dict()["s"] == "shakira"

    def test_spec_matches_trinit_on_easy_query(self, engine, three_pattern_query):
        spec = engine.query(three_pattern_query, k=2)
        trinit = engine.query_trinit(three_pattern_query, k=2)
        assert [a.bindings for a in spec.answers] == [
            a.bindings for a in trinit.answers
        ]
        for s, t in zip(spec.answers, trinit.answers):
            assert s.score == pytest.approx(t.score)

    def test_relaxed_scores_discounted(self, engine):
        # Query for pianists: none exist... use lyricist-only query where
        # 'writer' relaxation brings dylan's writer triple at weight 0.7.
        result = engine.query_trinit(
            "SELECT ?s WHERE { ?s <rdf:type> <lyricist> }", k=10
        )
        scores = {a.as_dict()["s"]: a.score for a in result.answers}
        # dylan matches lyricist directly with normalized 1.0 (99/99).
        assert scores["dylan"] == pytest.approx(1.0)

    def test_plan_only_interface(self, engine, three_pattern_query):
        decision = engine.plan(three_pattern_query, k=5)
        assert decision.plan.query == three_pattern_query

    def test_parse_passthrough(self, engine):
        q = engine.parse("SELECT ?s WHERE { ?s <rdf:type> <singer> }")
        assert len(q) == 1
