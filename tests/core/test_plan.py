"""Unit tests for query plans and operator-tree construction."""

import pytest

from repro.core.plan import QueryPlan
from repro.errors import PlanError
from repro.kg.pattern import TriplePattern, var
from repro.operators.incremental_merge import IncrementalMerge
from repro.operators.memory import ExecutionContext
from repro.operators.rank_join import RankJoin
from repro.operators.scan import SortedScan
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def query():
    return TriplePatternQuery((tp("a"), tp("b"), tp("c")))


class TestPartitionValidation:
    def test_valid_plan(self, query):
        plan = QueryPlan(query, (0, 2), (1,))
        assert plan.n_relaxed == 1

    def test_missing_index_rejected(self, query):
        with pytest.raises(PlanError):
            QueryPlan(query, (0,), (1,))

    def test_duplicate_index_rejected(self, query):
        with pytest.raises(PlanError):
            QueryPlan(query, (0, 1), (1, 2))

    def test_out_of_range_rejected(self, query):
        with pytest.raises(PlanError):
            QueryPlan(query, (0, 1, 2), (3,))


class TestConstructors:
    def test_speculative(self, query):
        plan = QueryPlan.speculative(query, (1,))
        assert plan.join_group == (0, 2)
        assert plan.singletons == (1,)

    def test_trinit_all_singletons(self, query):
        plan = QueryPlan.trinit(query)
        assert plan.join_group == ()
        assert plan.singletons == (0, 1, 2)
        assert plan.n_relaxed == 3

    def test_exact_no_singletons(self, query):
        plan = QueryPlan.exact(query)
        assert plan.join_group == (0, 1, 2)
        assert plan.singletons == ()

    def test_describe_paper_notation(self, query):
        plan = QueryPlan.speculative(query, (1,))
        assert plan.describe() == "{{q1, q3}, {q2}}"

    def test_relaxed_patterns(self, query):
        plan = QueryPlan.speculative(query, (1,))
        assert plan.relaxed_patterns == (tp("b"),)


class TestOperatorTree:
    @pytest.fixture
    def graph_and_rules(self):
        from repro.kg.graph import KnowledgeGraph

        kg = KnowledgeGraph()
        for e, score in (("x", 10.0), ("y", 8.0)):
            for t in ("a", "b", "c", "b_relaxed"):
                kg.add(e, "rdf:type", t, score=score)
        rules = RuleSet([RelaxationRule(tp("b"), tp("b_relaxed"), 0.5)])
        return kg, rules

    def test_exact_plan_tree_is_rank_joins_over_scans(self, query, graph_and_rules):
        kg, rules = graph_and_rules
        tree = QueryPlan.exact(query).build_operator_tree(
            kg, rules, ExecutionContext()
        )
        assert isinstance(tree, RankJoin)
        assert tree.patterns_covered == frozenset({0, 1, 2})

    def test_trinit_tree_has_merges(self, query, graph_and_rules):
        kg, rules = graph_and_rules
        plan = QueryPlan.trinit(query)
        tree = plan.build_operator_tree(kg, rules, ExecutionContext())
        assert tree.patterns_covered == frozenset({0, 1, 2})

    def test_single_pattern_exact_plan_is_scan(self, graph_and_rules):
        kg, rules = graph_and_rules
        q = TriplePatternQuery((tp("a"),))
        tree = QueryPlan.exact(q).build_operator_tree(kg, rules, ExecutionContext())
        assert isinstance(tree, SortedScan)

    def test_single_singleton_is_merge(self, graph_and_rules):
        kg, rules = graph_and_rules
        q = TriplePatternQuery((tp("b"),))
        tree = QueryPlan.trinit(q).build_operator_tree(kg, rules, ExecutionContext())
        assert isinstance(tree, IncrementalMerge)
        assert tree.n_inputs == 2  # original + 1 relaxation

    def test_max_relaxations_cap(self, graph_and_rules):
        kg, rules = graph_and_rules
        rules.add(RelaxationRule(tp("b"), tp("c"), 0.4))
        q = TriplePatternQuery((tp("b"),))
        tree = QueryPlan.trinit(q).build_operator_tree(
            kg, rules, ExecutionContext(), max_relaxations_per_pattern=1
        )
        assert isinstance(tree, IncrementalMerge)
        assert tree.n_inputs == 2  # original + capped to 1 relaxation

    def test_tree_execution_consistency(self, query, graph_and_rules):
        kg, rules = graph_and_rules
        for plan in (QueryPlan.exact(query), QueryPlan.trinit(query)):
            tree = plan.build_operator_tree(kg, rules, ExecutionContext())
            items = tree.drain()
            scores = [i.score for i in items]
            assert scores == sorted(scores, reverse=True)
