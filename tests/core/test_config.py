"""Unit tests for engine configuration."""

import pytest

from repro.core.config import EngineConfig
from repro.errors import ExperimentError


class TestValidation:
    def test_defaults_are_paper_settings(self):
        config = EngineConfig()
        assert config.k == 10
        assert config.mass_fraction == 0.8
        assert config.histogram_kind == "two-bucket"
        assert config.selectivity_mode == "exact"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"mass_fraction": 0.0},
            {"mass_fraction": 1.0},
            {"histogram_kind": "wavelet"},
            {"n_buckets": 1},
            {"selectivity_mode": "sampling"},
            {"max_relaxations_per_pattern": 0},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            EngineConfig(**kwargs)

    def test_with_k_preserves_other_fields(self):
        config = EngineConfig(mass_fraction=0.7, n_buckets=5)
        new = config.with_k(20)
        assert new.k == 20
        assert new.mass_fraction == 0.7
        assert new.n_buckets == 5

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(AttributeError):
            config.k = 5  # type: ignore[misc]
