"""Unit tests for the expected-score estimator."""

import pytest

from repro.core.estimator import ExpectedScoreEstimator
from repro.errors import EstimationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.stats.catalog import StatisticsCatalog


def tp(name, v="s"):
    return TriplePattern(var(v), "rdf:type", name)


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    # Two type lists with power-law scores and partial overlap.
    scores = [100, 60, 30, 20, 10, 8, 5, 3, 2, 1]
    for i, score in enumerate(scores):
        kg.add(f"e{i}", "rdf:type", "t1", score=score)
    for i, score in enumerate(scores[:6]):
        kg.add(f"e{i}", "rdf:type", "t2", score=score * 2)
    for i in range(4):
        kg.add(f"e{i}", "rdf:type", "broad", score=50 - i)
    return kg


@pytest.fixture
def estimator(graph):
    return ExpectedScoreEstimator(StatisticsCatalog(graph))


class TestPatternHistogram:
    def test_unweighted(self, estimator):
        hist = estimator.pattern_histogram(tp("t1"))
        assert hist.high == 1.0
        assert hist.count == 10

    def test_weight_scales_support(self, estimator):
        hist = estimator.pattern_histogram(tp("t1"), weight=0.5)
        assert hist.high == 0.5


class TestQueryDistribution:
    def test_single_pattern_count(self, estimator):
        q = TriplePatternQuery((tp("t1"),))
        dist = estimator.query_distribution(q)
        assert dist.count == 10
        assert dist.density is not None

    def test_join_count_exact(self, estimator):
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        dist = estimator.query_distribution(q)
        assert dist.count == 6

    def test_support_grows_with_patterns(self, estimator):
        q1 = TriplePatternQuery((tp("t1"),))
        q2 = TriplePatternQuery((tp("t1"), tp("t2")))
        d1 = estimator.query_distribution(q1)
        d2 = estimator.query_distribution(q2)
        assert d2.density.support[1] == pytest.approx(2.0, abs=1e-6)
        assert d1.density.support[1] == pytest.approx(1.0, abs=1e-6)

    def test_empty_pattern_gives_zero(self, estimator):
        q = TriplePatternQuery((tp("t1"), tp("missing")))
        dist = estimator.query_distribution(q)
        assert dist.count == 0
        assert dist.expected_top() == 0.0

    def test_replacement_substitutes_histogram(self, estimator):
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        replaced = estimator.query_distribution(
            q, replace={tp("t2"): (tp("broad"), 0.5)}
        )
        # Join of t1 with broad: entities e0..e3 -> count 4.
        assert replaced.count == 4
        # Max achievable score: 1.0 + 0.5.
        assert replaced.density.support[1] == pytest.approx(1.5, abs=1e-6)

    def test_replacement_target_must_exist(self, estimator):
        q = TriplePatternQuery((tp("t1"),))
        with pytest.raises(EstimationError):
            estimator.query_distribution(q, replace={tp("zz"): (tp("t2"), 0.5)})

    def test_colliding_replacement_ok(self, estimator):
        # Relaxing t2 into t1 (already present) must not crash; the count
        # dedups to the single-pattern count.
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        dist = estimator.query_distribution(q, replace={tp("t2"): (tp("t1"), 0.9)})
        assert dist.count == 10


class TestExpectedScores:
    def test_expected_kth_decreases_with_k(self, estimator):
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        values = [estimator.expected_kth(q, k) for k in (1, 2, 4, 6)]
        assert values == sorted(values, reverse=True)

    def test_expected_kth_zero_beyond_count(self, estimator):
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        assert estimator.expected_kth(q, 100) == 0.0

    def test_k_validation(self, estimator):
        q = TriplePatternQuery((tp("t1"),))
        with pytest.raises(EstimationError):
            estimator.expected_kth(q, 0)

    def test_expected_top_of_relaxed_below_weight_times_patterns(self, estimator):
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        top = estimator.expected_top_of_relaxed(q, tp("t2"), tp("broad"), 0.5)
        assert 0.0 < top <= 1.5

    def test_bounds_within_support(self, estimator):
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        dist = estimator.query_distribution(q)
        top = dist.expected_top()
        lo, hi = dist.density.support
        assert lo <= top <= hi
