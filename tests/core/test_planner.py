"""Unit tests for PLANGEN (Algorithm 1)."""

import pytest

from repro.core.estimator import ExpectedScoreEstimator
from repro.core.planner import SpecQPPlanner
from repro.errors import PlanError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet
from repro.stats.catalog import StatisticsCatalog


def tp(name, v="s"):
    return TriplePattern(var(v), "rdf:type", name)


def planner_for(graph, rules):
    return SpecQPPlanner(ExpectedScoreEstimator(StatisticsCatalog(graph)), rules)


class TestPlanGenDecisions:
    def test_rich_original_query_prunes_relaxations(self):
        """When the original query easily fills top-k with high scores,
        no relaxation can beat the kth score and all are pruned."""
        kg = KnowledgeGraph()
        # 50 high-scoring answers to both patterns (full overlap).
        for i in range(50):
            score = 100.0 - i
            kg.add(f"e{i}", "rdf:type", "a", score=score)
            kg.add(f"e{i}", "rdf:type", "b", score=score)
        # A weak relaxation candidate.
        for i in range(5):
            kg.add(f"r{i}", "rdf:type", "a_relax", score=10.0)
            kg.add(f"r{i}", "rdf:type", "b", score=10.0)
        rules = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.1)])
        decision = planner_for(kg, rules).plan(
            TriplePatternQuery((tp("a"), tp("b"))), k=5
        )
        assert decision.plan.singletons == ()
        assert decision.plan.join_group == (0, 1)

    def test_insufficient_answers_forces_relaxation(self):
        """n < k for the original query: E_Q(k) = 0, so any relaxable
        pattern with a non-empty relaxed join is relaxed."""
        kg = KnowledgeGraph()
        kg.add("only", "rdf:type", "a", score=10.0)
        kg.add("only", "rdf:type", "b", score=10.0)
        for i in range(20):
            kg.add(f"r{i}", "rdf:type", "a_relax", score=20.0 - i)
            kg.add(f"r{i}", "rdf:type", "b", score=20.0 - i)
        rules = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.9)])
        decision = planner_for(kg, rules).plan(
            TriplePatternQuery((tp("a"), tp("b"))), k=10
        )
        assert 0 in decision.plan.singletons

    def test_pattern_without_rules_never_relaxed(self):
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a", score=1.0)
        kg.add("x", "rdf:type", "b", score=1.0)
        decision = planner_for(kg, RuleSet()).plan(
            TriplePatternQuery((tp("a"), tp("b"))), k=10
        )
        assert decision.plan.singletons == ()
        assert all(d.tested_rule is None for d in decision.per_pattern)

    def test_empty_relaxed_join_not_relaxed(self):
        """The top-weighted relaxation joins to nothing: E_Q'(1) = 0, so
        the pattern stays in the join group."""
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a", score=1.0)
        kg.add("x", "rdf:type", "b", score=1.0)
        kg.add("z", "rdf:type", "a_relax", score=5.0)  # z has no 'b' type
        rules = RuleSet([RelaxationRule(tp("a"), tp("a_relax"), 0.9)])
        decision = planner_for(kg, rules).plan(
            TriplePatternQuery((tp("a"), tp("b"))), k=1
        )
        assert decision.plan.singletons == ()


class TestDecisionMetadata:
    def test_per_pattern_records(self):
        kg = KnowledgeGraph()
        for i in range(3):
            kg.add(f"e{i}", "rdf:type", "a", score=10.0 - i)
            kg.add(f"e{i}", "rdf:type", "b", score=10.0 - i)
            kg.add(f"e{i}", "rdf:type", "a2", score=10.0 - i)
        rules = RuleSet([RelaxationRule(tp("a"), tp("a2"), 0.8)])
        decision = planner_for(kg, rules).plan(
            TriplePatternQuery((tp("a"), tp("b"))), k=2
        )
        assert len(decision.per_pattern) == 2
        tested = decision.per_pattern[0]
        assert tested.tested_rule is not None
        assert tested.tested_rule.weight == 0.8
        assert decision.planning_seconds >= 0.0
        assert decision.expected_kth_original >= 0.0

    def test_k_validation(self):
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a", score=1.0)
        planner = planner_for(kg, RuleSet())
        with pytest.raises(PlanError):
            planner.plan(TriplePatternQuery((tp("a"),)), k=0)

    def test_plan_is_valid_partition(self):
        kg = KnowledgeGraph()
        for i in range(10):
            kg.add(f"e{i}", "rdf:type", "a", score=10.0 - i)
            kg.add(f"e{i}", "rdf:type", "b", score=10.0 - i)
        rules = RuleSet([RelaxationRule(tp("a"), tp("b"), 0.8)])
        decision = planner_for(kg, rules).plan(
            TriplePatternQuery((tp("a"), tp("b"))), k=3
        )
        plan = decision.plan
        assert sorted(plan.join_group + plan.singletons) == [0, 1]
