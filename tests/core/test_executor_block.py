"""Engine-level tests for the block execution strategy."""

from __future__ import annotations

import pytest

from repro.core.engine import SpecQPEngine
from repro.core.executor import PlanExecutor, supports_block_execution
from repro.errors import ExecutionError
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.chains import ChainRelaxationRule, ChainRuleSet
from repro.relax.rules import RuleSet


def tp(type_name: str, v: str = "s") -> TriplePattern:
    return TriplePattern(var(v), "rdf:type", type_name)


def rows(result):
    return [(a.bindings, a.score) for a in result.answers]


class TestExecutorSelection:
    def test_unknown_executor_rejected(self, music_graph, music_rules):
        with pytest.raises(ExecutionError):
            SpecQPEngine(music_graph, music_rules, executor="parallel")

    def test_default_is_tuple(self, music_graph, music_rules):
        engine = SpecQPEngine(music_graph, music_rules)
        assert engine.executor_kind == "tuple"
        assert not engine.executor.uses_block_path()

    def test_block_supported_on_columnar(self, music_graph, music_rules):
        frozen = ColumnarGraph.from_graph(music_graph)
        engine = SpecQPEngine(frozen, music_rules, executor="block")
        assert engine.executor_kind == "block"
        assert engine.executor.uses_block_path()

    def test_object_graph_falls_back_to_tuple(self, music_graph, music_rules):
        assert not supports_block_execution(music_graph)
        engine = SpecQPEngine(music_graph, music_rules, executor="block")
        assert not engine.executor.uses_block_path()

    def test_live_overlay_supported(self, music_graph, music_rules):
        live = LiveGraph(ColumnarGraph.from_graph(music_graph))
        assert supports_block_execution(live)
        engine = SpecQPEngine(live, music_rules, executor="block")
        assert engine.executor.uses_block_path()

    def test_chain_rules_force_tuple_fallback(self, music_graph, music_rules):
        frozen = ColumnarGraph.from_graph(music_graph)
        chains = ChainRuleSet(
            [
                ChainRelaxationRule(
                    tp("singer"),
                    (
                        TriplePattern(var("s"), "memberOf", var("band")),
                        TriplePattern(var("band"), "rdf:type", "group"),
                    ),
                    0.5,
                )
            ]
        )
        engine = SpecQPEngine(
            frozen, music_rules, chain_rules=chains, executor="block"
        )
        assert not engine.executor.uses_block_path()


class TestBlockEngineEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 10, 100])
    def test_query_identical(
        self, music_graph, music_rules, singer_lyricist_query, k
    ):
        frozen = ColumnarGraph.from_graph(music_graph)
        tuple_engine = SpecQPEngine(frozen, music_rules, executor="tuple")
        block_engine = SpecQPEngine(frozen, music_rules, executor="block")
        assert rows(tuple_engine.query(singer_lyricist_query, k=k)) == rows(
            block_engine.query(singer_lyricist_query, k=k)
        )

    def test_trinit_and_exact_identical(
        self, music_graph, music_rules, three_pattern_query
    ):
        frozen = ColumnarGraph.from_graph(music_graph)
        tuple_engine = SpecQPEngine(frozen, music_rules, executor="tuple")
        block_engine = SpecQPEngine(frozen, music_rules, executor="block")
        assert rows(tuple_engine.query_trinit(three_pattern_query, k=10)) == rows(
            block_engine.query_trinit(three_pattern_query, k=10)
        )
        assert rows(tuple_engine.query_exact(three_pattern_query, k=10)) == rows(
            block_engine.query_exact(three_pattern_query, k=10)
        )

    def test_empty_match_list_edge(self, music_rules):
        """Regression: a pattern with zero matches in the block path."""
        kg = KnowledgeGraph()
        kg.add("a", "rdf:type", "singer", score=3.0)
        frozen = ColumnarGraph.from_graph(kg)
        query = TriplePatternQuery((tp("singer"), tp("ghost")), name="empty-side")
        tuple_engine = SpecQPEngine(frozen, music_rules, executor="tuple")
        block_engine = SpecQPEngine(frozen, music_rules, executor="block")
        assert rows(block_engine.query_exact(query, k=5)) == rows(
            tuple_engine.query_exact(query, k=5)
        )
        assert rows(block_engine.query_exact(query, k=5)) == []

    def test_repeated_variable_after_cache_pollution(self, music_rules):
        """Regression: an open pattern caches the unfiltered list under
        the shared index key; a repeated-variable query over the live
        overlay must still drop off-diagonal rows in the block path."""
        kg = KnowledgeGraph()
        for s, p, o, score in [
            ("a", "p", "a", 4.0), ("a", "p", "b", 3.0),
            ("b", "p", "b", 5.0), ("b", "p", "c", 2.0),
        ]:
            kg.add(s, p, o, score=score)
        live = LiveGraph(ColumnarGraph.from_graph(kg))
        live.apply_updates([GraphUpdate.add("c", "p", "d", 1.0)])
        tuple_engine = SpecQPEngine(live, music_rules, executor="tuple")
        block_engine = SpecQPEngine(live, music_rules, executor="block")
        open_query = TriplePatternQuery(
            (TriplePattern(var("x"), "p", var("y")),)
        )
        diagonal_query = TriplePatternQuery(
            (TriplePattern(var("x"), "p", var("x")),)
        )
        for engine in (tuple_engine, block_engine):
            engine.query_exact(open_query, k=10)  # pollute the key cache
        expected = rows(tuple_engine.query_exact(diagonal_query, k=10))
        actual = rows(block_engine.query_exact(diagonal_query, k=10))
        assert actual == expected
        assert [binding for binding, _ in actual] == [
            (("x", "b"),), (("x", "a"),)
        ]

    def test_k_larger_than_result_count_edge(self, music_graph, music_rules):
        """Regression: k far beyond the answer count in the block path."""
        frozen = ColumnarGraph.from_graph(music_graph)
        query = TriplePatternQuery((tp("singer"),), name="small")
        tuple_engine = SpecQPEngine(frozen, music_rules, executor="tuple")
        block_engine = SpecQPEngine(frozen, music_rules, executor="block")
        expected = rows(tuple_engine.query_exact(query, k=500))
        actual = rows(block_engine.query_exact(query, k=500))
        assert actual == expected
        assert len(actual) == 4


class TestEncodedCacheLifecycle:
    def test_cache_warm_after_first_execution(self, music_graph, music_rules):
        frozen = ColumnarGraph.from_graph(music_graph)
        engine = SpecQPEngine(frozen, music_rules, executor="block")
        query = TriplePatternQuery((tp("singer"),))
        engine.query_exact(query, k=3)
        stats = engine.executor.encoded_cache_stats()
        assert stats["encoded_lists"] >= 1
        engine.query_exact(query, k=3)
        assert engine.executor.encoded_cache_stats()["encoded_lists"] == stats[
            "encoded_lists"
        ]

    def test_version_bump_clears_cache(self, music_graph, music_rules):
        live = LiveGraph(ColumnarGraph.from_graph(music_graph))
        engine = SpecQPEngine(live, music_rules, executor="block")
        query = TriplePatternQuery((tp("singer"),))
        before = rows(engine.query_exact(query, k=10))
        live.apply_updates([GraphUpdate.add("newbie", "rdf:type", "singer", 200.0)])
        after = rows(engine.query_exact(query, k=10))
        assert before != after
        assert after[0][0] == (("s", "newbie"),)

    def test_compaction_swaps_store_and_codec(self, music_graph, music_rules):
        live = LiveGraph(ColumnarGraph.from_graph(music_graph))
        engine = SpecQPEngine(live, music_rules, executor="block")
        query = TriplePatternQuery((tp("singer"),))
        live.apply_updates([GraphUpdate.add("newbie", "rdf:type", "singer", 200.0)])
        pre = rows(engine.query_exact(query, k=10))
        live.compact()
        post = rows(engine.query_exact(query, k=10))
        assert pre == post

    def test_cache_capacity_validated(self, music_graph, music_rules):
        with pytest.raises(ExecutionError):
            PlanExecutor(
                ColumnarGraph.from_graph(music_graph),
                music_rules,
                executor="block",
                encoded_cache_capacity=0,
            )
