"""Unit tests for the order-statistics estimator."""

import pytest

from repro.errors import EstimationError
from repro.stats.order_statistics import (
    expected_kth_score,
    expected_order_statistic,
    expected_score_at_rank,
    expected_top_score,
)
from repro.stats.piecewise import Bucket, PiecewiseConstantDensity


def uniform01():
    return PiecewiseConstantDensity([Bucket(0.0, 1.0, 1.0)])


class TestExpectedOrderStatistic:
    def test_uniform_closed_form(self):
        # For U(0,1): E[X_(i)] = i/(m+1) exactly.
        for m in (1, 5, 10):
            for i in range(1, m + 1):
                assert expected_order_statistic(uniform01(), i, m) == pytest.approx(
                    i / (m + 1)
                )

    def test_empty_sample(self):
        assert expected_order_statistic(uniform01(), 1, 0) == 0.0

    def test_out_of_range_index(self):
        with pytest.raises(EstimationError):
            expected_order_statistic(uniform01(), 6, 5)
        with pytest.raises(EstimationError):
            expected_order_statistic(uniform01(), 0, 5)


class TestRankHelpers:
    def test_rank1_is_max(self):
        # E[max of 9 uniforms] = 9/10
        assert expected_score_at_rank(uniform01(), 1, 9) == pytest.approx(0.9)

    def test_kth_rank(self):
        # rank 3 of 9: ascending index 7 -> 0.7
        assert expected_score_at_rank(uniform01(), 3, 9) == pytest.approx(0.7)

    def test_rank_beyond_sample_is_zero(self):
        assert expected_score_at_rank(uniform01(), 10, 5) == 0.0

    def test_rank_must_be_positive(self):
        with pytest.raises(EstimationError):
            expected_score_at_rank(uniform01(), 0, 5)

    def test_top_and_kth_aliases(self):
        assert expected_top_score(uniform01(), 9) == pytest.approx(0.9)
        assert expected_kth_score(uniform01(), 2, 9) == pytest.approx(0.8)

    def test_monotone_in_rank(self):
        values = [expected_score_at_rank(uniform01(), r, 20) for r in range(1, 21)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_sample_size(self):
        tops = [expected_top_score(uniform01(), n) for n in (1, 5, 50, 500)]
        assert tops == sorted(tops)
