"""Unit tests for two-bucket and n-bucket score-mass histograms."""

import pytest

from repro.errors import HistogramError
from repro.stats.histogram import (
    NBucketHistogram,
    PatternStats,
    TwoBucketHistogram,
    stats_from_scores,
)
from repro.stats.piecewise import convolve


class TestStatsFromScores:
    def test_power_law_example(self):
        # Scores: 1.0, then a long tail — 80% mass within first ranks.
        scores = [1.0, 0.9, 0.8, 0.1, 0.05, 0.05, 0.04, 0.03, 0.02, 0.01]
        stats = stats_from_scores(scores)
        assert stats.m == 10
        total = sum(scores)
        assert stats.s_m == pytest.approx(total)
        assert stats.s_r >= 0.8 * total
        # Check r is the *smallest* such rank.
        assert sum(scores[: stats.r - 1]) < 0.8 * total
        assert stats.sigma_r == scores[stats.r - 1]

    def test_empty_scores(self):
        stats = stats_from_scores([])
        assert stats.m == 0
        assert stats.s_m == 0.0

    def test_all_zero_scores(self):
        stats = stats_from_scores([0.0, 0.0])
        assert stats.m == 2
        assert stats.sigma_r == 0.0

    def test_uniform_scores(self):
        stats = stats_from_scores([1.0] * 10)
        assert stats.r == 8  # 80% of mass needs 8 of 10 equal scores

    def test_unsorted_rejected(self):
        with pytest.raises(HistogramError):
            stats_from_scores([0.5, 0.9])

    def test_out_of_range_rejected(self):
        with pytest.raises(HistogramError):
            stats_from_scores([1.5, 0.5])

    def test_bad_mass_fraction(self):
        with pytest.raises(HistogramError):
            stats_from_scores([1.0], mass_fraction=1.0)

    def test_custom_mass_fraction(self):
        scores = [1.0, 0.5, 0.25, 0.25]
        stats = stats_from_scores(scores, mass_fraction=0.5)
        assert stats.r == 1  # 1.0 >= 0.5 * 2.0


class TestTwoBucketHistogram:
    def test_from_scores_beta(self):
        scores = [1.0, 0.9, 0.8, 0.1, 0.05, 0.05, 0.04, 0.03, 0.02, 0.01]
        hist = TwoBucketHistogram.from_scores(scores)
        assert hist.high == 1.0
        assert hist.count == 10
        assert 0.8 <= hist.beta <= 1.0
        assert hist.sigma == stats_from_scores(scores).sigma_r

    def test_degenerate_empty(self):
        hist = TwoBucketHistogram.from_scores([])
        assert hist.is_degenerate
        assert hist.count == 0

    def test_density_masses(self):
        hist = TwoBucketHistogram(sigma=0.5, high=1.0, beta=0.8, count=100)
        density = hist.to_density()
        assert density.mass() == pytest.approx(1.0)
        # mass above sigma = beta
        assert 1.0 - density.cdf(0.5) == pytest.approx(0.8, abs=1e-9)

    def test_validation(self):
        with pytest.raises(HistogramError):
            TwoBucketHistogram(sigma=1.5, high=1.0, beta=0.8, count=1)
        with pytest.raises(HistogramError):
            TwoBucketHistogram(sigma=0.5, high=1.0, beta=1.2, count=1)
        with pytest.raises(HistogramError):
            TwoBucketHistogram(sigma=0.5, high=1.0, beta=0.8, count=-1)
        with pytest.raises(HistogramError):
            TwoBucketHistogram(sigma=0.5, high=0.0, beta=0.8, count=1)

    def test_scaled_by_weight(self):
        hist = TwoBucketHistogram(sigma=0.5, high=1.0, beta=0.8, count=10)
        scaled = hist.scaled(0.5)
        assert scaled.sigma == 0.25
        assert scaled.high == 0.5
        assert scaled.beta == 0.8
        assert scaled.count == 10

    def test_scaled_invalid_weight(self):
        hist = TwoBucketHistogram(sigma=0.5, high=1.0, beta=0.8, count=10)
        with pytest.raises(HistogramError):
            hist.scaled(0.0)

    def test_cdf_inverse_cdf(self):
        hist = TwoBucketHistogram(sigma=0.6, high=1.0, beta=0.8, count=50)
        for p in (0.1, 0.3, 0.7, 0.95):
            x = hist.inverse_cdf(p)
            assert hist.cdf(x) == pytest.approx(p, abs=1e-9)

    def test_mean_between_bounds(self):
        hist = TwoBucketHistogram(sigma=0.6, high=1.0, beta=0.8, count=50)
        assert 0.0 < hist.mean() < 1.0


class TestRefit:
    def test_refit_recovers_mass_split(self):
        base = TwoBucketHistogram(sigma=0.5, high=1.0, beta=0.8, count=100)
        convolved = convolve(base.to_density(), base.to_density())
        refit = TwoBucketHistogram.refit(convolved, count=500)
        assert refit.count == 500
        assert refit.beta == pytest.approx(0.8)
        assert 0.0 < refit.sigma < refit.high
        # By construction, 80% of the expected score mass lies above sigma.
        normalized = convolved.normalized()
        above = normalized.partial_expectation(refit.sigma)
        total = normalized.partial_expectation(0.0)
        assert above / total == pytest.approx(0.8, abs=1e-6)

    def test_refit_support(self):
        base = TwoBucketHistogram(sigma=0.5, high=1.0, beta=0.8, count=100)
        convolved = convolve(base.to_density(), base.to_density())
        refit = TwoBucketHistogram.refit(convolved, count=10)
        assert refit.high == pytest.approx(2.0)

    def test_refit_bad_fraction(self):
        base = TwoBucketHistogram(sigma=0.5, high=1.0, beta=0.8, count=100)
        convolved = convolve(base.to_density(), base.to_density())
        with pytest.raises(HistogramError):
            TwoBucketHistogram.refit(convolved, count=10, mass_fraction=0.0)


class TestNBucketHistogram:
    def test_from_scores_masses_sum_to_one(self):
        scores = [1.0, 0.8, 0.5, 0.3, 0.2, 0.1, 0.05, 0.03]
        hist = NBucketHistogram.from_scores(scores, n_buckets=4)
        assert sum(hist.masses) == pytest.approx(1.0)
        assert hist.count == 8

    def test_boundaries_descending_scores(self):
        scores = [1.0, 0.8, 0.5, 0.3, 0.2, 0.1]
        hist = NBucketHistogram.from_scores(scores, n_buckets=3)
        assert len(hist.boundaries) == 2
        assert all(0.0 <= b <= 1.0 for b in hist.boundaries)

    def test_two_bucket_special_case_agrees(self):
        # With n=2 at the default mass split there is no exact equivalence
        # (n-bucket uses 1/2 quantiles), but the density must be valid.
        scores = [1.0, 0.7, 0.3, 0.1, 0.05]
        hist = NBucketHistogram.from_scores(scores, n_buckets=2)
        assert hist.to_density().mass() == pytest.approx(1.0)

    def test_empty_degenerate(self):
        hist = NBucketHistogram.from_scores([], n_buckets=3)
        assert hist.is_degenerate

    def test_scaled(self):
        scores = [1.0, 0.5, 0.25]
        hist = NBucketHistogram.from_scores(scores, n_buckets=2).scaled(0.5)
        assert hist.high == 0.5
        assert all(b <= 0.5 for b in hist.boundaries)

    def test_too_few_buckets_rejected(self):
        with pytest.raises(HistogramError):
            NBucketHistogram.from_scores([1.0], n_buckets=1)

    def test_mass_count_mismatch_rejected(self):
        with pytest.raises(HistogramError):
            NBucketHistogram(boundaries=(0.5,), masses=(1.0,), high=1.0, count=2)
