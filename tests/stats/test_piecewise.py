"""Unit tests for piecewise densities and exact convolution."""

import math

import pytest

from repro.errors import HistogramError
from repro.stats.piecewise import (
    Bucket,
    PiecewiseConstantDensity,
    PiecewiseLinearDensity,
    Segment,
    convolve,
)


def uniform(lo=0.0, hi=1.0, mass=1.0):
    return PiecewiseConstantDensity([Bucket(lo, hi, mass)])


class TestBucket:
    def test_density(self):
        assert Bucket(0.0, 2.0, 1.0).density == 0.5

    def test_inverted_bounds_rejected(self):
        with pytest.raises(HistogramError):
            Bucket(1.0, 0.5, 1.0)

    def test_negative_mass_rejected(self):
        with pytest.raises(HistogramError):
            Bucket(0.0, 1.0, -0.1)


class TestPiecewiseConstant:
    def test_mass_and_support(self):
        d = PiecewiseConstantDensity([Bucket(0, 0.5, 0.2), Bucket(0.5, 1.0, 0.8)])
        assert d.mass() == pytest.approx(1.0)
        assert d.support == (0.0, 1.0)

    def test_overlapping_buckets_rejected(self):
        with pytest.raises(HistogramError):
            PiecewiseConstantDensity([Bucket(0, 0.6, 0.5), Bucket(0.5, 1.0, 0.5)])

    def test_empty_rejected(self):
        with pytest.raises(HistogramError):
            PiecewiseConstantDensity([])

    def test_pdf_values(self):
        d = PiecewiseConstantDensity([Bucket(0, 0.5, 0.2), Bucket(0.5, 1.0, 0.8)])
        assert d.pdf(0.25) == pytest.approx(0.4)
        assert d.pdf(0.75) == pytest.approx(1.6)
        assert d.pdf(2.0) == 0.0

    def test_cdf_monotone_and_bounded(self):
        d = PiecewiseConstantDensity([Bucket(0, 0.5, 0.2), Bucket(0.5, 1.0, 0.8)])
        values = [d.cdf(x / 10) for x in range(11)]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(1.0)

    def test_inverse_cdf_inverts_cdf(self):
        d = PiecewiseConstantDensity([Bucket(0, 0.5, 0.2), Bucket(0.5, 1.0, 0.8)])
        for p in (0.1, 0.2, 0.5, 0.9, 0.999):
            x = d.inverse_cdf(p)
            assert d.cdf(x) == pytest.approx(p, abs=1e-9)

    def test_inverse_cdf_clamps(self):
        d = uniform()
        assert d.inverse_cdf(-1.0) == 0.0
        assert d.inverse_cdf(2.0) == 1.0

    def test_mean_uniform(self):
        assert uniform().mean() == pytest.approx(0.5)

    def test_mean_two_buckets(self):
        d = PiecewiseConstantDensity([Bucket(0, 0.5, 0.2), Bucket(0.5, 1.0, 0.8)])
        # 0.2 * 0.25 + 0.8 * 0.75
        assert d.mean() == pytest.approx(0.65)

    def test_partial_expectation_full_is_mean(self):
        d = PiecewiseConstantDensity([Bucket(0, 0.5, 0.2), Bucket(0.5, 1.0, 0.8)])
        assert d.partial_expectation(0.0) == pytest.approx(d.mean())

    def test_partial_expectation_decreasing(self):
        d = uniform()
        values = [d.partial_expectation(c / 10) for c in range(11)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_partial_expectation_uniform_closed_form(self):
        # ∫_c^1 t dt = (1 - c^2)/2 for U(0,1)
        d = uniform()
        for c in (0.0, 0.3, 0.7, 1.0):
            assert d.partial_expectation(c) == pytest.approx((1 - c * c) / 2)

    def test_normalized(self):
        d = PiecewiseConstantDensity([Bucket(0, 1, 2.0)])
        assert d.normalized().mass() == pytest.approx(1.0)

    def test_scaled_domain(self):
        d = uniform().scaled(0.5)
        assert d.support == (0.0, 0.5)
        assert d.mass() == pytest.approx(1.0)
        assert d.mean() == pytest.approx(0.25)

    def test_scaled_invalid_factor(self):
        with pytest.raises(HistogramError):
            uniform().scaled(0.0)


class TestSegment:
    def test_mass_trapezoid(self):
        s = Segment(0.0, 1.0, 0.0, 2.0)
        assert s.mass == pytest.approx(1.0)

    def test_value_interpolates(self):
        s = Segment(0.0, 2.0, 0.0, 1.0)
        assert s.value_at(1.0) == pytest.approx(0.5)

    def test_score_mass_constant_piece(self):
        s = Segment(0.0, 1.0, 1.0, 1.0)
        assert s.score_mass_from(0.0) == pytest.approx(0.5)
        assert s.score_mass_from(0.5) == pytest.approx((1 - 0.25) / 2)

    def test_degenerate_rejected(self):
        with pytest.raises(HistogramError):
            Segment(1.0, 1.0, 1.0, 1.0)


class TestConvolution:
    def test_uniform_uniform_is_triangle(self):
        # U(0,1) + U(0,1) has the triangular density on [0, 2] peaking at 1.
        result = convolve(uniform(), uniform())
        assert result.support == (0.0, 2.0)
        assert result.mass() == pytest.approx(1.0)
        assert result.pdf(1.0) == pytest.approx(1.0, abs=1e-6)
        assert result.pdf(0.5) == pytest.approx(0.5, abs=1e-6)
        assert result.pdf(1.5) == pytest.approx(0.5, abs=1e-6)

    def test_convolution_mean_adds(self):
        d1 = PiecewiseConstantDensity([Bucket(0, 0.5, 0.2), Bucket(0.5, 1.0, 0.8)])
        d2 = PiecewiseConstantDensity([Bucket(0, 0.3, 0.5), Bucket(0.3, 1.0, 0.5)])
        result = convolve(d1, d2)
        assert result.mean() == pytest.approx(d1.mean() + d2.mean(), rel=1e-6)

    def test_convolution_support_adds(self):
        result = convolve(uniform(0, 0.5), uniform(0.2, 0.9))
        lo, hi = result.support
        assert lo == pytest.approx(0.2)
        assert hi == pytest.approx(1.4)

    def test_asymmetric_widths_trapezoid(self):
        # U(0,1) + U(0,3): plateau of height 1/3 between 1 and 3.
        result = convolve(uniform(0, 1), uniform(0, 3))
        assert result.pdf(2.0) == pytest.approx(1 / 3, abs=1e-6)

    def test_cdf_at_support_ends(self):
        result = convolve(uniform(), uniform())
        assert result.cdf(0.0) == pytest.approx(0.0, abs=1e-9)
        assert result.cdf(2.0) == pytest.approx(1.0, abs=1e-9)

    def test_inverse_cdf_round_trip(self):
        result = convolve(uniform(), uniform())
        for p in (0.05, 0.25, 0.5, 0.75, 0.95):
            x = result.inverse_cdf(p)
            assert result.cdf(x) == pytest.approx(p, abs=1e-6)

    def test_near_point_mass_shifts(self):
        # Convolving with a tiny-width bucket is approximately a shift.
        spike = PiecewiseConstantDensity([Bucket(0.5, 0.5 + 1e-9, 1.0)])
        result = convolve(uniform(), spike)
        assert result.mean() == pytest.approx(1.0, abs=1e-6)
