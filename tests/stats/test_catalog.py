"""Unit tests for the statistics catalog."""

import pytest

from repro.errors import StatisticsError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.stats.catalog import StatisticsCatalog
from repro.stats.histogram import NBucketHistogram, TwoBucketHistogram


def tp(name, v="s"):
    return TriplePattern(var(v), "rdf:type", name)


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    scores = [100, 80, 40, 10, 5, 2, 1]
    for i, score in enumerate(scores):
        kg.add(f"e{i}", "rdf:type", "t1", score=score)
    for i in range(3):
        kg.add(f"e{i}", "rdf:type", "t2", score=10 * (i + 1))
    return kg


class TestPatternStats:
    def test_match_count(self, graph):
        catalog = StatisticsCatalog(graph)
        assert catalog.match_count(tp("t1")) == 7
        assert catalog.match_count(tp("missing")) == 0

    def test_stats_are_cached_by_key(self, graph):
        catalog = StatisticsCatalog(graph)
        s1 = catalog.pattern_stats(tp("t1", "s"))
        s2 = catalog.pattern_stats(tp("t1", "x"))
        assert s1 is s2

    def test_stats_values(self, graph):
        catalog = StatisticsCatalog(graph)
        stats = catalog.pattern_stats(tp("t1"))
        assert stats.m == 7
        assert 0 < stats.sigma_r <= 1.0
        assert stats.s_r <= stats.s_m


class TestHistograms:
    def test_two_bucket_default(self, graph):
        catalog = StatisticsCatalog(graph)
        hist = catalog.histogram(tp("t1"))
        assert isinstance(hist, TwoBucketHistogram)

    def test_n_bucket_mode(self, graph):
        catalog = StatisticsCatalog(graph, histogram_kind="n-bucket", n_buckets=4)
        hist = catalog.histogram(tp("t1"))
        assert isinstance(hist, NBucketHistogram)
        assert len(hist.masses) == 4

    def test_unknown_kind_rejected(self, graph):
        with pytest.raises(StatisticsError):
            StatisticsCatalog(graph, histogram_kind="wavelet")  # type: ignore[arg-type]

    def test_degenerate_for_empty_pattern(self, graph):
        catalog = StatisticsCatalog(graph)
        assert catalog.histogram(tp("missing")).is_degenerate


class TestCardinalityAndPrecompute:
    def test_cardinality_passthrough(self, graph):
        catalog = StatisticsCatalog(graph)
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        assert catalog.cardinality(q) == 3

    def test_precompute_summary(self, graph):
        catalog = StatisticsCatalog(graph)
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        summary = catalog.precompute(queries=[q])
        assert summary["patterns"] == 2
        assert summary["cardinality_cache"] >= 2

    def test_invalidate_clears(self, graph):
        catalog = StatisticsCatalog(graph)
        catalog.histogram(tp("t1"))
        catalog.invalidate()
        graph.add("new", "rdf:type", "t1", score=500)
        assert catalog.match_count(tp("t1")) == 8
