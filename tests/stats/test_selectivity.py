"""Unit tests for join cardinality estimation."""

import pytest

from repro.errors import StatisticsError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.stats.selectivity import JoinCardinalityEstimator


def tp(name, v="s"):
    return TriplePattern(var(v), "rdf:type", name)


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    # t1: a b c ; t2: b c d ; t3: c d e
    for e in ("a", "b", "c"):
        kg.add(e, "rdf:type", "t1")
    for e in ("b", "c", "d"):
        kg.add(e, "rdf:type", "t2")
    for e in ("c", "d", "e"):
        kg.add(e, "rdf:type", "t3")
    return kg


class TestExactMode:
    def test_single_pattern(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        assert est.cardinality(TriplePatternQuery((tp("t1"),))) == 3

    def test_two_way_join(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        assert est.cardinality(q) == 2  # {b, c}

    def test_three_way_join(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        q = TriplePatternQuery((tp("t1"), tp("t2"), tp("t3")))
        assert est.cardinality(q) == 1  # {c}

    def test_empty_join(self, graph):
        graph.add("z", "rdf:type", "t_only_z")
        est = JoinCardinalityEstimator(graph, "exact")
        q = TriplePatternQuery((tp("t1"), tp("t_only_z")))
        assert est.cardinality(q) == 0

    def test_order_invariance(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        a = est.cardinality(TriplePatternQuery((tp("t1"), tp("t2"))))
        b = est.cardinality(TriplePatternQuery((tp("t2"), tp("t1"))))
        assert a == b

    def test_cartesian_product(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        q = TriplePatternQuery((tp("t1", "s"), tp("t2", "other")))
        assert est.cardinality(q) == 9

    def test_prefix_cardinalities(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        q = TriplePatternQuery((tp("t1"), tp("t2"), tp("t3")))
        assert est.prefix_cardinalities(q) == [3, 2, 1]

    def test_cache_grows_and_hits(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        est.cardinality(q)
        size = est.cache_size
        est.cardinality(q)
        assert est.cache_size == size

    def test_precompute(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        q = TriplePatternQuery((tp("t1"), tp("t2"), tp("t3")))
        entries = est.precompute([q])
        assert entries >= 3

    def test_selectivity_definition(self, graph):
        est = JoinCardinalityEstimator(graph, "exact")
        phi = est.selectivity([tp("t1")], tp("t2"))
        # |t1 ⋈ t2| = 2, |t1| = 3, m(t2) = 3 -> phi = 2/9
        assert phi == pytest.approx(2 / 9)

    def test_chain_join_on_objects(self):
        kg = KnowledgeGraph()
        kg.add("a", "knows", "b")
        kg.add("b", "knows", "c")
        kg.add("c", "knows", "d")
        est = JoinCardinalityEstimator(kg, "exact")
        p1 = TriplePattern(var("x"), "knows", var("y"))
        p2 = TriplePattern(var("y"), "knows", var("z"))
        q = TriplePatternQuery((p1, p2))
        assert est.cardinality(q) == 2  # a-b-c, b-c-d


class TestIndependenceMode:
    def test_single_pattern_exactish(self, graph):
        est = JoinCardinalityEstimator(graph, "independence")
        assert est.cardinality(TriplePatternQuery((tp("t1"),))) == 3

    def test_join_estimate_formula(self, graph):
        est = JoinCardinalityEstimator(graph, "independence")
        q = TriplePatternQuery((tp("t1"), tp("t2")))
        # 3 * 3 / max(V=3, V=3) = 3
        assert est.cardinality(q) == 3

    def test_never_negative(self, graph):
        est = JoinCardinalityEstimator(graph, "independence")
        q = TriplePatternQuery((tp("t1"), tp("t2"), tp("t3")))
        assert est.cardinality(q) >= 0


class TestValidation:
    def test_unknown_mode(self, graph):
        with pytest.raises(StatisticsError):
            JoinCardinalityEstimator(graph, "magic")  # type: ignore[arg-type]
