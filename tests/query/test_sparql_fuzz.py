"""Fuzz-style tests: the mini-SPARQL parser never leaks bare exceptions.

Contract under fuzzing: for *any* input string, :func:`parse_sparql`
either returns a valid :class:`TriplePatternQuery` or raises a
:class:`repro.errors.ReproError` subtype carrying a non-empty, useful
message — never ``IndexError`` / ``AttributeError`` / friends.  Syntax
problems specifically surface as :class:`SparqlSyntaxError` with the
offending offset where one is known.
"""

from __future__ import annotations

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, SparqlSyntaxError
from repro.query.query import TriplePatternQuery
from repro.query.sparql import parse_sparql

VALID = "SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <lyricist> }"

#: Tokens a mutator can splice together — valid fragments, junk, and
#: boundary characters the tokenizer treats specially.
FRAGMENTS = st.sampled_from(
    [
        "SELECT", "WHERE", "select", "*", "?s", "?o", "?", "{", "}", ".",
        "<singer>", "<>", "'quoted'", "''", '"dq"', "bare", "rdf:type",
        "'unterminated", "<unclosed", "\\", "\x00", "\n", " ", "🦈",
    ]
)


def assert_well_behaved(text: str) -> None:
    """Parse *text*; any failure must be a ReproError with a real message."""
    try:
        query = parse_sparql(text)
    except ReproError as error:
        assert str(error), f"empty error message for input {text!r}"
    except Exception as error:  # pragma: no cover - the bug being hunted
        pytest.fail(
            f"parse_sparql leaked {type(error).__name__}: {error!r} "
            f"for input {text!r}"
        )
    else:
        assert isinstance(query, TriplePatternQuery)
        assert len(query) >= 1


class TestFuzzArbitraryText:
    @settings(max_examples=300, deadline=None)
    @given(st.text(max_size=80))
    @example("")
    @example("\x00")
    @example("SELECT ?s WHERE {" * 10)
    def test_arbitrary_text_never_leaks(self, text):
        assert_well_behaved(text)

    @settings(max_examples=300, deadline=None)
    @given(st.lists(FRAGMENTS, max_size=25).map(" ".join))
    def test_fragment_soup_never_leaks(self, text):
        assert_well_behaved(text)

    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=0, max_value=len(VALID)),
        st.integers(min_value=0, max_value=len(VALID)),
        st.text(max_size=5),
    )
    def test_mutated_valid_query_never_leaks(self, start, stop, splice):
        lo, hi = sorted((start, stop))
        assert_well_behaved(VALID[:lo] + splice + VALID[hi:])


class TestMalformedMessages:
    """Handcrafted malformed inputs must fail precisely and helpfully."""

    @pytest.mark.parametrize(
        ("text", "needle"),
        [
            ("", "non-empty"),
            ("   \t\n", "non-empty"),
            ("WHERE { ?s p o }", "SELECT"),
            ("SELECT", "end of query"),
            ("SELECT WHERE { ?s p o }", "projection"),
            ("SELECT ?s { ?s p o }", "WHERE"),
            ("SELECT ?s WHERE ?s p o }", "expected LBRACE"),
            ("SELECT ?s WHERE { }", "empty WHERE"),
            ("SELECT ?s WHERE { ?s p }", "expected a term"),
            ("SELECT ?s WHERE { ?s p o", "unterminated WHERE"),
            ("SELECT ?s WHERE { ?s p o } trailing", "trailing"),
            ("SELECT ?s WHERE { ?s '' o }", "empty quoted"),
            ("SELECT ?s WHERE { ?s p 'open }", "unexpected character"),
            ("SELECT ?s WHERE { ?s SELECT o }", "keyword"),
        ],
    )
    def test_message_names_the_problem(self, text, needle):
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql(text)
        assert needle.lower() in str(excinfo.value).lower()

    def test_position_reported_when_known(self):
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql("SELECT ?s WHERE { ?s p o } junk")
        assert excinfo.value.position == 27
        assert "offset 27" in str(excinfo.value)

    def test_non_string_input(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(None)  # type: ignore[arg-type]
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(42)  # type: ignore[arg-type]

    def test_query_level_errors_are_repro_errors(self):
        # Duplicate patterns: rejected by TriplePatternQuery, still a
        # ReproError for callers that catch the family.
        with pytest.raises(ReproError):
            parse_sparql("SELECT ?s WHERE { ?s p o . ?s p o }")
