"""Unit tests for repro.query.query."""

import pytest

from repro.errors import QueryError
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery


def tp(type_name, v="s"):
    return TriplePattern(var(v), "rdf:type", type_name)


class TestConstruction:
    def test_basic(self):
        q = TriplePatternQuery((tp("a"), tp("b")))
        assert len(q) == 2
        assert q.variable_names == ("s",)

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            TriplePatternQuery(())

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            TriplePatternQuery((tp("a"), tp("a")))

    def test_default_projection_all_variables(self):
        q = TriplePatternQuery((TriplePattern(var("s"), "p", var("o")),))
        assert set(q.projection) == {var("s"), var("o")}

    def test_explicit_projection(self):
        q = TriplePatternQuery(
            (TriplePattern(var("s"), "p", var("o")),), projection=(var("s"),)
        )
        assert q.projection == (var("s"),)

    def test_unknown_projection_rejected(self):
        with pytest.raises(QueryError):
            TriplePatternQuery((tp("a"),), projection=(var("zz"),))

    def test_name_label(self):
        q = TriplePatternQuery((tp("a"),), name="my-query")
        assert q.name == "my-query"


class TestStructure:
    def test_contains_and_index_of(self):
        q = TriplePatternQuery((tp("a"), tp("b")))
        assert tp("a") in q
        assert q.index_of(tp("b")) == 1

    def test_index_of_missing_raises(self):
        q = TriplePatternQuery((tp("a"),))
        with pytest.raises(QueryError):
            q.index_of(tp("zz"))

    def test_connected_star_query(self):
        q = TriplePatternQuery((tp("a"), tp("b"), tp("c")))
        assert q.is_connected()

    def test_disconnected_query(self):
        q = TriplePatternQuery((tp("a", "s"), tp("b", "t")))
        assert not q.is_connected()

    def test_chain_connected(self):
        p1 = TriplePattern(var("x"), "p", var("y"))
        p2 = TriplePattern(var("y"), "p", var("z"))
        q = TriplePatternQuery((p1, p2))
        assert q.is_connected()

    def test_single_pattern_connected(self):
        assert TriplePatternQuery((tp("a"),)).is_connected()

    def test_join_variables(self):
        q = TriplePatternQuery((tp("a"), tp("b")))
        assert q.join_variables() == {"s": [0, 1]}


class TestRewriting:
    def test_replace_preserves_position(self):
        q = TriplePatternQuery((tp("a"), tp("b"), tp("c")))
        q2 = q.replace(tp("b"), tp("x"))
        assert q2.patterns == (tp("a"), tp("x"), tp("c"))

    def test_replace_missing_raises(self):
        q = TriplePatternQuery((tp("a"),))
        with pytest.raises(QueryError):
            q.replace(tp("zz"), tp("x"))

    def test_replace_to_existing_raises(self):
        q = TriplePatternQuery((tp("a"), tp("b")))
        with pytest.raises(QueryError):
            q.replace(tp("a"), tp("b"))

    def test_without(self):
        q = TriplePatternQuery((tp("a"), tp("b")))
        assert q.without(tp("a")).patterns == (tp("b"),)

    def test_without_last_pattern_raises(self):
        q = TriplePatternQuery((tp("a"),))
        with pytest.raises(QueryError):
            q.without(tp("a"))

    def test_subquery(self):
        q = TriplePatternQuery((tp("a"), tp("b"), tp("c")))
        sub = q.subquery((tp("c"), tp("a")))
        assert sub.patterns == (tp("c"), tp("a"))

    def test_subquery_foreign_pattern_raises(self):
        q = TriplePatternQuery((tp("a"),))
        with pytest.raises(QueryError):
            q.subquery((tp("zz"),))


class TestIdentity:
    def test_set_semantics_equality(self):
        q1 = TriplePatternQuery((tp("a"), tp("b")))
        q2 = TriplePatternQuery((tp("b"), tp("a")))
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_str_format(self):
        q = TriplePatternQuery((tp("a"),))
        assert str(q) == "SELECT ?s WHERE { ?s rdf:type a }"
