"""Unit tests for repro.query.answer."""

import pytest

from repro.errors import ExecutionError
from repro.query.answer import Answer, AnswerFactory, PartialAnswer


class TestAnswer:
    def test_from_mapping_sorts_bindings(self):
        a = Answer.from_mapping({"z": "1", "a": "2"}, 1.5)
        assert a.bindings == (("a", "2"), ("z", "1"))

    def test_equality_ignores_score(self):
        a = Answer.from_mapping({"s": "x"}, 1.0)
        b = Answer.from_mapping({"s": "x"}, 2.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_project(self):
        a = Answer.from_mapping({"s": "x", "o": "y"}, 1.0)
        assert a.project(("s",)).bindings == (("s", "x"),)

    def test_as_dict(self):
        a = Answer.from_mapping({"s": "x"}, 1.0)
        assert a.as_dict() == {"s": "x"}


class TestAnswerFactory:
    def test_make_counts(self):
        factory = AnswerFactory()
        factory.make({"s": "x"}, 1.0, frozenset({0}))
        factory.make({"s": "y"}, 0.5, frozenset({1}))
        assert factory.objects_created == 2

    def test_join_merges_and_counts(self):
        factory = AnswerFactory()
        left = factory.make({"s": "x"}, 1.0, frozenset({0}))
        right = factory.make({"s": "x", "o": "y"}, 0.5, frozenset({1}))
        joined = factory.join(left, right)
        assert joined is not None
        assert joined.bindings == {"s": "x", "o": "y"}
        assert joined.score == pytest.approx(1.5)
        assert joined.patterns_covered == frozenset({0, 1})
        assert factory.objects_created == 3

    def test_join_conflict_returns_none(self):
        factory = AnswerFactory()
        left = factory.make({"s": "x"}, 1.0, frozenset({0}))
        right = factory.make({"s": "OTHER"}, 0.5, frozenset({1}))
        assert factory.join(left, right) is None

    def test_join_overlapping_coverage_raises(self):
        factory = AnswerFactory()
        left = factory.make({"s": "x"}, 1.0, frozenset({0}))
        right = factory.make({"s": "x"}, 0.5, frozenset({0}))
        with pytest.raises(ExecutionError):
            factory.join(left, right)


class TestPartialAnswer:
    def test_key_on(self):
        pa = PartialAnswer({"s": "x", "o": "y"}, 1.0, frozenset({0}))
        assert pa.key_on(("o", "s")) == ("y", "x")

    def test_key_on_missing_raises(self):
        pa = PartialAnswer({"s": "x"}, 1.0, frozenset({0}))
        with pytest.raises(ExecutionError):
            pa.key_on(("missing",))

    def test_identity_sorted(self):
        pa = PartialAnswer({"z": "1", "a": "2"}, 1.0, frozenset({0}))
        assert pa.identity() == (("a", "2"), ("z", "1"))

    def test_to_answer_projection(self):
        pa = PartialAnswer({"s": "x", "o": "y"}, 2.0, frozenset({0}))
        assert pa.to_answer(("s",)).bindings == (("s", "x"),)
        assert pa.to_answer().bindings == (("o", "y"), ("s", "x"))
