"""Unit tests for the mini-SPARQL parser."""

import pytest

from repro.errors import SparqlSyntaxError
from repro.kg.pattern import TriplePattern, var
from repro.query.sparql import format_sparql, parse_sparql


class TestBasicParsing:
    def test_single_pattern(self):
        q = parse_sparql("SELECT ?s WHERE { ?s 'rdf:type' <singer> }")
        assert q.patterns == (TriplePattern(var("s"), "rdf:type", "singer"),)
        assert q.projection == (var("s"),)

    def test_papers_running_example(self):
        text = """
        SELECT ?s WHERE{
        ?s 'rdf:type' <singer>.
        ?s 'rdf:type' <lyricist>.
        ?s 'rdf:type' <guitarist>.
        ?s 'rdf:type' <pianist>
        }
        """
        q = parse_sparql(text)
        assert len(q) == 4
        assert all(p.predicate == "rdf:type" for p in q.patterns)

    def test_trailing_dot_allowed(self):
        q = parse_sparql("SELECT ?s WHERE { ?s <p> <o>. }")
        assert len(q) == 1

    def test_star_projection(self):
        q = parse_sparql("SELECT * WHERE { ?s <p> ?o }")
        assert set(q.projection) == {var("s"), var("o")}

    def test_multiple_projection_variables(self):
        q = parse_sparql("SELECT ?s ?o WHERE { ?s <p> ?o }")
        assert q.projection == (var("s"), var("o"))

    def test_case_insensitive_keywords(self):
        q = parse_sparql("select ?s where { ?s <p> <o> }")
        assert len(q) == 1

    def test_bare_terms(self):
        q = parse_sparql("SELECT ?s WHERE { ?s hasTag #intoyouvideo }")
        assert q.patterns[0].object == "#intoyouvideo"

    def test_double_quoted_terms(self):
        q = parse_sparql('SELECT ?s WHERE { ?s "rdf:type" <x> }')
        assert q.patterns[0].predicate == "rdf:type"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "WHERE { ?s <p> <o> }",
            "SELECT WHERE { ?s <p> <o> }",
            "SELECT ?s { ?s <p> <o> }",
            "SELECT ?s WHERE { }",
            "SELECT ?s WHERE { ?s <p> }",
            "SELECT ?s WHERE { ?s <p> <o>",
            "SELECT ?s WHERE { ?s <p> <o> } trailing",
            "SELECT ?s WHERE { ?s <p> '' }",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(text)

    def test_error_carries_position(self):
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql("SELECT ?s WHERE { ?s <p> <o> } X Y")
        assert excinfo.value.position is not None


class TestRoundTrip:
    def test_format_then_parse(self):
        q = parse_sparql("SELECT ?s WHERE { ?s <rdf:type> <singer> . ?s <p> ?o }")
        text = format_sparql(q)
        q2 = parse_sparql(text)
        assert q2 == q

    def test_format_contains_all_patterns(self):
        q = parse_sparql("SELECT ?s WHERE { ?s <a> <b> . ?s <c> <d> }")
        text = format_sparql(q)
        assert "<a>" in text and "<c>" in text
