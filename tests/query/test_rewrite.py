"""Unit tests for relaxed-query construction and space enumeration."""

import pytest

from repro.errors import RelaxationError
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.query.rewrite import (
    apply_rule,
    enumerate_space,
    relax_single,
    space_size,
    top_weighted_relaxation,
)
from repro.relax.rules import RelaxationRule, RuleSet


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def rules():
    rs = RuleSet()
    rs.add(RelaxationRule(tp("singer"), tp("vocalist"), 0.8))
    rs.add(RelaxationRule(tp("singer"), tp("jazz_singer"), 0.6))
    rs.add(RelaxationRule(tp("singer"), tp("artist"), 0.3))
    rs.add(RelaxationRule(tp("lyricist"), tp("writer"), 0.7))
    rs.add(RelaxationRule(tp("guitarist"), tp("musician"), 0.9))
    rs.add(RelaxationRule(tp("guitarist"), tp("instrumentalist"), 0.5))
    rs.add(RelaxationRule(tp("pianist"), tp("percussionist"), 0.4))
    return rs


@pytest.fixture
def query():
    return TriplePatternQuery(
        (tp("singer"), tp("lyricist"), tp("guitarist"), tp("pianist"))
    )


class TestApplyRule:
    def test_substitutes_domain(self, query, rules):
        rule = rules.for_pattern(tp("singer"))[0]
        relaxed = apply_rule(query, rule)
        assert tp("vocalist") in relaxed.patterns
        assert tp("singer") not in relaxed.patterns

    def test_rule_not_applicable_raises(self, query):
        rule = RelaxationRule(tp("drummer"), tp("musician"), 0.5)
        with pytest.raises(RelaxationError):
            apply_rule(query, rule)


class TestRelaxSingle:
    def test_yields_one_variant_per_rule(self, query, rules):
        variants = list(relax_single(query, tp("singer"), rules))
        assert len(variants) == 3
        assert {v.weight for v in variants} == {0.8, 0.6, 0.3}

    def test_variant_slot_patterns(self, query, rules):
        variant = next(iter(relax_single(query, tp("singer"), rules)))
        assert variant.slot_patterns[0] != tp("singer")
        assert variant.slot_patterns[1:] == query.patterns[1:]

    def test_missing_pattern_raises(self, query, rules):
        with pytest.raises(RelaxationError):
            list(relax_single(query, tp("zz"), rules))


class TestEnumerateSpace:
    def test_papers_48_queries(self, query, rules):
        # 4 options for singer, 2 for lyricist, 3 for guitarist, 2 for
        # pianist -> 48 unique queries (§1).
        assert space_size(query, rules) == 48
        variants = enumerate_space(query, rules)
        assert len(variants) == 48

    def test_original_first(self, query, rules):
        variants = enumerate_space(query, rules)
        assert variants[0].weight == 1.0
        assert variants[0].n_relaxed == 0

    def test_ordered_by_descending_weight(self, query, rules):
        weights = [v.weight for v in enumerate_space(query, rules)]
        assert weights == sorted(weights, reverse=True)

    def test_max_variants_cap(self, query, rules):
        assert len(enumerate_space(query, rules, max_variants=5)) == 5

    def test_no_rules_space_is_one(self, query):
        assert space_size(query, RuleSet()) == 1

    def test_query_property_none_on_collision(self):
        rs = RuleSet()
        rs.add(RelaxationRule(tp("a"), tp("x"), 0.5))
        rs.add(RelaxationRule(tp("b"), tp("x"), 0.5))
        q = TriplePatternQuery((tp("a"), tp("b")))
        variants = enumerate_space(q, rs)
        collided = [v for v in variants if v.n_relaxed == 2]
        assert len(collided) == 1
        assert collided[0].query is None
        assert collided[0].slot_patterns == (tp("x"), tp("x"))


class TestTopWeighted:
    def test_picks_best_weight(self, query, rules):
        rule = top_weighted_relaxation(query, tp("singer"), rules)
        assert rule is not None
        assert rule.weight == 0.8

    def test_none_without_rules(self, query):
        assert top_weighted_relaxation(query, tp("singer"), RuleSet()) is None
