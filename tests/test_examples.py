"""Smoke tests: every example script must run to completion.

The heavier generator-backed examples are exercised through their
importable pieces; the two hand-built ones run fully.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "music_exploration",
            "twitter_trends",
            "planner_ablation",
            "chain_relaxations",
        ],
    )
    def test_example_file_present(self, name):
        assert (EXAMPLES_DIR / f"{name}.py").exists()


class TestQuickstart:
    def test_runs_to_completion(self, capsys):
        module = load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "TriniT" in output
        assert "Spec-QP" in output
        assert "precision" in output

    def test_graph_and_rules_shape(self):
        module = load_example("quickstart")
        kg = module.build_graph()
        rules = module.build_rules()
        assert kg.size > 30
        assert len(rules) == 7  # Table 1 has 7 relaxations


class TestChainRelaxations:
    def test_runs_to_completion(self, capsys):
        module = load_example("chain_relaxations")
        module.main()
        output = capsys.readouterr().out
        assert "kylian" in output
        assert "chain" in output.lower()

    def test_chain_changes_results(self):
        module = load_example("chain_relaxations")
        from repro import RuleSet, SpecQPEngine
        from repro.relax.chains import ChainRuleSet

        kg = module.build_graph()
        plain = SpecQPEngine(kg, RuleSet())
        result = plain.query_trinit(
            "SELECT ?s WHERE { ?s <bornIn> <paris> }", k=10
        )
        names = {a.as_dict()["s"] for a in result.answers}
        assert "kylian" not in names  # only reachable via the chain
