"""Property: sharded top-k execution is indistinguishable from unsharded.

For random graphs and random (star-joined) queries, every shard count in
{1, 2, 3, 7} and both partitioning strategies must yield exactly the
answers — bindings *and* scores — of unsharded execution, relaxations
included.  This is the invariant the whole sharding subsystem rests on:
partitioning is an execution detail, never a semantics change.

Scores are drawn as small integers deliberately: that is the exactness
domain the merge documents (distinct raw scores stay distinct after
normalisation; see ``repro.operators.shard_merge``) and the shape of the
paper's count-based scores.  Sub-ulp raw-score collisions are outside
the byte-identical guarantee.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SpecQPEngine
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet
from repro.kg.triple import Triple

SHARD_COUNTS = (1, 2, 3, 7)

SUBJECTS = [f"s{i}" for i in range(8)]
PREDICATES = [f"p{i}" for i in range(3)]
OBJECTS = [f"o{i}" for i in range(5)]

triples = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=3,
    max_size=40,
)

# Star queries on ?s: each pattern binds the predicate and either binds
# the object or leaves it open — the shape of the paper's workloads.
pattern_specs = st.lists(
    st.tuples(
        st.sampled_from(PREDICATES),
        st.one_of(st.none(), st.sampled_from(OBJECTS)),
    ),
    min_size=1,
    max_size=3,
    unique=True,
)


def build_graph(rows) -> KnowledgeGraph:
    kg = KnowledgeGraph(name="prop")
    kg.add_triples(
        Triple(s, p, o, float(score)) for s, p, o, score in rows
    )
    return kg


def build_query(specs) -> TriplePatternQuery:
    subject = Variable("s")
    patterns = []
    for index, (predicate, obj) in enumerate(specs):
        term = obj if obj is not None else Variable(f"o{index}")
        patterns.append(TriplePattern(subject, predicate, term))
    return TriplePatternQuery(patterns)


def build_rules(specs) -> RuleSet:
    """Relax every object-bound pattern to a sibling object constant."""
    rules = RuleSet()
    subject = Variable("s")
    for predicate, obj in specs:
        if obj is None:
            continue
        sibling = OBJECTS[(OBJECTS.index(obj) + 1) % len(OBJECTS)]
        rules.add(
            RelaxationRule(
                TriplePattern(subject, predicate, obj),
                TriplePattern(subject, predicate, sibling),
                0.7,
            )
        )
    return rules


def answer_rows(result):
    return [(answer.bindings, answer.score) for answer in result.answers]


@settings(max_examples=25, deadline=None)
@given(rows=triples, specs=pattern_specs, k=st.integers(min_value=1, max_value=6))
def test_sharded_answers_identical_for_every_shard_count(rows, specs, k):
    graph = build_graph(rows)
    rules = build_rules(specs)
    query = build_query(specs)
    expected = answer_rows(SpecQPEngine(graph, rules).query(query, k=k))
    for n_shards in SHARD_COUNTS:
        for strategy in ("hash-subject", "score-range"):
            engine = SpecQPEngine(
                graph, rules, shards=n_shards, shard_strategy=strategy
            )
            actual = answer_rows(engine.query(query, k=k))
            assert actual == expected, (n_shards, strategy)


@settings(max_examples=15, deadline=None)
@given(rows=triples, specs=pattern_specs)
def test_sharded_match_lists_identical(rows, specs):
    from repro.kg.sharding import ShardedGraph

    graph = build_graph(rows)
    query = build_query(specs)
    for n_shards in SHARD_COUNTS:
        sharded = ShardedGraph.from_graph(graph, n_shards, strategy="score-range")
        for pattern in query.patterns:
            expected = graph.match_list(pattern)
            actual = sharded.match_list(pattern)
            assert actual.triples == expected.triples
            assert actual.max_score == expected.max_score
            assert actual.normalized_scores == expected.normalized_scores
