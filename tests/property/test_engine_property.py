"""Property-based tests for the full engine (hypothesis).

Random small KGs + random relaxation rules + random k: the Spec-QP
engine's structural guarantees must hold regardless of the input —
descending scores, no duplicate answers, scores bounded by the number of
patterns, and Spec-QP's answers never beating the true top-k rank-wise.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet

VAR_S = Variable("s")
TYPES = ["a", "b", "c", "d"]


def tp(name):
    return TriplePattern(VAR_S, "rdf:type", name)


@st.composite
def engines_and_queries(draw):
    kg = KnowledgeGraph()
    n_entities = draw(st.integers(min_value=3, max_value=20))
    for i in range(n_entities):
        mask = draw(st.integers(min_value=1, max_value=15))
        for bit, type_name in enumerate(TYPES):
            if mask & (1 << bit):
                score = draw(st.integers(min_value=1, max_value=500))
                kg.add(f"e{i}", "rdf:type", type_name, score=float(score))
    rules = RuleSet()
    n_rules = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_rules):
        domain = draw(st.sampled_from(TYPES))
        range_ = draw(st.sampled_from(TYPES))
        if domain != range_:
            weight = draw(st.floats(min_value=0.1, max_value=0.95))
            rules.add(RelaxationRule(tp(domain), tp(range_), weight))
    size = draw(st.integers(min_value=1, max_value=3))
    patterns = tuple(tp(t) for t in TYPES[:size])
    query = TriplePatternQuery(patterns, projection=(VAR_S,))
    k = draw(st.integers(min_value=1, max_value=12))
    relax_all = draw(st.booleans())
    engine = SpecQPEngine(
        kg, rules, EngineConfig(relax_all_when_insufficient=relax_all)
    )
    return engine, query, k


class TestEngineInvariants:
    @given(engines_and_queries())
    @settings(max_examples=50, deadline=None)
    def test_output_contract(self, setup):
        engine, query, k = setup
        for run in (engine.query, engine.query_trinit, engine.query_exact):
            result = run(query, k)
            scores = list(result.scores)
            # Sorted descending, at most k, no duplicate bindings.
            assert scores == sorted(scores, reverse=True)
            assert len(result.answers) <= k
            bindings = [a.bindings for a in result.answers]
            assert len(set(bindings)) == len(bindings)
            # Score bounds: each slot contributes at most 1.0.
            for score in scores:
                assert -1e-9 <= score <= len(query) + 1e-9

    @given(engines_and_queries())
    @settings(max_examples=50, deadline=None)
    def test_spec_never_beats_truth_rankwise(self, setup):
        """Spec-QP explores a subset of TriniT's space, so its answer at
        any rank can never score higher than the true answer at that
        rank."""
        engine, query, k = setup
        spec = engine.query(query, k)
        trinit = engine.query_trinit(query, k)
        for rank, answer in enumerate(spec.answers):
            if rank < len(trinit.answers):
                assert answer.score <= trinit.answers[rank].score + 1e-9

    @given(engines_and_queries())
    @settings(max_examples=50, deadline=None)
    def test_plan_partitions_query(self, setup):
        engine, query, k = setup
        decision = engine.plan(query, k)
        plan = decision.plan
        assert sorted(plan.join_group + plan.singletons) == list(
            range(len(query))
        )

    @given(engines_and_queries())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, setup):
        engine, query, k = setup
        first = engine.query(query, k)
        second = engine.query(query, k)
        assert [a.bindings for a in first.answers] == [
            a.bindings for a in second.answers
        ]
        assert all(
            math.isclose(x.score, y.score, abs_tol=1e-12)
            for x, y in zip(first.answers, second.answers)
        )
