"""Property: the block and tuple executors are indistinguishable.

For random graphs and random (star-joined) queries, ``executor="block"``
must return exactly the ``(bindings, score)`` sequence of
``executor="tuple"`` — over the columnar backend, over sharded backends
(1 and 4 shards), and with relaxation rules in play.  This is the
invariant the vectorized engine rests on: blocks are an execution
granularity, never a semantics change.

Scores are drawn as small integers deliberately: ties are then common,
so the canonical tie resolution of the shared top-k sink (the piece that
makes executor equivalence well-defined at all) is exercised on almost
every example.
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SpecQPEngine
from repro.datasets.scenarios import build_scenario
from repro.kg.columnar import ColumnarGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.triple import Triple
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet

SHARD_COUNTS = (1, 4)

SUBJECTS = [f"s{i}" for i in range(8)]
PREDICATES = [f"p{i}" for i in range(3)]
OBJECTS = [f"o{i}" for i in range(5)]

triples = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=20),
    ),
    min_size=3,
    max_size=40,
)

pattern_specs = st.lists(
    st.tuples(
        st.sampled_from(PREDICATES),
        st.one_of(st.none(), st.sampled_from(OBJECTS)),
    ),
    min_size=1,
    max_size=3,
    unique=True,
)


def build_graph(rows) -> ColumnarGraph:
    kg = KnowledgeGraph(name="prop")
    kg.add_triples(Triple(s, p, o, float(score)) for s, p, o, score in rows)
    return ColumnarGraph.from_graph(kg)


def build_query(specs) -> TriplePatternQuery:
    subject = Variable("s")
    patterns = []
    for index, (predicate, obj) in enumerate(specs):
        term = obj if obj is not None else Variable(f"o{index}")
        patterns.append(TriplePattern(subject, predicate, term))
    return TriplePatternQuery(patterns)


def build_rules(specs) -> RuleSet:
    """Relax every object-bound pattern to a sibling object constant."""
    rules = RuleSet()
    subject = Variable("s")
    for predicate, obj in specs:
        if obj is None:
            continue
        sibling = OBJECTS[(OBJECTS.index(obj) + 1) % len(OBJECTS)]
        rules.add(
            RelaxationRule(
                TriplePattern(subject, predicate, obj),
                TriplePattern(subject, predicate, sibling),
                0.7,
            )
        )
    return rules


def answer_rows(result):
    return [(answer.bindings, answer.score) for answer in result.answers]


@settings(max_examples=30, deadline=None)
@given(rows=triples, specs=pattern_specs, k=st.integers(min_value=1, max_value=6))
def test_block_executor_identical_to_tuple(rows, specs, k):
    graph = build_graph(rows)
    rules = build_rules(specs)
    query = build_query(specs)
    tuple_engine = SpecQPEngine(graph, rules, executor="tuple")
    block_engine = SpecQPEngine(graph, rules, executor="block")
    assert block_engine.executor.uses_block_path()
    expected = answer_rows(tuple_engine.query(query, k=k))
    assert answer_rows(block_engine.query(query, k=k)) == expected
    # The TriniT baseline plan (all patterns relaxed) takes the
    # incremental-merge path on every pattern.
    assert answer_rows(block_engine.query_trinit(query, k=k)) == answer_rows(
        tuple_engine.query_trinit(query, k=k)
    )


@settings(max_examples=15, deadline=None)
@given(rows=triples, specs=pattern_specs, k=st.integers(min_value=1, max_value=6))
def test_block_executor_identical_across_shard_counts(rows, specs, k):
    graph = build_graph(rows)
    rules = build_rules(specs)
    query = build_query(specs)
    expected = answer_rows(
        SpecQPEngine(graph, rules, executor="tuple").query(query, k=k)
    )
    for n_shards in SHARD_COUNTS:
        for executor in ("tuple", "block"):
            engine = SpecQPEngine(
                graph,
                rules,
                shards=n_shards,
                shard_strategy="score-range",
                executor=executor,
            )
            actual = answer_rows(engine.query(query, k=k))
            assert actual == expected, (n_shards, executor)


@settings(max_examples=20, deadline=None)
@given(rows=triples, k=st.integers(min_value=1, max_value=50))
def test_block_executor_empty_and_overlarge_k_edges(rows, k):
    """Regression shapes: empty match lists and k > result count."""
    graph = build_graph(rows)
    rules = RuleSet()
    subject = Variable("s")
    query = TriplePatternQuery(
        (
            TriplePattern(subject, PREDICATES[0], Variable("o")),
            TriplePattern(subject, "absent-predicate", Variable("z")),
        )
    )
    tuple_engine = SpecQPEngine(graph, rules, executor="tuple")
    block_engine = SpecQPEngine(graph, rules, executor="block")
    assert answer_rows(block_engine.query_exact(query, k=k)) == answer_rows(
        tuple_engine.query_exact(query, k=k)
    ) == []
    open_query = TriplePatternQuery(
        (TriplePattern(subject, PREDICATES[0], Variable("o")),)
    )
    assert answer_rows(block_engine.query_exact(open_query, k=k)) == answer_rows(
        tuple_engine.query_exact(open_query, k=k)
    )


# ----------------------------------------------------------------------
# The same invariant on generated scenario traffic: random small graphs
# above give breadth, the adversarial packs below give the *shapes* —
# boundary-tie runs straddling k, k > result-count, empty match lists,
# mined (not hand-planted) relaxation rules.
# ----------------------------------------------------------------------
SCENARIO_MATRIX = ("adversarial-ties", "adversarial-edge-k", "media-relax-heavy")


@functools.lru_cache(maxsize=None)
def _scenario_columnar(name):
    pack = build_scenario(name)
    return pack, ColumnarGraph.from_graph(pack.workload.graph)


@pytest.mark.parametrize("name", SCENARIO_MATRIX)
@pytest.mark.parametrize("executor", ("block", "auto"))
def test_scenario_pack_identical_to_tuple(name, executor):
    pack, graph = _scenario_columnar(name)
    rules = pack.workload.rules
    tuple_engine = SpecQPEngine(graph, rules, executor="tuple")
    other = SpecQPEngine(
        graph, rules, catalog=tuple_engine.catalog, executor=executor
    )
    for query in pack.workload.queries:
        expected = answer_rows(tuple_engine.query(query, k=pack.k))
        assert answer_rows(other.query(query, k=pack.k)) == expected, query.name


@pytest.mark.parametrize("name", SCENARIO_MATRIX)
def test_scenario_pack_identical_across_shard_counts(name):
    pack, graph = _scenario_columnar(name)
    rules = pack.workload.rules
    reference = SpecQPEngine(graph, rules, executor="tuple")
    # A slice is enough per shard count — the full sweep runs in the
    # slow_scenario matrix; this keeps adversarial shapes in tier 1.
    queries = pack.workload.queries[:6]
    expected = [answer_rows(reference.query(q, k=pack.k)) for q in queries]
    for n_shards in SHARD_COUNTS:
        for executor in ("tuple", "block", "auto"):
            engine = SpecQPEngine(
                graph,
                rules,
                shards=n_shards,
                shard_strategy="score-range",
                executor=executor,
            )
            for query, rows in zip(queries, expected):
                actual = answer_rows(engine.query(query, k=pack.k))
                assert actual == rows, (name, n_shards, executor, query.name)
