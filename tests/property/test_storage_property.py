"""Property-based storage tests (hypothesis).

The invariant: any graph survives TSV → snapshot → load unchanged —
same triples, same scores, and identical Definition-5 match lists (hence
identical query answers) whichever backend serves them.
"""

from hypothesis import given, settings, strategies as st

from repro.kg import ColumnarGraph, KnowledgeGraph, TriplePattern, Variable
from repro.kg import storage

# Terms: printable-ish, no TSV structure characters (tab/newline are the
# format's field/record separators, NUL is unsupported by the snapshot
# dictionary), and not starting with '#' (the TSV comment marker).
_term = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\t\n\r\x00"
    ),
    min_size=1,
    max_size=12,
).filter(lambda term: not term.startswith("#"))

# Scores: non-negative, finite, and stable under the TSV writer's %.10g
# formatting so equality across round trips is exact.
_score = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
).map(lambda value: float(f"{value:.10g}"))

_triples = st.lists(
    st.tuples(_term, _term, _term, _score), min_size=0, max_size=40
)


def _graph_from(rows) -> KnowledgeGraph:
    graph = KnowledgeGraph(name="prop")
    for s, p, o, score in rows:
        graph.add(s, p, o, score=score)
    return graph


def _contents(graph) -> set:
    return {(t.subject, t.predicate, t.object, t.score) for t in graph.triples()}


@settings(max_examples=60, deadline=None)
@given(rows=_triples)
def test_tsv_snapshot_load_round_trip(rows, tmp_path_factory):
    graph = _graph_from(rows)
    root = tmp_path_factory.mktemp("roundtrip")

    tsv_path = root / "graph.tsv"
    storage.save_tsv(graph, tsv_path)
    from_tsv = storage.load_tsv(tsv_path)
    assert _contents(from_tsv) == _contents(graph)

    snapshot_path = root / "graph.npz"
    storage.save_snapshot(from_tsv, snapshot_path)
    from_snapshot = storage.load_snapshot(snapshot_path)
    assert isinstance(from_snapshot, ColumnarGraph)
    assert _contents(from_snapshot) == _contents(graph)
    assert from_snapshot.size == graph.size


@settings(max_examples=40, deadline=None)
@given(rows=_triples)
def test_backends_answer_queries_identically(rows, tmp_path_factory):
    graph = _graph_from(rows)
    root = tmp_path_factory.mktemp("answers")
    snapshot_path = root / "graph.npz"
    storage.save_snapshot(graph, snapshot_path)
    columnar = storage.load_snapshot(snapshot_path)

    patterns = [TriplePattern(Variable("s"), Variable("p"), Variable("o"))]
    for predicate in sorted(graph.predicates()):
        patterns.append(TriplePattern(Variable("s"), predicate, Variable("o")))
    for triple in list(graph.triples())[:5]:
        patterns.append(TriplePattern(triple.subject, triple.predicate, Variable("o")))
        patterns.append(TriplePattern(Variable("x"), triple.predicate, triple.object))

    for pattern in patterns:
        expected = graph.match_list(pattern)
        actual = columnar.match_list(pattern)
        assert actual.triples == expected.triples
        assert actual.max_score == expected.max_score
        assert actual.normalized_scores == expected.normalized_scores


@settings(max_examples=40, deadline=None)
@given(rows=_triples)
def test_v2_snapshot_round_trip(rows, tmp_path_factory):
    """Any graph survives the packed mmap format unchanged — contents,
    match lists, and the TSV bytes it exports."""
    graph = _graph_from(rows)
    root = tmp_path_factory.mktemp("v2")

    packed = root / "graph.kg2"
    storage.save_snapshot_v2(graph, packed)
    attached = storage.load_snapshot_v2(packed, verify=True)
    assert isinstance(attached, ColumnarGraph)
    assert _contents(attached) == _contents(graph)

    # The two snapshot formats are observationally identical backends.
    npz = root / "graph.npz"
    storage.save_snapshot(graph, npz)
    from_npz = storage.load_snapshot(npz)
    v1_tsv, v2_tsv = root / "v1.tsv", root / "v2.tsv"
    storage.save_tsv(from_npz, v1_tsv)
    storage.save_tsv(attached, v2_tsv)
    assert v1_tsv.read_bytes() == v2_tsv.read_bytes()

    pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
    assert attached.match_list(pattern).triples == graph.match_list(pattern).triples
