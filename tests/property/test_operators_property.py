"""Property-based tests for the operator pipeline (hypothesis).

A random scored KG with random type assignments is generated per example;
the invariants pin the operator contracts (sorted output, sound bounds,
dedup semantics) and TriniT-vs-naive ground-truth agreement.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.baselines.naive import NaiveEngine
from repro.baselines.trinit import TriniTEngine
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.operators.incremental_merge import IncrementalMerge, WeightedInput
from repro.operators.memory import ExecutionContext
from repro.operators.rank_join import RankJoin
from repro.operators.scan import SortedScan
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet

VAR_S = Variable("s")
TYPES = ["t0", "t1", "t2", "t3"]


def tp(name):
    return TriplePattern(VAR_S, "rdf:type", name)


@st.composite
def graphs(draw):
    """A random KG: entities with random type subsets and integer scores."""
    n_entities = draw(st.integers(min_value=2, max_value=25))
    kg = KnowledgeGraph()
    non_empty = False
    for i in range(n_entities):
        type_mask = draw(st.integers(min_value=0, max_value=15))
        for bit, type_name in enumerate(TYPES):
            if type_mask & (1 << bit):
                score = draw(st.integers(min_value=1, max_value=1000))
                kg.add(f"e{i}", "rdf:type", type_name, score=float(score))
                non_empty = True
    if not non_empty:
        kg.add("e0", "rdf:type", "t0", score=1.0)
    return kg


@st.composite
def rule_sets(draw):
    rules = RuleSet()
    n_rules = draw(st.integers(min_value=0, max_value=4))
    pairs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(TYPES),
                st.sampled_from(TYPES),
                st.floats(min_value=0.1, max_value=0.95),
            ),
            min_size=n_rules,
            max_size=n_rules,
        )
    )
    for domain, range_, weight in pairs:
        if domain != range_:
            rules.add(RelaxationRule(tp(domain), tp(range_), weight))
    return rules


class TestOperatorInvariants:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_scan_sorted_with_sound_bounds(self, kg):
        context = ExecutionContext()
        scan = SortedScan(kg, tp("t0"), 0, context)
        previous = math.inf
        while True:
            bound = scan.upper_bound()
            item = scan.next()
            if item is None:
                assert scan.upper_bound() == -math.inf
                break
            assert item.score <= bound + 1e-9
            assert item.score <= previous + 1e-9
            previous = item.score

    @given(graphs(), st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_merge_sorted_and_distinct(self, kg, weight):
        context = ExecutionContext()
        inputs = [
            WeightedInput(SortedScan(kg, tp("t0"), 0, context), 1.0),
            WeightedInput(
                SortedScan(kg, tp("t1"), 0, context, weight=weight), weight
            ),
        ]
        merge = IncrementalMerge(inputs, context)
        seen = set()
        previous = math.inf
        for item in merge:
            assert item.score <= previous + 1e-9
            previous = item.score
            identity = item.identity()
            assert identity not in seen
            seen.add(identity)

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_rank_join_matches_hash_join(self, kg):
        """Rank join must produce exactly the set of answers a plain hash
        join over the same two lists produces, sorted by summed score."""
        context = ExecutionContext()
        left = SortedScan(kg, tp("t0"), 0, context)
        right = SortedScan(kg, tp("t1"), 1, context)
        join = RankJoin(left, right, context)
        got = {(i.bindings["s"], round(i.score, 9)) for i in join.drain()}

        t0 = {
            t.subject: s
            for t, s in zip(
                kg.match_list(tp("t0")).triples,
                kg.match_list(tp("t0")).normalized_scores,
            )
        }
        t1 = {
            t.subject: s
            for t, s in zip(
                kg.match_list(tp("t1")).triples,
                kg.match_list(tp("t1")).normalized_scores,
            )
        }
        expected = {
            (e, round(t0[e] + t1[e], 9)) for e in set(t0) & set(t1)
        }
        assert got == expected


class TestEngineAgreement:
    @given(graphs(), rule_sets(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_trinit_equals_naive(self, kg, rules, k):
        """The incremental-operator engine and the brute-force engine must
        agree on the top-k (bindings and scores) for 2-pattern queries."""
        query = TriplePatternQuery(
            (tp("t0"), tp("t1")), projection=(VAR_S,)
        )
        trinit = TriniTEngine(kg, rules).query(query, k)
        naive = NaiveEngine(kg, rules).query(query, k)
        assert len(trinit.answers) == len(naive.answers)
        # Compare rank by rank; allow binding swaps only at equal scores.
        for t_ans, n_ans in zip(trinit.answers, naive.answers):
            assert math.isclose(t_ans.score, n_ans.score, abs_tol=1e-9)
        assert {a.bindings for a in trinit.answers} == {
            a.bindings for a in naive.answers
        }
