"""Property: scenario pack generation is a pure function of (name, seed).

The determinism contract the golden manifests freeze for the default
seeds must hold for *every* seed: two independent generations of the
same ``(name, seed)`` are byte-identical (full export stream, not just
counts), different seeds produce distinct traffic, and every generated
pack — whatever its seed — satisfies the Workload validity constraints
and its own structural contract.  Hypothesis drives the seeds so the
contract is checked where the goldens never look.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.scenarios import build_scenario, scenario_names

#: Generation costs ~50ms per pack, so property runs sample a fast,
#: shape-diverse trio rather than all ten packs: one balanced base pack,
#: the update-carrying edge-of-k pack, the tie-run pack.
SAMPLED_PACKS = ("media-base", "adversarial-edge-k", "adversarial-ties")

pack_names = st.sampled_from(SAMPLED_PACKS)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=8, deadline=None)
@given(name=pack_names, seed=seeds)
def test_same_seed_byte_identical(name, seed):
    first = build_scenario(name, seed=seed)
    second = build_scenario(name, seed=seed)
    assert list(first.export_lines()) == list(second.export_lines())
    assert first.manifest() == second.manifest()


@settings(max_examples=8, deadline=None)
@given(
    name=pack_names,
    seed_pair=st.tuples(seeds, seeds).filter(lambda pair: pair[0] != pair[1]),
)
def test_different_seeds_distinct_traffic(name, seed_pair):
    first = build_scenario(name, seed=seed_pair[0])
    second = build_scenario(name, seed=seed_pair[1])
    assert first.checksum() != second.checksum()


@settings(max_examples=8, deadline=None)
@given(name=pack_names, seed=seeds)
def test_every_seed_satisfies_the_pack_contract(name, seed):
    pack = build_scenario(name, seed=seed)
    assert pack.validate() == []
    # The Workload invariants the service layer assumes.
    assert pack.workload.validate() == []
    names = [q.name for q in pack.workload.queries]
    assert len(names) == len(set(names))


def test_default_seed_is_the_spec_seed():
    for name in scenario_names():
        pack = build_scenario(name)
        assert pack.manifest()["seed"] == pack.seed
