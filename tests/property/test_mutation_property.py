"""Property: mutation then query ≡ query over a from-scratch rebuild.

The mutation-equivalence oracle the live-update subsystem rests on: for
any interleaving of ``add`` (including score overwrites) and ``remove``
operations, querying the mutated graph must equal querying a fresh graph
built from the final triple set — for the object backend mutated in
place, for :class:`~repro.kg.delta.LiveGraph` overlays over the columnar
and sharded backends, and across shard counts {1, 4} at execution time.

Scores are small integers for the same reason as in
``test_sharding_property``: that is the byte-identical exactness domain
the merge machinery documents.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SpecQPEngine
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import ShardedGraph
from repro.kg.triple import Triple
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet

SHARD_COUNTS = (1, 4)

SUBJECTS = [f"s{i}" for i in range(6)]
PREDICATES = [f"p{i}" for i in range(3)]
OBJECTS = [f"o{i}" for i in range(4)]

triples = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=2,
    max_size=25,
)

# Interleaved mutations: adds (op True, may overwrite) and removes.
operations = st.lists(
    st.tuples(
        st.booleans(),
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=30,
)

pattern_specs = st.lists(
    st.tuples(
        st.sampled_from(PREDICATES),
        st.one_of(st.none(), st.sampled_from(OBJECTS)),
    ),
    min_size=1,
    max_size=2,
    unique=True,
)


def build_query(specs) -> TriplePatternQuery:
    subject = Variable("s")
    patterns = []
    for index, (predicate, obj) in enumerate(specs):
        term = obj if obj is not None else Variable(f"o{index}")
        patterns.append(TriplePattern(subject, predicate, term))
    return TriplePatternQuery(patterns)


def build_rules(specs) -> RuleSet:
    rules = RuleSet()
    subject = Variable("s")
    for predicate, obj in specs:
        if obj is None:
            continue
        sibling = OBJECTS[(OBJECTS.index(obj) + 1) % len(OBJECTS)]
        rules.add(
            RelaxationRule(
                TriplePattern(subject, predicate, obj),
                TriplePattern(subject, predicate, sibling),
                0.7,
            )
        )
    return rules


def final_scores(rows, ops) -> dict[tuple[str, str, str], float]:
    scores = {(s, p, o): float(score) for s, p, o, score in rows}
    for is_add, s, p, o, score in ops:
        if is_add:
            scores[(s, p, o)] = float(score)
        else:
            scores.pop((s, p, o), None)
    return scores


def answer_rows(result):
    return [(answer.bindings, answer.score) for answer in result.answers]


@settings(max_examples=20, deadline=None)
@given(
    rows=triples,
    ops=operations,
    specs=pattern_specs,
    k=st.integers(min_value=1, max_value=5),
)
def test_mutated_graphs_answer_like_fresh_rebuilds(rows, ops, specs, k):
    initial = KnowledgeGraph(name="initial")
    initial.add_triples(Triple(s, p, o, float(score)) for s, p, o, score in rows)

    fresh = KnowledgeGraph(
        (Triple(s, p, o, sc) for (s, p, o), sc in final_scores(rows, ops).items()),
        name="fresh",
    )
    rules = build_rules(specs)
    query = build_query(specs)

    # The object backend, mutated in place.
    mutated = KnowledgeGraph(initial.triples(), name="mutated")
    updates = []
    for is_add, s, p, o, score in ops:
        if is_add:
            mutated.add(s, p, o, score=float(score))
            updates.append(GraphUpdate.add(s, p, o, float(score)))
        else:
            mutated.remove(s, p, o)
            updates.append(GraphUpdate.remove(s, p, o))

    # Live overlays over the frozen backends, fed the same interleaving.
    overlays = [LiveGraph(ColumnarGraph.from_graph(initial))]
    overlays += [
        LiveGraph(ShardedGraph.from_graph(initial, 4, strategy=strategy))
        for strategy in ("hash-subject", "score-range")
    ]
    for overlay in overlays:
        overlay.apply_updates(updates)
        assert overlay.size == fresh.size

    expected = answer_rows(SpecQPEngine(fresh, rules).query(query, k=k))
    for n_shards in SHARD_COUNTS:
        shard_kwargs = dict(shards=n_shards) if n_shards > 1 else {}
        assert (
            answer_rows(SpecQPEngine(fresh, rules, **shard_kwargs).query(query, k=k))
            == expected
        ), ("fresh", n_shards)
        actual = answer_rows(
            SpecQPEngine(mutated, rules, **shard_kwargs).query(query, k=k)
        )
        assert actual == expected, ("object", n_shards)

    for overlay in overlays:
        actual = answer_rows(SpecQPEngine(overlay, rules).query(query, k=k))
        assert actual == expected, ("live", type(overlay.base).__name__)
        overlay.compact()
        actual = answer_rows(SpecQPEngine(overlay, rules).query(query, k=k))
        assert actual == expected, ("compacted", type(overlay.base).__name__)
