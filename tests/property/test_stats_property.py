"""Property-based tests for the statistics substrate (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.stats.histogram import TwoBucketHistogram, stats_from_scores
from repro.stats.order_statistics import expected_score_at_rank
from repro.stats.piecewise import Bucket, PiecewiseConstantDensity, convolve

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
scores_lists = st.lists(
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=60,
).map(lambda xs: sorted([1.0] + xs, reverse=True))
# Always include 1.0: normalised match lists always have max = 1.


@st.composite
def two_bucket_histograms(draw):
    sigma = draw(st.floats(min_value=0.01, max_value=0.99))
    beta = draw(st.floats(min_value=0.05, max_value=0.95))
    count = draw(st.integers(min_value=1, max_value=10_000))
    return TwoBucketHistogram(sigma=sigma, high=1.0, beta=beta, count=count)


@st.composite
def constant_densities(draw):
    # Edges live on a 1/1000 grid so bucket widths stay realistic (>= 1e-3)
    # — sub-epsilon widths are covered by dedicated point-mass unit tests.
    n = draw(st.integers(min_value=1, max_value=4))
    edge_grid = draw(
        st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=n + 1,
            max_size=n + 1,
            unique=True,
        )
    )
    edges = sorted(e / 1000 for e in edge_grid)
    masses = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    buckets = [
        Bucket(lo, hi, mass) for lo, hi, mass in zip(edges, edges[1:], masses)
    ]
    return PiecewiseConstantDensity(buckets).normalized()


# ----------------------------------------------------------------------
# stats_from_scores invariants
# ----------------------------------------------------------------------
class TestStatsInvariants:
    @given(scores_lists)
    @settings(max_examples=150)
    def test_boundary_rank_captures_mass_fraction(self, scores):
        stats = stats_from_scores(scores)
        assert stats.s_r >= 0.8 * stats.s_m - 1e-9
        if stats.r > 1:
            assert sum(scores[: stats.r - 1]) < 0.8 * stats.s_m

    @given(scores_lists)
    @settings(max_examples=150)
    def test_sigma_is_a_real_score(self, scores):
        stats = stats_from_scores(scores)
        assert stats.sigma_r in scores

    @given(scores_lists)
    @settings(max_examples=100)
    def test_histogram_valid_density(self, scores):
        hist = TwoBucketHistogram.from_scores(scores)
        density = hist.to_density()
        assert density.mass() == math.isclose(density.mass(), 1.0, abs_tol=1e-9) or True
        assert abs(density.mass() - 1.0) < 1e-9


# ----------------------------------------------------------------------
# Density invariants
# ----------------------------------------------------------------------
class TestDensityInvariants:
    @given(constant_densities(), st.floats(min_value=-0.5, max_value=1.5))
    @settings(max_examples=150)
    def test_cdf_monotone_bounded(self, density, x):
        value = density.cdf(x)
        assert -1e-9 <= value <= 1.0 + 1e-9
        assert density.cdf(x + 0.1) >= value - 1e-9

    @given(constant_densities(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=150)
    def test_inverse_cdf_round_trip(self, density, p):
        x = density.inverse_cdf(p)
        lo, hi = density.support
        assert lo - 1e-9 <= x <= hi + 1e-9
        assert abs(density.cdf(x) - p) < 1e-6

    @given(constant_densities())
    @settings(max_examples=100)
    def test_mean_within_support(self, density):
        lo, hi = density.support
        assert lo - 1e-9 <= density.mean() <= hi + 1e-9

    @given(constant_densities(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_partial_expectation_decreasing(self, density, c):
        assert (
            density.partial_expectation(c)
            >= density.partial_expectation(c + 0.05) - 1e-9
        )


# ----------------------------------------------------------------------
# Convolution invariants
# ----------------------------------------------------------------------
class TestConvolutionInvariants:
    @given(constant_densities(), constant_densities())
    @settings(max_examples=80, deadline=None)
    def test_mass_preserved(self, d1, d2):
        result = convolve(d1, d2)
        assert abs(result.mass() - 1.0) < 1e-6

    @given(constant_densities(), constant_densities())
    @settings(max_examples=80, deadline=None)
    def test_mean_additive(self, d1, d2):
        result = convolve(d1, d2)
        assert abs(result.mean() - (d1.mean() + d2.mean())) < 1e-6

    @given(constant_densities(), constant_densities())
    @settings(max_examples=80, deadline=None)
    def test_support_additive(self, d1, d2):
        result = convolve(d1, d2)
        lo, hi = result.support
        assert abs(lo - (d1.support[0] + d2.support[0])) < 1e-6
        assert abs(hi - (d1.support[1] + d2.support[1])) < 1e-6

    @given(constant_densities(), constant_densities())
    @settings(max_examples=60, deadline=None)
    def test_refit_preserves_count_and_support(self, d1, d2):
        convolved = convolve(d1, d2)
        refit = TwoBucketHistogram.refit(convolved, count=42)
        assert refit.count == 42
        assert 0.0 <= refit.sigma <= refit.high + 1e-9


# ----------------------------------------------------------------------
# Order statistics invariants
# ----------------------------------------------------------------------
class TestOrderStatisticsInvariants:
    @given(two_bucket_histograms(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=100)
    def test_rank_monotone(self, hist, n):
        density = hist.to_density()
        values = [expected_score_at_rank(density, r, n) for r in range(1, n + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    @given(two_bucket_histograms(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=100)
    def test_expected_scores_within_support(self, hist, n):
        density = hist.to_density()
        top = expected_score_at_rank(density, 1, n)
        assert 0.0 <= top <= hist.high + 1e-9
