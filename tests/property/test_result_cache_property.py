"""Property: a result-cached runner is answer-invisible.

The whole-answer cache's oracle: for any interleaving of query batches
and ``apply_updates`` batches, a :class:`~repro.service.WorkloadRunner`
with the result cache enabled returns byte-identical answers (bindings
*and* scores) to one with the cache disabled — across the object,
columnar and sharded backends, and under the tuple, block and auto
execution strategies.  Repeats inside a phase are asked twice on the
cached side specifically so the second ask is served from the cache.

Scores are small integers, as in ``test_mutation_property``: the
byte-identical exactness domain the merge machinery documents.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.workload import Workload
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import ShardedGraph
from repro.kg.triple import Triple
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet
from repro.service import WorkloadRunner

EXECUTORS = ("tuple", "block", "auto")

SUBJECTS = [f"s{i}" for i in range(6)]
PREDICATES = [f"p{i}" for i in range(3)]
OBJECTS = [f"o{i}" for i in range(4)]

triples = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=2,
    max_size=20,
)

operations = st.lists(
    st.tuples(
        st.booleans(),
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=2,
    max_size=16,
)

pattern_specs = st.lists(
    st.tuples(
        st.sampled_from(PREDICATES),
        st.one_of(st.none(), st.sampled_from(OBJECTS)),
    ),
    min_size=1,
    max_size=2,
    unique=True,
)


def build_query(specs) -> TriplePatternQuery:
    subject = Variable("s")
    patterns = []
    for index, (predicate, obj) in enumerate(specs):
        term = obj if obj is not None else Variable(f"o{index}")
        patterns.append(TriplePattern(subject, predicate, term))
    return TriplePatternQuery(patterns, name="probe")


def build_rules(specs) -> RuleSet:
    rules = RuleSet()
    subject = Variable("s")
    for predicate, obj in specs:
        if obj is None:
            continue
        sibling = OBJECTS[(OBJECTS.index(obj) + 1) % len(OBJECTS)]
        rules.add(
            RelaxationRule(
                TriplePattern(subject, predicate, obj),
                TriplePattern(subject, predicate, sibling),
                0.7,
            )
        )
    return rules


def backends(rows):
    base = KnowledgeGraph(name="base")
    base.add_triples(Triple(s, p, o, float(score)) for s, p, o, score in rows)
    yield "object", KnowledgeGraph(base.triples(), name="object")
    yield "columnar", ColumnarGraph.from_graph(base, name="columnar")
    yield "sharded", ShardedGraph.from_graph(base, 4, strategy="score-range")


def answer_rows(answers):
    return [(a.bindings, a.score) for a in answers]


@settings(max_examples=10, deadline=None)
@given(
    rows=triples,
    ops=operations,
    specs=pattern_specs,
    k=st.integers(min_value=1, max_value=5),
)
def test_result_cached_runner_is_answer_invisible(rows, ops, specs, k):
    query = build_query(specs)
    rules = build_rules(specs)
    updates = [
        GraphUpdate.add(s, p, o, float(score))
        if is_add
        else GraphUpdate.remove(s, p, o)
        for is_add, s, p, o, score in ops
    ]
    half = len(updates) // 2
    update_batches = [b for b in (updates[:half], updates[half:]) if b]

    for executor in EXECUTORS:
        for (backend_name, cached_graph), (_, plain_graph) in zip(
            backends(rows), backends(rows)
        ):
            label = (executor, backend_name)
            cached = WorkloadRunner(
                Workload("cached", cached_graph, rules, (query,)),
                executor=executor,
            )
            plain = WorkloadRunner(
                Workload("plain", plain_graph, rules, (query,)),
                executor=executor,
                result_cache_capacity=0,
            )
            assert cached.result_cache is not None
            assert plain.result_cache is None

            phases = [None, *update_batches]
            for phase_index, batch in enumerate(phases):
                if batch is not None:
                    cached.apply_updates(batch)
                    plain.apply_updates(batch)
                expected = answer_rows(plain.execute_query(query, k=k))
                first = answer_rows(cached.execute_query(query, k=k))
                repeat = answer_rows(cached.execute_query(query, k=k))
                assert first == expected, (*label, phase_index, "first")
                assert repeat == expected, (*label, phase_index, "repeat")
            # The repeats were genuinely served from the cache, not
            # coincidentally re-executed.
            assert cached.result_cache.stats().hits >= len(phases)
