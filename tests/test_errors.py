"""Tests for the exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.KnowledgeGraphError,
            errors.PatternError,
            errors.QueryError,
            errors.SparqlSyntaxError,
            errors.RelaxationError,
            errors.StatisticsError,
            errors.HistogramError,
            errors.EstimationError,
            errors.PlanError,
            errors.ExecutionError,
            errors.DatasetError,
            errors.ExperimentError,
        ],
    )
    def test_subclasses_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_sparql_error_is_query_error(self):
        assert issubclass(errors.SparqlSyntaxError, errors.QueryError)

    def test_histogram_and_estimation_are_statistics_errors(self):
        assert issubclass(errors.HistogramError, errors.StatisticsError)
        assert issubclass(errors.EstimationError, errors.StatisticsError)

    def test_sparql_error_position_formatting(self):
        error = errors.SparqlSyntaxError("bad token", position=17)
        assert "offset 17" in str(error)
        assert error.position == 17

    def test_sparql_error_without_position(self):
        error = errors.SparqlSyntaxError("bad token")
        assert error.position is None

    def test_one_except_catches_everything(self):
        """The documented pattern: one except clause for the whole family."""
        from repro.kg.triple import Triple

        with pytest.raises(errors.ReproError):
            Triple("", "p", "o")
