"""Unit tests for the columnar dictionary-encoded backend."""

import numpy as np
import pytest

from repro.errors import KnowledgeGraphError
from repro.kg import ColumnarGraph, ColumnarStore, KnowledgeGraph, Triple
from repro.kg.pattern import TriplePattern, Variable

VAR_S = Variable("s")
VAR_O = Variable("o")


@pytest.fixture
def object_graph(music_graph) -> KnowledgeGraph:
    music_graph.add("dylan", "likes", "dylan", 3.0)
    music_graph.add("dylan", "likes", "shakira", 7.0)
    return music_graph


@pytest.fixture
def columnar_graph(object_graph) -> ColumnarGraph:
    return ColumnarGraph.from_graph(object_graph)


PATTERNS = [
    TriplePattern(VAR_S, "rdf:type", "singer"),
    TriplePattern(VAR_S, "rdf:type", VAR_O),
    TriplePattern("dylan", "likes", VAR_O),
    TriplePattern(VAR_S, Variable("p"), VAR_O),
    TriplePattern(VAR_S, "likes", VAR_S),  # repeated variable: diagonal only
    TriplePattern("shakira", "rdf:type", "singer"),  # fully bound
    TriplePattern("nobody", "rdf:type", "singer"),  # unknown term
]


class TestColumnarStore:
    def test_from_triples_interns_and_dedups_last_wins(self):
        store = ColumnarStore.from_triples(
            [Triple("a", "p", "b", 1.0), Triple("a", "p", "b", 9.0)]
        )
        assert store.n_triples == 1
        assert store.scores[0] == 9.0
        assert store.n_terms == 3

    def test_rejects_nul_terms(self):
        with pytest.raises(KnowledgeGraphError, match="NUL"):
            ColumnarStore.from_triples([Triple("a\x00b", "p", "o")])

    def test_rejects_non_triples(self):
        with pytest.raises(KnowledgeGraphError, match="expected Triple"):
            ColumnarStore.from_triples([("a", "p", "b")])  # type: ignore[list-item]

    def test_empty_store(self):
        store = ColumnarStore.from_triples([])
        assert store.n_triples == 0 and store.n_terms == 0
        assert list(store.iter_triples()) == []
        assert len(store.rows_matching((None, None, None))) == 0

    def test_from_arrays_validates_id_range(self):
        with pytest.raises(KnowledgeGraphError, match="out of range"):
            ColumnarStore.from_arrays(
                np.array(["a", "p"]),
                np.array([0]), np.array([1]), np.array([5]),
                np.array([1.0]),
            )

    def test_from_arrays_validates_scores(self):
        terms = np.array(["a", "p", "b"])
        for bad in (np.array([np.nan]), np.array([np.inf]), np.array([-1.0])):
            with pytest.raises(KnowledgeGraphError):
                ColumnarStore.from_arrays(
                    terms, np.array([0]), np.array([1]), np.array([2]), bad
                )

    def test_from_arrays_validates_duplicate_rows(self):
        terms = np.array(["a", "p", "b"])
        with pytest.raises(KnowledgeGraphError, match="unique"):
            ColumnarStore.from_arrays(
                terms,
                np.array([0, 0]), np.array([1, 1]), np.array([2, 2]),
                np.array([1.0, 2.0]),
            )

    def test_from_arrays_validates_duplicate_terms(self):
        with pytest.raises(KnowledgeGraphError, match="distinct"):
            ColumnarStore.from_arrays(
                np.array(["a", "a", "b"]),
                np.array([0]), np.array([1]), np.array([2]),
                np.array([1.0]),
            )

    def test_row_of_and_term_id(self):
        store = ColumnarStore.from_triples([Triple("a", "p", "b", 2.0)])
        assert store.term_id("a") == 0
        assert store.term_id("zzz") is None
        assert store.row_of("a", "p", "b") == 0
        assert store.row_of("a", "p", "a") is None
        assert store.row_of("zzz", "p", "b") is None


class TestColumnarGraphInterface:
    def test_size_and_len(self, object_graph, columnar_graph):
        assert columnar_graph.size == object_graph.size
        assert len(columnar_graph) == len(object_graph)

    def test_triples_round_trip(self, object_graph, columnar_graph):
        assert set(columnar_graph.triples()) == set(object_graph.triples())
        scores = {t.spo: t.score for t in columnar_graph.triples()}
        for triple in object_graph.triples():
            assert scores[triple.spo] == triple.score

    def test_contains_and_score_of(self, object_graph, columnar_graph):
        assert ("dylan", "likes", "shakira") in columnar_graph
        assert Triple("dylan", "likes", "shakira", 0.0) in columnar_graph
        assert ("dylan", "likes", "nobody") not in columnar_graph
        assert "not-a-triple" not in columnar_graph
        assert columnar_graph.score_of("dylan", "likes", "shakira") == 7.0
        with pytest.raises(KnowledgeGraphError):
            columnar_graph.score_of("dylan", "likes", "nobody")

    def test_entities_and_predicates(self, object_graph, columnar_graph):
        assert columnar_graph.entities() == object_graph.entities()
        assert columnar_graph.predicates() == object_graph.predicates()

    @pytest.mark.parametrize("pattern", PATTERNS, ids=str)
    def test_match_lists_identical_to_object_backend(
        self, object_graph, columnar_graph, pattern
    ):
        expected = object_graph.match_list(pattern)
        actual = columnar_graph.match_list(pattern)
        assert actual.pattern_key == expected.pattern_key
        assert actual.triples == expected.triples
        assert actual.max_score == expected.max_score
        assert actual.normalized_scores == expected.normalized_scores
        assert [t.score for t in actual.triples] == [
            t.score for t in expected.triples
        ]

    @pytest.mark.parametrize("pattern", PATTERNS, ids=str)
    def test_match_and_count_identical(self, object_graph, columnar_graph, pattern):
        expected = sorted(object_graph.match(pattern), key=lambda t: t.spo)
        actual = sorted(columnar_graph.match(pattern), key=lambda t: t.spo)
        assert actual == expected
        assert columnar_graph.count(pattern) == object_graph.count(pattern)

    def test_match_list_cached_per_key(self, columnar_graph):
        first = columnar_graph.match_list(TriplePattern(VAR_S, "rdf:type", "singer"))
        second = columnar_graph.match_list(
            TriplePattern(Variable("other"), "rdf:type", "singer")
        )
        assert first is second

    def test_index_stats_flag_backend(self, columnar_graph):
        columnar_graph.match_list(TriplePattern(VAR_S, "rdf:type", "singer"))
        stats = columnar_graph.index_stats()
        assert stats["columnar"] == 1
        assert stats["match_lists"] == 1

    def test_external_cache_hook(self, columnar_graph):
        from repro.service import MatchListCache

        cache = MatchListCache(capacity=4)
        columnar_graph.attach_match_list_cache(cache)
        pattern = TriplePattern(VAR_S, "rdf:type", "singer")
        columnar_graph.match_list(pattern)
        columnar_graph.match_list(pattern)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        columnar_graph.detach_match_list_cache()

    def test_invalidate_caches_is_safe(self, columnar_graph):
        pattern = TriplePattern(VAR_S, "rdf:type", "singer")
        before = columnar_graph.match_list(pattern)
        columnar_graph.invalidate_caches()
        after = columnar_graph.match_list(pattern)
        assert before.triples == after.triples


class TestFreezeThaw:
    def test_mutation_raises(self, columnar_graph):
        with pytest.raises(KnowledgeGraphError, match="immutable"):
            columnar_graph.add("a", "b", "c")
        with pytest.raises(KnowledgeGraphError, match="immutable"):
            columnar_graph.add_triples([Triple("a", "b", "c")])
        with pytest.raises(KnowledgeGraphError, match="immutable"):
            columnar_graph.remove("shakira", "rdf:type", "singer")

    def test_thaw_round_trip(self, object_graph, columnar_graph):
        thawed = columnar_graph.thaw()
        assert type(thawed) is KnowledgeGraph
        assert set(thawed.triples()) == set(object_graph.triples())
        thawed.add("new", "p", "o")  # mutable again
        assert thawed.size == columnar_graph.size + 1

    def test_from_graph_on_columnar_shares_store(self, columnar_graph):
        again = ColumnarGraph.from_graph(columnar_graph, name="copy")
        assert again.store is columnar_graph.store
        assert again.name == "copy"

    def test_from_triples(self):
        graph = ColumnarGraph.from_triples(
            [Triple("a", "p", "b", 2.0)], name="direct"
        )
        assert graph.size == 1 and graph.name == "direct"


class TestOpenMmap:
    """ColumnarStore.open_mmap: the v2 attach entry point on the store."""

    def test_attach_serves_identical_match_lists(self, columnar_graph, tmp_path):
        from repro.kg import storage

        path = tmp_path / "music.kg2"
        storage.save_snapshot_v2(columnar_graph, path)
        attached = ColumnarStore.open_mmap(path)
        assert attached.n_triples == columnar_graph.store.n_triples
        served = ColumnarGraph(attached, name="mmap")
        for pattern in PATTERNS:
            assert (
                served.match_list(pattern).triples
                == columnar_graph.match_list(pattern).triples
            ), pattern

    def test_attach_does_not_resort_the_dictionary(self, columnar_graph, tmp_path):
        """The persisted term_rank section is used as-is."""
        from repro.kg import storage

        path = tmp_path / "music.kg2"
        storage.save_snapshot_v2(columnar_graph, path)
        attached = ColumnarStore.open_mmap(path)
        assert attached._term_rank is not None  # present before any query
        np.testing.assert_array_equal(
            attached._ranks(), columnar_graph.store._ranks()
        )

    def test_verify_flag_checks_invariants(self, columnar_graph, tmp_path):
        from repro.kg import storage

        path = tmp_path / "music.kg2"
        storage.save_snapshot_v2(columnar_graph, path)
        attached = ColumnarStore.open_mmap(path, verify=True)
        assert attached.n_triples == columnar_graph.store.n_triples


class TestLexiconSharing:
    """share_lexicon_from: shards borrow the parent's decoded dictionary."""

    def test_requires_identical_terms_array(self, columnar_graph):
        other = ColumnarStore.from_triples([Triple("x", "y", "z")])
        with pytest.raises(KnowledgeGraphError, match="identical terms array"):
            other.share_lexicon_from(columnar_graph.store)

    def test_child_delegates_lazily(self, columnar_graph):
        parent = columnar_graph.store
        child = ColumnarStore(
            parent.terms,
            parent.subjects[:2],
            parent.predicates[:2],
            parent.objects[:2],
            parent.scores[:2],
        )
        child.share_lexicon_from(parent)
        assert child.term_list() is parent.term_list()
        assert child.term_id("dylan") == parent.term_id("dylan")
        np.testing.assert_array_equal(child._ranks(), parent._ranks())
