"""Unit tests for repro.kg.graph."""

import pytest

from repro.errors import KnowledgeGraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.kg.triple import Triple


@pytest.fixture
def small_graph():
    kg = KnowledgeGraph(name="small")
    kg.add("a", "type", "t1", score=10.0)
    kg.add("b", "type", "t1", score=5.0)
    kg.add("c", "type", "t2", score=3.0)
    kg.add("a", "likes", "b", score=1.0)
    return kg


class TestMutation:
    def test_add_and_size(self, small_graph):
        assert small_graph.size == 4
        assert len(small_graph) == 4

    def test_add_duplicate_updates_score(self, small_graph):
        small_graph.add("a", "type", "t1", score=99.0)
        assert small_graph.size == 4
        assert small_graph.score_of("a", "type", "t1") == 99.0

    def test_add_triples_bulk(self):
        kg = KnowledgeGraph()
        n = kg.add_triples([Triple("x", "p", "y"), Triple("y", "p", "z")])
        assert n == 2
        assert kg.size == 2

    def test_add_triples_rejects_non_triples(self):
        kg = KnowledgeGraph()
        with pytest.raises(KnowledgeGraphError):
            kg.add_triples([("x", "p", "y")])  # type: ignore[list-item]

    def test_remove(self, small_graph):
        assert small_graph.remove("a", "likes", "b")
        assert small_graph.size == 3
        assert not small_graph.remove("a", "likes", "b")

    def test_version_increments_on_mutation(self, small_graph):
        before = small_graph.version
        small_graph.add("z", "p", "w")
        assert small_graph.version > before

    def test_constructor_with_triples(self):
        kg = KnowledgeGraph([Triple("a", "p", "b", 2.0)])
        assert ("a", "p", "b") in kg


class TestIntrospection:
    def test_contains_triple_and_tuple(self, small_graph):
        assert Triple("a", "type", "t1") in small_graph
        assert ("a", "type", "t1") in small_graph
        assert ("zz", "type", "t1") not in small_graph
        assert "not-a-triple" not in small_graph

    def test_score_of_missing_raises(self, small_graph):
        with pytest.raises(KnowledgeGraphError):
            small_graph.score_of("no", "such", "triple")

    def test_entities_and_predicates(self, small_graph):
        assert "a" in small_graph.entities()
        assert "t1" in small_graph.entities()
        assert small_graph.predicates() == {"type", "likes"}

    def test_iteration_yields_scored_triples(self, small_graph):
        scores = {t.spo: t.score for t in small_graph}
        assert scores[("a", "type", "t1")] == 10.0


class TestMatching:
    def test_match_by_object(self, small_graph):
        pattern = TriplePattern(var("s"), "type", "t1")
        subjects = {t.subject for t in small_graph.match(pattern)}
        assert subjects == {"a", "b"}

    def test_match_fully_bound(self, small_graph):
        pattern = TriplePattern("a", "type", "t1")
        assert small_graph.count(pattern) == 1

    def test_match_all_variables(self, small_graph):
        pattern = TriplePattern(var("s"), var("p"), var("o"))
        assert small_graph.count(pattern) == 4

    def test_count_empty(self, small_graph):
        assert small_graph.count(TriplePattern(var("s"), "type", "t999")) == 0


class TestMatchList:
    def test_sorted_descending_by_score(self, small_graph):
        ml = small_graph.match_list(TriplePattern(var("s"), "type", "t1"))
        assert [t.subject for t in ml.triples] == ["a", "b"]

    def test_normalization_by_max(self, small_graph):
        ml = small_graph.match_list(TriplePattern(var("s"), "type", "t1"))
        assert ml.max_score == 10.0
        assert ml.normalized_scores == (1.0, 0.5)

    def test_empty_match_list(self, small_graph):
        ml = small_graph.match_list(TriplePattern(var("s"), "type", "none"))
        assert ml.is_empty
        assert ml.max_score == 0.0

    def test_match_list_reflects_mutation(self, small_graph):
        pattern = TriplePattern(var("s"), "type", "t1")
        before = len(small_graph.match_list(pattern))
        small_graph.add("d", "type", "t1", score=20.0)
        after = small_graph.match_list(pattern)
        assert len(after) == before + 1
        assert after.triples[0].subject == "d"  # new max re-sorts

    def test_tie_break_is_deterministic(self):
        kg = KnowledgeGraph()
        kg.add("b", "p", "o", score=5.0)
        kg.add("a", "p", "o", score=5.0)
        ml = kg.match_list(TriplePattern(var("s"), "p", "o"))
        assert [t.subject for t in ml.triples] == ["a", "b"]

    def test_cumulative_scores(self, small_graph):
        ml = small_graph.match_list(TriplePattern(var("s"), "type", "t1"))
        assert ml.cumulative_normalized_scores() == [1.0, 1.5]
        assert ml.total_normalized_score() == 1.5
