"""Unit tests for the sharded columnar substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KnowledgeGraphError
from repro.kg.columnar import ColumnarGraph, ColumnarStore
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import (
    ShardedGraph,
    merge_match_lists,
    partition_rows,
    partition_store,
    subject_shard_ids,
)
from repro.kg.triple import Triple


def small_store() -> ColumnarStore:
    triples = [
        Triple("a", "p", "x", 5.0),
        Triple("a", "p", "y", 3.0),
        Triple("b", "p", "x", 4.0),
        Triple("b", "q", "y", 4.0),
        Triple("c", "p", "z", 1.0),
        Triple("c", "q", "x", 2.0),
        Triple("d", "q", "z", 9.0),
    ]
    return ColumnarStore.from_triples(triples)


VAR_S = Variable("s")
VAR_O = Variable("o")


class TestPartitioning:
    @pytest.mark.parametrize("strategy", ["hash-subject", "score-range"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 11])
    def test_rows_are_a_partition(self, strategy, n_shards):
        store = small_store()
        rows = partition_rows(store, n_shards, strategy)
        assert len(rows) == n_shards
        combined = np.sort(np.concatenate(rows))
        assert combined.tolist() == list(range(store.n_triples))

    def test_hash_subject_colocates_subjects(self):
        store = small_store()
        shards = partition_store(store, 3, "hash-subject")
        for shard in shards:
            decoded = {t.subject for t in shard.iter_triples()}
            for other in shards:
                if other is shard:
                    continue
                assert decoded.isdisjoint(
                    {t.subject for t in other.iter_triples()}
                )

    def test_hash_subject_is_stable_across_stores(self):
        """The assignment depends on the term string, not on term ids."""
        store = small_store()
        # Same triples interned in a different order -> different ids.
        reordered = ColumnarStore.from_triples(
            sorted(store.iter_triples(), key=lambda t: (-t.score, t.spo))
        )
        by_subject = {}
        for shard_id, s in zip(
            subject_shard_ids(store, 4)[:], store.subjects.tolist()
        ):
            by_subject[store.term_list()[s]] = shard_id
        for shard_id, s in zip(
            subject_shard_ids(reordered, 4)[:], reordered.subjects.tolist()
        ):
            assert by_subject[reordered.term_list()[s]] == shard_id

    def test_score_range_orders_shards(self):
        store = small_store()
        shards = partition_store(store, 3, "score-range")
        for hot, cold in zip(shards, shards[1:]):
            if hot.n_triples and cold.n_triples:
                assert hot.scores.min() >= cold.scores.max()

    def test_shards_share_term_dictionary(self):
        store = small_store()
        shards = partition_store(store, 2, "hash-subject")
        for shard in shards:
            assert shard.terms is store.terms
            assert shard.term_list() is store.term_list()

    def test_more_shards_than_rows(self):
        store = small_store()
        shards = partition_store(store, 20, "score-range")
        assert sum(s.n_triples for s in shards) == store.n_triples
        assert any(s.n_triples == 0 for s in shards)

    def test_empty_store(self):
        store = ColumnarStore.from_triples([])
        shards = partition_store(store, 3, "hash-subject")
        assert all(s.n_triples == 0 for s in shards)

    def test_invalid_arguments(self):
        store = small_store()
        with pytest.raises(KnowledgeGraphError):
            partition_rows(store, 0, "hash-subject")
        with pytest.raises(KnowledgeGraphError):
            partition_rows(store, 2, "round-robin")
        with pytest.raises(KnowledgeGraphError):
            ShardedGraph(store, 2, strategy="bogus")


class TestMergeMatchLists:
    @pytest.mark.parametrize("strategy", ["hash-subject", "score-range"])
    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    @pytest.mark.parametrize(
        "pattern",
        [
            TriplePattern(VAR_S, "p", VAR_O),
            TriplePattern(VAR_S, "q", VAR_O),
            TriplePattern(VAR_S, "p", "x"),
            TriplePattern("a", "p", VAR_O),
            TriplePattern(VAR_S, "nope", VAR_O),
        ],
    )
    def test_merged_list_equals_unsharded(self, strategy, n_shards, pattern):
        store = small_store()
        plain = ColumnarGraph(store)
        sharded = ShardedGraph(store, n_shards, strategy=strategy)
        expected = plain.match_list(pattern)
        actual = sharded.match_list(pattern)
        assert actual.triples == expected.triples
        assert actual.max_score == expected.max_score
        assert actual.normalized_scores == expected.normalized_scores

    def test_empty_parts(self):
        key = (None, "p", None)
        from repro.kg.index import MatchList

        merged = merge_match_lists(key, [MatchList(key, (), 0.0, ())] * 3)
        assert merged.is_empty
        assert merged.max_score == 0.0

    def test_single_nonempty_part_reused(self):
        store = small_store()
        graph = ColumnarGraph(store)
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        part = graph.match_list(pattern)
        merged = merge_match_lists(pattern.key(), [part])
        assert merged.triples is part.triples

    def test_repeated_variable_pattern(self):
        triples = [
            Triple("a", "p", "a", 3.0),
            Triple("a", "p", "b", 9.0),
            Triple("b", "p", "b", 2.0),
        ]
        store = ColumnarStore.from_triples(triples)
        pattern = TriplePattern(VAR_S, "p", VAR_S)
        plain = ColumnarGraph(store).match_list(pattern)
        sharded = ShardedGraph(store, 2, strategy="score-range").match_list(pattern)
        assert sharded.triples == plain.triples
        assert [t.subject for t in sharded.triples] == ["a", "b"]


class TestShardedGraph:
    def test_graph_interface(self):
        store = small_store()
        graph = ShardedGraph(store, 3, strategy="hash-subject", name="tiny")
        plain = ColumnarGraph(store)
        assert graph.size == plain.size
        assert graph.entities() == plain.entities()
        assert graph.predicates() == plain.predicates()
        assert ("a", "p", "x") in graph
        assert graph.score_of("d", "q", "z") == 9.0
        assert sum(graph.shard_sizes()) == graph.size
        assert graph.n_shards == 3

    def test_immutable(self):
        graph = ShardedGraph(small_store(), 2)
        with pytest.raises(KnowledgeGraphError):
            graph.add("x", "y", "z")
        with pytest.raises(KnowledgeGraphError):
            graph.remove("a", "p", "x")

    def test_from_object_graph(self):
        from repro.kg.graph import KnowledgeGraph

        kg = KnowledgeGraph(name="obj")
        kg.add("s1", "p", "o1", score=2.0)
        kg.add("s2", "p", "o2", score=4.0)
        graph = ShardedGraph.from_graph(kg, 2, strategy="score-range")
        assert graph.size == 2
        assert graph.name == "obj"
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        assert [t.score for t in graph.match_list(pattern).triples] == [4.0, 2.0]

    def test_shard_leaf_inputs_peek_and_cache(self):
        store = small_store()
        graph = ShardedGraph(store, 2, strategy="score-range")
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        global_max, inputs = graph.shard_leaf_inputs(pattern)
        assert global_max == 5.0
        assert sum(entry.n_matches for entry in inputs) == 4
        # Nothing built yet: peeks only.
        assert all(entry.match_list is None for entry in inputs)
        # Build shard lists (through the merged path), then inputs are warm.
        graph.match_list(pattern)
        _, warm_inputs = graph.shard_leaf_inputs(pattern)
        assert all(
            entry.match_list is not None
            for entry in warm_inputs
            if entry.n_matches
        )

    def test_shard_cache_stats_and_invalidate(self):
        graph = ShardedGraph(small_store(), 2, strategy="hash-subject")
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        graph.match_list(pattern)
        stats = graph.shard_cache_stats()
        assert stats.size > 0
        graph.invalidate_caches()
        assert graph.shard_cache_stats().size == 0

    def test_shard_leaf_inputs_lookup_stats_are_exact(self):
        """The leaf-input probe is one version-aware `get` per shard — a
        cold probe counts one miss per shard and a warm one one hit, with
        no version-blind `__contains__` pre-check skewing the numbers."""
        graph = ShardedGraph(small_store(), 3, strategy="score-range")
        pattern = TriplePattern(VAR_S, "p", VAR_O)

        graph.shard_leaf_inputs(pattern)
        cold = graph.shard_cache_stats()
        assert cold.misses == graph.n_shards
        assert cold.hits == 0

        graph.match_list(pattern)  # builds every shard list through the caches
        graph.shard_leaf_inputs(pattern)
        warm = graph.shard_cache_stats()
        assert warm.hits == graph.n_shards
        assert warm.misses == 2 * graph.n_shards  # cold probe + the builds

    def test_single_shard_degenerates(self):
        store = small_store()
        graph = ShardedGraph(store, 1)
        pattern = TriplePattern(VAR_S, "q", VAR_O)
        plain = ColumnarGraph(store)
        assert graph.match_list(pattern).triples == plain.match_list(pattern).triples
