"""Unit tests for repro.kg.index."""

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.index import MatchList
from repro.kg.pattern import TriplePattern, var
from repro.kg.triple import Triple


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    kg.add("a", "p1", "x", score=4.0)
    kg.add("a", "p2", "y", score=3.0)
    kg.add("b", "p1", "x", score=2.0)
    kg.add("b", "p1", "z", score=1.0)
    return kg


class TestCandidates:
    def test_subject_only(self, graph):
        pattern = TriplePattern("a", var("p"), var("o"))
        assert graph.count(pattern) == 2

    def test_predicate_only(self, graph):
        pattern = TriplePattern(var("s"), "p1", var("o"))
        assert graph.count(pattern) == 3

    def test_subject_object(self, graph):
        pattern = TriplePattern("b", var("p"), "x")
        assert graph.count(pattern) == 1

    def test_full_scan(self, graph):
        pattern = TriplePattern(var("s"), var("p"), var("o"))
        assert graph.count(pattern) == 4

    def test_no_match_shape_cached(self, graph):
        pattern = TriplePattern(var("s"), "p9", var("o"))
        assert graph.count(pattern) == 0
        assert graph.count(pattern) == 0  # second call hits cache


class TestMatchListCaching:
    def test_same_key_shares_cache(self, graph):
        a = graph.match_list(TriplePattern(var("s"), "p1", "x"))
        b = graph.match_list(TriplePattern(var("q"), "p1", "x"))
        assert a is b  # variable names don't matter

    def test_cache_invalidated_on_write(self, graph):
        pattern = TriplePattern(var("s"), "p1", "x")
        before = graph.match_list(pattern)
        graph.add("c", "p1", "x", score=9.0)
        after = graph.match_list(pattern)
        assert after is not before
        assert len(after) == len(before) + 1


class TestRepeatedVariables:
    def test_diagonal_only(self):
        kg = KnowledgeGraph()
        kg.add("a", "knows", "a", score=2.0)
        kg.add("a", "knows", "b", score=5.0)
        ml = kg.match_list(TriplePattern(var("x"), "knows", var("x")))
        assert [t.spo for t in ml.triples] == [("a", "knows", "a")]


class TestMatchListFromTriples:
    def test_orders_and_normalizes(self):
        ml = MatchList.from_triples(
            (None, "p", None),
            [Triple("a", "p", "b", 2.0), Triple("c", "p", "d", 8.0)],
        )
        assert ml.max_score == 8.0
        assert ml.normalized_scores == (1.0, 0.25)
        assert ml.normalized(0) == 1.0

    def test_empty(self):
        ml = MatchList.from_triples((None, "p", None), [])
        assert not ml
        assert ml.total_normalized_score() == 0.0

    def test_all_zero_scores(self):
        ml = MatchList.from_triples(
            (None, "p", None), [Triple("a", "p", "b", 0.0)]
        )
        assert ml.normalized_scores == (0.0,)
