"""Unit tests for the delta-overlay live graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KnowledgeGraphError
from repro.kg.columnar import ColumnarGraph, ColumnarStore
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import ShardedGraph, shard_of_subject
from repro.kg.triple import Triple

VAR_S = Variable("s")
VAR_O = Variable("o")
P_OPEN = TriplePattern(VAR_S, "p", VAR_O)


def base_triples() -> list[Triple]:
    return [
        Triple("a", "p", "x", 5.0),
        Triple("a", "p", "y", 3.0),
        Triple("b", "p", "x", 4.0),
        Triple("b", "q", "y", 4.0),
        Triple("c", "p", "z", 1.0),
        Triple("d", "q", "z", 9.0),
    ]


def columnar_base() -> ColumnarGraph:
    return ColumnarGraph.from_triples(base_triples(), name="base")


class TestGraphUpdate:
    def test_constructors_and_accessors(self):
        add = GraphUpdate.add("s", "p", "o", 2.0)
        assert add.op == "+" and add.spo == ("s", "p", "o")
        assert add.triple() == Triple("s", "p", "o", 2.0)
        remove = GraphUpdate.remove("s", "p", "o")
        assert remove.op == "-"
        with pytest.raises(KnowledgeGraphError):
            remove.triple()

    def test_bad_op_rejected(self):
        with pytest.raises(KnowledgeGraphError):
            GraphUpdate("~", "s", "p", "o")

    def test_non_finite_scores_rejected(self):
        """The programmatic path matches the TSV parser: a non-finite
        score would poison normalised lists and snapshot validation."""
        for bad in (float("inf"), float("-inf"), float("nan")):
            with pytest.raises(KnowledgeGraphError):
                GraphUpdate.add("s", "p", "o", bad)
        GraphUpdate.remove("s", "p", "o")  # removes never carry a score


class TestLiveGraphSemantics:
    def test_wraps_any_base_and_reads_through(self):
        live = LiveGraph(columnar_base())
        assert live.size == 6
        assert ("a", "p", "x") in live
        assert live.score_of("d", "q", "z") == 9.0
        assert live.delta_size == 0

    def test_add_new_triple(self):
        live = LiveGraph(columnar_base())
        live.add("e", "p", "w", score=7.0)
        assert live.size == 7
        assert live.score_of("e", "p", "w") == 7.0
        assert ("e", "p", "w") in live

    def test_overwrite_keeps_size(self):
        live = LiveGraph(columnar_base())
        live.add("a", "p", "x", score=50.0)
        assert live.size == 6
        assert live.score_of("a", "p", "x") == 50.0

    def test_remove_base_triple_tombstones(self):
        live = LiveGraph(columnar_base())
        assert live.remove("a", "p", "x") is True
        assert live.size == 5
        assert ("a", "p", "x") not in live
        with pytest.raises(KnowledgeGraphError):
            live.score_of("a", "p", "x")
        # Removing again is a no-op.
        assert live.remove("a", "p", "x") is False

    def test_remove_then_readd(self):
        live = LiveGraph(columnar_base())
        live.remove("a", "p", "x")
        live.add("a", "p", "x", score=2.0)
        assert live.size == 6
        assert live.score_of("a", "p", "x") == 2.0

    def test_remove_delta_only_triple(self):
        live = LiveGraph(columnar_base())
        live.add("e", "p", "w", score=7.0)
        assert live.remove("e", "p", "w") is True
        assert live.size == 6
        assert live.remove("never", "was", "there") is False

    def test_version_monotone_per_mutation(self):
        live = LiveGraph(columnar_base())
        versions = [live.version]
        live.add("e", "p", "w")
        versions.append(live.version)
        live.remove("a", "p", "x")
        versions.append(live.version)
        live.add_triples([Triple("f", "p", "w", 1.0), Triple("g", "p", "w", 2.0)])
        versions.append(live.version)
        assert versions == sorted(set(versions))

    def test_apply_updates_counts_and_single_version_bump(self):
        live = LiveGraph(columnar_base())
        before = live.version
        counts = live.apply_updates(
            [
                GraphUpdate.add("e", "p", "w", 7.0),
                GraphUpdate.add("a", "p", "x", 2.0),  # overwrite
                GraphUpdate.remove("b", "q", "y"),
                GraphUpdate.remove("no", "such", "row"),
            ]
        )
        assert counts == {"adds": 2, "removes": 1, "absent_removes": 1}
        assert live.version == before + 1

    def test_midstream_failure_still_bumps_version(self):
        """Updates applied before an iterator failure must invalidate:
        a stale version would pin every cache to the pre-mutation view."""
        live = LiveGraph(columnar_base())
        live.match_list(P_OPEN)
        before = live.version

        def updates():
            yield GraphUpdate.add("landed", "p", "x", 7.0)
            raise KnowledgeGraphError("malformed line mid-stream")

        with pytest.raises(KnowledgeGraphError):
            live.apply_updates(updates())
        assert ("landed", "p", "x") in live
        assert live.version > before
        assert any(t.spo == ("landed", "p", "x") for t in live.match_list(P_OPEN).triples)

        def triples():
            yield Triple("landed2", "p", "x", 8.0)
            raise KnowledgeGraphError("boom")

        before = live.version
        with pytest.raises(KnowledgeGraphError):
            live.add_triples(triples())
        assert live.version > before
        assert ("landed2", "p", "x") in live

    def test_threshold_bounds_delta_within_one_batch(self):
        """compact_threshold is enforced per update, so one huge streamed
        batch cannot grow the delta past the bound."""
        live = LiveGraph(columnar_base(), compact_threshold=3)
        live.apply_updates(
            GraphUpdate.add(f"n{i}", "p", "w", float(i + 1)) for i in range(10)
        )
        assert live.compactions == 3
        assert live.delta_size < 3
        assert live.size == 16

    def test_triples_entities_predicates(self):
        live = LiveGraph(columnar_base())
        live.add("e", "r", "w", score=7.0)
        live.remove("d", "q", "z")
        spos = {t.spo for t in live.triples()}
        assert ("e", "r", "w") in spos and ("d", "q", "z") not in spos
        assert len(spos) == live.size
        assert "e" in live.entities() and "w" in live.entities()
        assert live.predicates() == {"p", "q", "r"}
        # Tombstoning the only q-subject 'd' keeps q alive via b.
        live.remove("b", "q", "y")
        assert live.predicates() == {"p", "r"}

    def test_thaw_matches_live_view(self):
        live = LiveGraph(columnar_base())
        live.apply_updates(
            [GraphUpdate.add("e", "p", "w", 7.0), GraphUpdate.remove("a", "p", "y")]
        )
        thawed = live.thaw()
        assert {t.spo for t in thawed.triples()} == {t.spo for t in live.triples()}

    def test_match_and_count_see_overlay(self):
        live = LiveGraph(columnar_base())
        live.add("e", "p", "x", score=8.0)
        live.remove("a", "p", "x")
        pattern = TriplePattern(VAR_S, "p", "x")
        assert live.count(pattern) == 2
        assert {t.subject for t in live.match(pattern)} == {"b", "e"}

    def test_stacking_overlays_rejected(self):
        live = LiveGraph(columnar_base())
        with pytest.raises(KnowledgeGraphError):
            LiveGraph(live)

    def test_bad_threshold_rejected(self):
        with pytest.raises(KnowledgeGraphError):
            LiveGraph(columnar_base(), compact_threshold=0)


class TestLiveMatchLists:
    def rebuilt(self, live: LiveGraph) -> KnowledgeGraph:
        return KnowledgeGraph(live.triples(), name="rebuilt")

    @pytest.mark.parametrize(
        "pattern",
        [
            P_OPEN,
            TriplePattern(VAR_S, "p", "x"),
            TriplePattern("a", "p", VAR_O),
            TriplePattern(VAR_S, "nope", VAR_O),
        ],
    )
    def test_overlay_list_equals_rebuild(self, pattern):
        live = LiveGraph(columnar_base())
        live.apply_updates(
            [
                GraphUpdate.add("e", "p", "x", 8.0),
                GraphUpdate.add("a", "p", "x", 2.0),
                GraphUpdate.remove("b", "p", "x"),
            ]
        )
        expected = self.rebuilt(live).match_list(pattern)
        actual = live.match_list(pattern)
        assert actual.triples == expected.triples
        assert actual.max_score == expected.max_score
        assert actual.normalized_scores == expected.normalized_scores

    def test_delta_can_raise_the_normaliser(self):
        live = LiveGraph(columnar_base())
        live.add("hot", "p", "x", score=100.0)
        match_list = live.match_list(P_OPEN)
        assert match_list.max_score == 100.0
        assert match_list.normalized_scores[0] == 1.0

    def test_tombstoning_the_maximum_renormalises(self):
        live = LiveGraph(columnar_base())
        live.remove("a", "p", "x")  # was the p-max (5.0)
        match_list = live.match_list(P_OPEN)
        assert match_list.max_score == 4.0
        expected = self.rebuilt(live).match_list(P_OPEN)
        assert match_list.normalized_scores == expected.normalized_scores

    def test_repeated_variable_pattern(self):
        base = ColumnarGraph.from_triples(
            [Triple("a", "p", "a", 3.0), Triple("a", "p", "b", 9.0)]
        )
        live = LiveGraph(base)
        live.add("c", "p", "c", score=5.0)
        live.add("c", "p", "d", score=8.0)
        diagonal = TriplePattern(VAR_S, "p", VAR_S)
        assert [t.subject for t in live.match_list(diagonal).triples] == ["c", "a"]


class TestVersionedInvalidation:
    def test_external_cache_sees_live_versions(self):
        from repro.service.cache import MatchListCache

        live = LiveGraph(columnar_base())
        cache = MatchListCache(capacity=16)
        live.attach_match_list_cache(cache)
        live.match_list(P_OPEN)
        assert cache.stats().misses == 1
        live.match_list(P_OPEN)
        assert cache.stats().hits == 1
        live.add("e", "p", "w", score=2.0)
        rebuilt = live.match_list(P_OPEN)
        assert cache.stats().misses == 2  # version moved, entry was stale
        assert any(t.spo == ("e", "p", "w") for t in rebuilt.triples)

    def test_compaction_bumps_version_and_invalidates(self):
        from repro.service.cache import MatchListCache

        live = LiveGraph(columnar_base())
        cache = MatchListCache(capacity=16)
        live.attach_match_list_cache(cache)
        live.add("e", "p", "w", score=2.0)
        live.match_list(P_OPEN)
        version = live.version
        live.compact()
        assert live.version > version
        live.match_list(P_OPEN)
        assert cache.stats().invalidations >= 1


class TestCompaction:
    def test_compact_columnar_base(self):
        live = LiveGraph(columnar_base())
        live.apply_updates(
            [
                GraphUpdate.add("e", "p", "x", 8.0),
                GraphUpdate.add("a", "p", "x", 2.0),
                GraphUpdate.remove("b", "q", "y"),
            ]
        )
        expected = sorted((t.spo, t.score) for t in live.triples())
        folded = live.compact()
        assert folded == 3  # 2 delta adds (one an overwrite) + 1 tombstone
        assert live.delta_size == 0
        assert isinstance(live.base, ColumnarGraph)
        live.base.store.validate()
        assert sorted((t.spo, t.score) for t in live.triples()) == expected

    def test_compact_empty_delta_is_noop(self):
        live = LiveGraph(columnar_base())
        version = live.version
        assert live.compact() == 0
        assert live.version == version

    def test_compact_object_base(self):
        live = LiveGraph(KnowledgeGraph(base_triples(), name="obj"))
        live.add("e", "p", "w", score=2.0)
        live.remove("a", "p", "x")
        expected = sorted((t.spo, t.score) for t in live.triples())
        live.compact()
        assert isinstance(live.base, KnowledgeGraph)
        assert sorted((t.spo, t.score) for t in live.triples()) == expected

    def test_compact_sharded_base_rebins(self):
        base = ShardedGraph(
            ColumnarStore.from_triples(base_triples()), 2, strategy="score-range"
        )
        live = LiveGraph(base)
        live.add("hot", "p", "w", score=100.0)
        live.compact()
        assert isinstance(live.base, ShardedGraph)
        assert live.base.strategy == "score-range"
        assert live.base.n_shards == 2
        # Re-binning: the new hottest triple lands in shard 0.
        assert any(
            t.spo == ("hot", "p", "w") for t in live.base.shards[0].triples()
        )

    def test_auto_compaction_threshold(self):
        live = LiveGraph(columnar_base(), compact_threshold=3)
        live.add("e1", "p", "w", score=1.0)
        live.add("e2", "p", "w", score=2.0)
        assert live.compactions == 0
        live.add("e3", "p", "w", score=3.0)
        assert live.compactions == 1
        assert live.delta_size == 0
        assert live.size == 9

    def test_monotone_version_across_many_compactions(self):
        live = LiveGraph(columnar_base(), compact_threshold=2)
        seen = [live.version]
        for i in range(6):
            live.add(f"n{i}", "p", "w", score=float(i + 1))
            seen.append(live.version)
        assert seen == sorted(set(seen))
        assert live.compactions == 3


class TestShardRouting:
    def test_hash_subject_routing_matches_rebuild(self):
        base = ShardedGraph(
            ColumnarStore.from_triples(base_triples()), 3, strategy="hash-subject"
        )
        live = LiveGraph(base)
        live.add("zebra", "p", "w", score=2.0)
        expected = shard_of_subject("zebra", 3)
        assert live._delta_shard[("zebra", "p", "w")] == expected
        live.compact()
        assert any(
            t.subject == "zebra" for t in live.base.shards[expected].triples()
        )

    def test_score_range_routing_prefers_hot_shard(self):
        base = ShardedGraph(
            ColumnarStore.from_triples(base_triples()), 2, strategy="score-range"
        )
        live = LiveGraph(base)
        live.add("hot", "p", "w", score=50.0)
        live.add("cold", "p", "w", score=0.5)
        assert live._delta_shard[("hot", "p", "w")] == 0
        assert live._delta_shard[("cold", "p", "w")] == 1

    def test_overwrite_reroutes_across_score_bins(self):
        base = ShardedGraph(
            ColumnarStore.from_triples(base_triples()), 2, strategy="score-range"
        )
        live = LiveGraph(base)
        live.add("m", "p", "w", score=0.5)
        assert live._delta_shard[("m", "p", "w")] == 1
        live.add("m", "p", "w", score=50.0)
        assert live._delta_shard[("m", "p", "w")] == 0
        assert live._shard_adds[1].size == 0

    def test_sharded_leaf_inputs_exact_normaliser(self):
        base = ShardedGraph(
            ColumnarStore.from_triples(base_triples()), 2, strategy="score-range"
        )
        live = LiveGraph(base)
        live.remove("a", "p", "x")  # tombstone the p-maximum
        live.add("e", "p", "w", score=4.5)
        global_max, inputs = live.shard_leaf_inputs(P_OPEN)
        assert global_max == live.match_list(P_OPEN).max_score == 4.5
        assert sum(entry.n_matches for entry in inputs) == len(
            live.match_list(P_OPEN)
        )

    def test_shard_delegation_helpers(self):
        sharded = LiveGraph(
            ShardedGraph(ColumnarStore.from_triples(base_triples()), 2)
        )
        assert sum(sharded.shard_sizes()) == 6
        assert sharded.shard_cache_stats().capacity > 0
        plain = LiveGraph(columnar_base())
        with pytest.raises(KnowledgeGraphError):
            plain.shard_sizes()
        # Only sharded bases expose lazy leaf inputs (build_leaf_scan probes).
        assert not hasattr(plain, "shard_leaf_inputs")


class TestDrainTouched:
    def test_journal_accumulates_and_drains(self):
        live = LiveGraph(columnar_base())
        live.add("e", "p", "w", score=1.0)
        live.remove("a", "p", "x")
        touched = live.drain_touched()
        assert touched == {("e", "p", "w"), ("a", "p", "x")}
        assert live.drain_touched() == frozenset()

    def test_journal_survives_compaction(self):
        live = LiveGraph(columnar_base(), compact_threshold=1)
        live.add("e", "p", "w", score=1.0)  # triggers auto-compact
        assert live.compactions == 1
        assert ("e", "p", "w") in live.drain_touched()

    def test_journal_overflow_collapses_to_everything(self, monkeypatch):
        """Past the bound the journal reports None ('everything touched')
        instead of growing without limit, and recovers after a drain."""
        from repro.kg import delta as delta_module

        monkeypatch.setattr(delta_module, "MAX_TOUCHED_JOURNAL", 4)
        live = LiveGraph(columnar_base(), compact_threshold=3)
        for i in range(8):
            live.add(f"n{i}", "p", "w", score=float(i + 1))
        assert live.drain_touched() is None
        live.add("after", "p", "w", score=1.0)
        assert live.drain_touched() == {("after", "p", "w")}

    def test_catalog_refresh_handles_overflow(self, monkeypatch):
        from repro.kg import delta as delta_module
        from repro.stats.catalog import StatisticsCatalog

        monkeypatch.setattr(delta_module, "MAX_TOUCHED_JOURNAL", 2)
        live = LiveGraph(columnar_base())
        catalog = StatisticsCatalog(live)
        catalog.pattern_stats(P_OPEN)
        for i in range(5):
            live.add(f"n{i}", "q", "w", score=float(i + 1))
        summary = catalog.refresh()
        assert summary == {"dropped": 1, "kept": 0}  # full invalidation
        assert catalog.match_count(P_OPEN) == live.count(P_OPEN)


class TestColumnarStoreUpdates:
    def test_with_updates_drops_overwrites_and_appends(self):
        store = ColumnarStore.from_triples(base_triples())
        new = store.with_updates(
            {("a", "p", "x"): 2.0, ("new", "p", "w"): 7.0},
            {("b", "q", "y")},
        )
        new.validate()
        decoded = {t.spo: t.score for t in new.iter_triples()}
        assert decoded[("a", "p", "x")] == 2.0
        assert decoded[("new", "p", "w")] == 7.0
        assert ("b", "q", "y") not in decoded
        assert len(decoded) == 6

    def test_with_updates_noop(self):
        store = ColumnarStore.from_triples(base_triples())
        assert store.with_updates({}, frozenset()) is store

    def test_with_updates_rejects_nul_terms(self):
        store = ColumnarStore.from_triples(base_triples())
        with pytest.raises(KnowledgeGraphError):
            store.with_updates({("bad\x00", "p", "o"): 1.0}, frozenset())

    def test_exclude_keys(self):
        store = ColumnarStore.from_triples(base_triples())
        rows = np.arange(store.n_triples, dtype=np.int64)
        kept = store.exclude_keys(rows, {("a", "p", "x"), ("ghost", "p", "x")})
        assert len(kept) == store.n_triples - 1
        decoded = {t.spo for t in store.iter_triples()}
        surviving = {t.spo for t in store.decode_rows(kept)}
        assert decoded - surviving == {("a", "p", "x")}
