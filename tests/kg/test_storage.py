"""Unit tests for repro.kg.storage."""

import pytest

from repro.errors import KnowledgeGraphError
from repro.kg import storage
from repro.kg.graph import KnowledgeGraph


@pytest.fixture
def graph():
    return storage.from_tuples(
        [
            ("a", "type", "t1", 10.0),
            ("b", "type", "t1", 5.0),
            ("c", "likes", "a", 2.5),
        ]
    )


class TestTSVRoundTrip:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.tsv"
        written = storage.save_tsv(graph, path)
        assert written == 3
        loaded = storage.load_tsv(path)
        assert loaded.size == 3
        assert loaded.score_of("a", "type", "t1") == 10.0

    def test_gzip_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.tsv.gz"
        storage.save_tsv(graph, path)
        loaded = storage.load_tsv(path)
        assert loaded.size == 3

    def test_three_column_defaults_score(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\tb\n")
        loaded = storage.load_tsv(path)
        assert loaded.score_of("a", "p", "b") == 1.0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("# header\n\na\tp\tb\t2\n")
        assert storage.load_tsv(path).size == 1

    def test_bad_column_count_raises(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_tsv(path)

    def test_bad_score_raises(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\tb\tnot-a-number\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_tsv(path)


class TestNTriples:
    def test_round_trip_drops_scores(self, graph, tmp_path):
        path = tmp_path / "kg.nt"
        storage.save_ntriples(graph, path)
        loaded = storage.load_ntriples(path)
        assert loaded.size == 3
        assert loaded.score_of("a", "type", "t1") == 1.0

    def test_missing_dot_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("<a> <p> <b>\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)

    def test_unangled_term_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("a <p> <b> .\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)

    def test_wrong_arity_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("<a> <p> .\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)


class TestFromTuples:
    def test_mixed_arity(self):
        kg = storage.from_tuples([("a", "p", "b"), ("c", "p", "d", 3.0)])
        assert kg.score_of("a", "p", "b") == 1.0
        assert kg.score_of("c", "p", "d") == 3.0

    def test_bad_arity_raises(self):
        with pytest.raises(KnowledgeGraphError):
            storage.from_tuples([("a", "p")])  # type: ignore[list-item]
