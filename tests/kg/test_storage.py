"""Unit tests for repro.kg.storage."""

import pytest

from repro.errors import KnowledgeGraphError
from repro.kg import storage
from repro.kg.graph import KnowledgeGraph


@pytest.fixture
def graph():
    return storage.from_tuples(
        [
            ("a", "type", "t1", 10.0),
            ("b", "type", "t1", 5.0),
            ("c", "likes", "a", 2.5),
        ]
    )


class TestTSVRoundTrip:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.tsv"
        written = storage.save_tsv(graph, path)
        assert written == 3
        loaded = storage.load_tsv(path)
        assert loaded.size == 3
        assert loaded.score_of("a", "type", "t1") == 10.0

    def test_gzip_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.tsv.gz"
        storage.save_tsv(graph, path)
        loaded = storage.load_tsv(path)
        assert loaded.size == 3

    def test_three_column_defaults_score(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\tb\n")
        loaded = storage.load_tsv(path)
        assert loaded.score_of("a", "p", "b") == 1.0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("# header\n\na\tp\tb\t2\n")
        assert storage.load_tsv(path).size == 1

    def test_bad_column_count_raises(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_tsv(path)

    def test_bad_score_raises(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\tb\tnot-a-number\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_tsv(path)

    @pytest.mark.parametrize("raw", ["nan", "NaN", "inf", "-inf", "Infinity"])
    def test_non_finite_score_rejected_with_line(self, tmp_path, raw):
        path = tmp_path / "kg.tsv"
        path.write_text(f"a\tp\tb\t1\nc\tp\td\t{raw}\n")
        with pytest.raises(KnowledgeGraphError, match=r":2: non-finite score"):
            storage.load_tsv(path)


class TestNTriples:
    def test_round_trip_drops_scores(self, graph, tmp_path):
        path = tmp_path / "kg.nt"
        storage.save_ntriples(graph, path)
        loaded = storage.load_ntriples(path)
        assert loaded.size == 3
        assert loaded.score_of("a", "type", "t1") == 1.0

    def test_missing_dot_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("<a> <p> <b>\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)

    def test_unangled_term_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("a <p> <b> .\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)

    def test_wrong_arity_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("<a> <p> .\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)


class TestSnapshots:
    def test_round_trip_is_columnar(self, graph, tmp_path):
        path = tmp_path / "kg.npz"
        written = storage.save_snapshot(graph, path)
        assert written == 3
        loaded = storage.load_snapshot(path)
        from repro.kg import ColumnarGraph

        assert isinstance(loaded, ColumnarGraph)
        assert set(loaded.triples()) == set(graph.triples())
        assert loaded.score_of("a", "type", "t1") == 10.0

    def test_mutable_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.npz"
        storage.save_snapshot(graph, path)
        loaded = storage.load_snapshot(path, mutable=True)
        assert type(loaded) is KnowledgeGraph
        loaded.add("x", "y", "z")
        assert loaded.size == 4

    def test_name_stored_and_overridable(self, graph, tmp_path):
        path = tmp_path / "kg.npz"
        graph.name = "the-graph"
        storage.save_snapshot(graph, path)
        assert storage.load_snapshot(path).name == "the-graph"
        assert storage.load_snapshot(path, name="other").name == "other"

    def test_columnar_graph_saved_without_reinterning(self, graph, tmp_path):
        from repro.kg import ColumnarGraph

        columnar = ColumnarGraph.from_graph(graph)
        path = tmp_path / "kg.npz"
        assert storage.save_snapshot(columnar, path) == 3
        assert set(storage.load_snapshot(path).triples()) == set(graph.triples())

    def test_not_a_zip_raises(self, tmp_path):
        path = tmp_path / "kg.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(KnowledgeGraphError, match="cannot read snapshot"):
            storage.load_snapshot(path)

    def test_npz_without_header_raises(self, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        with open(path, "wb") as handle:
            np.savez(handle, unrelated=np.array([1, 2, 3]))
        with pytest.raises(KnowledgeGraphError, match="not a knowledge-graph snapshot"):
            storage.load_snapshot(path)

    def test_wrong_magic_raises(self, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                format=np.array("someone-elses-format"),
                version=np.array(1),
                name=np.array("kg"),
                terms=np.empty(0, dtype="<U1"),
                subjects=np.empty(0, dtype=np.int32),
                predicates=np.empty(0, dtype=np.int32),
                objects=np.empty(0, dtype=np.int32),
                scores=np.empty(0),
            )
        with pytest.raises(KnowledgeGraphError, match="bad snapshot magic"):
            storage.load_snapshot(path)

    def test_future_version_raises(self, graph, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        storage.save_snapshot(graph, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = dict(data.items())
        arrays["version"] = np.array(storage.SNAPSHOT_VERSION + 1)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(KnowledgeGraphError, match="version"):
            storage.load_snapshot(path)

    def test_corrupt_columns_raise(self, graph, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        storage.save_snapshot(graph, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = dict(data.items())
        arrays["scores"] = np.full_like(arrays["scores"], np.nan)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(KnowledgeGraphError, match="corrupt snapshot"):
            storage.load_snapshot(path)

    def test_tsv_and_snapshot_agree(self, graph, tmp_path):
        tsv_path = tmp_path / "kg.tsv"
        npz_path = tmp_path / "kg.npz"
        storage.save_tsv(graph, tsv_path)
        storage.save_snapshot(graph, npz_path)
        from_tsv = storage.load_tsv(tsv_path)
        from_npz = storage.load_snapshot(npz_path)
        assert set(from_tsv.triples()) == set(from_npz.triples())
        round_trip = tmp_path / "round.tsv"
        storage.save_tsv(from_npz, round_trip)
        assert round_trip.read_bytes() == tsv_path.read_bytes()


class TestFromTuples:
    def test_mixed_arity(self):
        kg = storage.from_tuples([("a", "p", "b"), ("c", "p", "d", 3.0)])
        assert kg.score_of("a", "p", "b") == 1.0
        assert kg.score_of("c", "p", "d") == 3.0

    def test_bad_arity_raises(self):
        with pytest.raises(KnowledgeGraphError):
            storage.from_tuples([("a", "p")])  # type: ignore[list-item]


class TestSnapshotSaveValidation:
    def test_nan_score_rejected_at_save_time(self, tmp_path):
        # Triple's `score < 0` check lets NaN through; the snapshot
        # writer must refuse rather than produce an unloadable file.
        kg = KnowledgeGraph()
        kg.add("a", "p", "b", score=float("nan"))
        with pytest.raises(KnowledgeGraphError, match="finite"):
            storage.save_snapshot(kg, tmp_path / "kg.npz")
        assert not (tmp_path / "kg.npz").exists()  # validation precedes writing

    def test_save_tsv_ignores_unrelated_store_attribute(self, graph, tmp_path):
        graph.store = object()  # duck-typed attr that is not a ColumnarStore
        path = tmp_path / "kg.tsv"
        assert storage.save_tsv(graph, path) == 3
        assert storage.load_tsv(path).size == 3


class TestUpdateTSV:
    def write(self, tmp_path, text):
        path = tmp_path / "edits.tsv"
        path.write_text(text)
        return path

    def test_iter_update_tsv_parses_ops(self, tmp_path):
        path = self.write(
            tmp_path,
            "# comment\n\n+\ts\tp\to\t2.5\n-\ts\tp\to\n+\tx\ty\tz\n",
        )
        updates = list(storage.iter_update_tsv(path))
        assert [u.op for u in updates] == ["+", "-", "+"]
        assert updates[0].triple().score == 2.5
        assert updates[1].spo == ("s", "p", "o")
        assert updates[2].score == 1.0  # optional score defaults

    def test_gzip_round_trip(self, tmp_path):
        import gzip

        path = tmp_path / "edits.tsv.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("+\ts\tp\to\t3\n")
        (update,) = storage.iter_update_tsv(path)
        assert update.spo == ("s", "p", "o")
        assert update.triple().score == 3.0

    @pytest.mark.parametrize(
        "line, message",
        [
            ("*\ts\tp\to", "update op"),
            ("+\ts\tp", "4 or 5"),
            ("+\ts\tp\to\tbad", "bad score"),
            ("+\ts\tp\to\tinf", "non-finite"),
            ("-\ts\tp\to\textra", "4 tab-separated"),
            ("-\ts\tp", "4 tab-separated"),
        ],
    )
    def test_malformed_lines_rejected_with_line_number(self, tmp_path, line, message):
        path = self.write(tmp_path, f"+\tok\tok\tok\n{line}\n")
        with pytest.raises(KnowledgeGraphError) as excinfo:
            list(storage.iter_update_tsv(path))
        assert message in str(excinfo.value)
        assert ":2:" in str(excinfo.value)
