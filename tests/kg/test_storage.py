"""Unit tests for repro.kg.storage."""

import pytest

from repro.errors import KnowledgeGraphError
from repro.kg import storage
from repro.kg.graph import KnowledgeGraph


@pytest.fixture
def graph():
    return storage.from_tuples(
        [
            ("a", "type", "t1", 10.0),
            ("b", "type", "t1", 5.0),
            ("c", "likes", "a", 2.5),
        ]
    )


class TestTSVRoundTrip:
    def test_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.tsv"
        written = storage.save_tsv(graph, path)
        assert written == 3
        loaded = storage.load_tsv(path)
        assert loaded.size == 3
        assert loaded.score_of("a", "type", "t1") == 10.0

    def test_gzip_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.tsv.gz"
        storage.save_tsv(graph, path)
        loaded = storage.load_tsv(path)
        assert loaded.size == 3

    def test_three_column_defaults_score(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\tb\n")
        loaded = storage.load_tsv(path)
        assert loaded.score_of("a", "p", "b") == 1.0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("# header\n\na\tp\tb\t2\n")
        assert storage.load_tsv(path).size == 1

    def test_bad_column_count_raises(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_tsv(path)

    def test_bad_score_raises(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("a\tp\tb\tnot-a-number\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_tsv(path)

    @pytest.mark.parametrize("raw", ["nan", "NaN", "inf", "-inf", "Infinity"])
    def test_non_finite_score_rejected_with_line(self, tmp_path, raw):
        path = tmp_path / "kg.tsv"
        path.write_text(f"a\tp\tb\t1\nc\tp\td\t{raw}\n")
        with pytest.raises(KnowledgeGraphError, match=r":2: non-finite score"):
            storage.load_tsv(path)


class TestNTriples:
    def test_round_trip_drops_scores(self, graph, tmp_path):
        path = tmp_path / "kg.nt"
        storage.save_ntriples(graph, path)
        loaded = storage.load_ntriples(path)
        assert loaded.size == 3
        assert loaded.score_of("a", "type", "t1") == 1.0

    def test_missing_dot_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("<a> <p> <b>\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)

    def test_unangled_term_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("a <p> <b> .\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)

    def test_wrong_arity_raises(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text("<a> <p> .\n")
        with pytest.raises(KnowledgeGraphError):
            storage.load_ntriples(path)


class TestSnapshots:
    def test_round_trip_is_columnar(self, graph, tmp_path):
        path = tmp_path / "kg.npz"
        written = storage.save_snapshot(graph, path)
        assert written == 3
        loaded = storage.load_snapshot(path)
        from repro.kg import ColumnarGraph

        assert isinstance(loaded, ColumnarGraph)
        assert set(loaded.triples()) == set(graph.triples())
        assert loaded.score_of("a", "type", "t1") == 10.0

    def test_mutable_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.npz"
        storage.save_snapshot(graph, path)
        loaded = storage.load_snapshot(path, mutable=True)
        assert type(loaded) is KnowledgeGraph
        loaded.add("x", "y", "z")
        assert loaded.size == 4

    def test_name_stored_and_overridable(self, graph, tmp_path):
        path = tmp_path / "kg.npz"
        graph.name = "the-graph"
        storage.save_snapshot(graph, path)
        assert storage.load_snapshot(path).name == "the-graph"
        assert storage.load_snapshot(path, name="other").name == "other"

    def test_columnar_graph_saved_without_reinterning(self, graph, tmp_path):
        from repro.kg import ColumnarGraph

        columnar = ColumnarGraph.from_graph(graph)
        path = tmp_path / "kg.npz"
        assert storage.save_snapshot(columnar, path) == 3
        assert set(storage.load_snapshot(path).triples()) == set(graph.triples())

    def test_not_a_zip_raises(self, tmp_path):
        path = tmp_path / "kg.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(KnowledgeGraphError, match="cannot read snapshot"):
            storage.load_snapshot(path)

    def test_npz_without_header_raises(self, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        with open(path, "wb") as handle:
            np.savez(handle, unrelated=np.array([1, 2, 3]))
        with pytest.raises(KnowledgeGraphError, match="not a knowledge-graph snapshot"):
            storage.load_snapshot(path)

    def test_wrong_magic_raises(self, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                format=np.array("someone-elses-format"),
                version=np.array(1),
                name=np.array("kg"),
                terms=np.empty(0, dtype="<U1"),
                subjects=np.empty(0, dtype=np.int32),
                predicates=np.empty(0, dtype=np.int32),
                objects=np.empty(0, dtype=np.int32),
                scores=np.empty(0),
            )
        with pytest.raises(KnowledgeGraphError, match="bad snapshot magic"):
            storage.load_snapshot(path)

    def test_future_version_raises(self, graph, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        storage.save_snapshot(graph, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = dict(data.items())
        arrays["version"] = np.array(storage.SNAPSHOT_VERSION + 1)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(KnowledgeGraphError, match="version"):
            storage.load_snapshot(path)

    def test_corrupt_columns_raise(self, graph, tmp_path):
        import numpy as np

        path = tmp_path / "kg.npz"
        storage.save_snapshot(graph, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = dict(data.items())
        arrays["scores"] = np.full_like(arrays["scores"], np.nan)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(KnowledgeGraphError, match="corrupt snapshot"):
            storage.load_snapshot(path)

    def test_tsv_and_snapshot_agree(self, graph, tmp_path):
        tsv_path = tmp_path / "kg.tsv"
        npz_path = tmp_path / "kg.npz"
        storage.save_tsv(graph, tsv_path)
        storage.save_snapshot(graph, npz_path)
        from_tsv = storage.load_tsv(tsv_path)
        from_npz = storage.load_snapshot(npz_path)
        assert set(from_tsv.triples()) == set(from_npz.triples())
        round_trip = tmp_path / "round.tsv"
        storage.save_tsv(from_npz, round_trip)
        assert round_trip.read_bytes() == tsv_path.read_bytes()


class TestFromTuples:
    def test_mixed_arity(self):
        kg = storage.from_tuples([("a", "p", "b"), ("c", "p", "d", 3.0)])
        assert kg.score_of("a", "p", "b") == 1.0
        assert kg.score_of("c", "p", "d") == 3.0

    def test_bad_arity_raises(self):
        with pytest.raises(KnowledgeGraphError):
            storage.from_tuples([("a", "p")])  # type: ignore[list-item]


class TestSnapshotSaveValidation:
    def test_nan_score_rejected_at_save_time(self, tmp_path):
        # Triple's `score < 0` check lets NaN through; the snapshot
        # writer must refuse rather than produce an unloadable file.
        kg = KnowledgeGraph()
        kg.add("a", "p", "b", score=float("nan"))
        with pytest.raises(KnowledgeGraphError, match="finite"):
            storage.save_snapshot(kg, tmp_path / "kg.npz")
        assert not (tmp_path / "kg.npz").exists()  # validation precedes writing

    def test_save_tsv_ignores_unrelated_store_attribute(self, graph, tmp_path):
        graph.store = object()  # duck-typed attr that is not a ColumnarStore
        path = tmp_path / "kg.tsv"
        assert storage.save_tsv(graph, path) == 3
        assert storage.load_tsv(path).size == 3


class TestUpdateTSV:
    def write(self, tmp_path, text):
        path = tmp_path / "edits.tsv"
        path.write_text(text)
        return path

    def test_iter_update_tsv_parses_ops(self, tmp_path):
        path = self.write(
            tmp_path,
            "# comment\n\n+\ts\tp\to\t2.5\n-\ts\tp\to\n+\tx\ty\tz\n",
        )
        updates = list(storage.iter_update_tsv(path))
        assert [u.op for u in updates] == ["+", "-", "+"]
        assert updates[0].triple().score == 2.5
        assert updates[1].spo == ("s", "p", "o")
        assert updates[2].score == 1.0  # optional score defaults

    def test_gzip_round_trip(self, tmp_path):
        import gzip

        path = tmp_path / "edits.tsv.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("+\ts\tp\to\t3\n")
        (update,) = storage.iter_update_tsv(path)
        assert update.spo == ("s", "p", "o")
        assert update.triple().score == 3.0

    @pytest.mark.parametrize(
        "line, message",
        [
            ("*\ts\tp\to", "update op"),
            ("+\ts\tp", "4 or 5"),
            ("+\ts\tp\to\tbad", "bad score"),
            ("+\ts\tp\to\tinf", "non-finite"),
            ("-\ts\tp\to\textra", "4 tab-separated"),
            ("-\ts\tp", "4 tab-separated"),
        ],
    )
    def test_malformed_lines_rejected_with_line_number(self, tmp_path, line, message):
        path = self.write(tmp_path, f"+\tok\tok\tok\n{line}\n")
        with pytest.raises(KnowledgeGraphError) as excinfo:
            list(storage.iter_update_tsv(path))
        assert message in str(excinfo.value)
        assert ":2:" in str(excinfo.value)


class TestSnapshotV2:
    """The packed mmap format: save_snapshot_v2 / load_snapshot_v2."""

    def test_round_trip_preserves_graph(self, graph, tmp_path):
        path = tmp_path / "kg.kg2"
        written = storage.save_snapshot_v2(graph, path)
        assert written == 3
        loaded = storage.load_snapshot_v2(path)
        assert set(loaded.triples()) == set(graph.triples())
        assert loaded.score_of("a", "type", "t1") == 10.0

    def test_byte_identical_to_npz_backend(self, graph, tmp_path):
        """Same TSV export from the v1 and v2 snapshot backends."""
        storage.save_snapshot(graph, tmp_path / "kg.npz")
        storage.save_snapshot_v2(graph, tmp_path / "kg.kg2")
        from_npz = storage.load_snapshot(tmp_path / "kg.npz")
        from_kg2 = storage.load_snapshot_v2(tmp_path / "kg.kg2")
        storage.save_tsv(from_npz, tmp_path / "v1.tsv")
        storage.save_tsv(from_kg2, tmp_path / "v2.tsv")
        assert (tmp_path / "v1.tsv").read_bytes() == (tmp_path / "v2.tsv").read_bytes()

    def test_load_snapshot_dispatches_on_content(self, graph, tmp_path):
        """load_snapshot recognises the v2 magic regardless of suffix."""
        path = tmp_path / "kg.npz"  # misleading suffix on purpose
        storage.save_snapshot_v2(graph, path)
        loaded = storage.load_snapshot(path)
        assert set(loaded.triples()) == set(graph.triples())

    def test_columns_are_memory_mapped(self, graph, tmp_path):
        import numpy as np

        def is_mapped(array):
            return isinstance(array, np.memmap) or isinstance(array.base, np.memmap)

        path = tmp_path / "kg.kg2"
        storage.save_snapshot_v2(graph, path)
        loaded = storage.load_snapshot_v2(path)
        # Constructor views may strip the np.memmap subclass, but the
        # buffer must still be the mapped file (zero copies).
        assert is_mapped(loaded.store.scores)
        assert is_mapped(loaded.store.subjects)
        assert loaded.store.source_path == str(path)

    def test_mmap_false_copies_into_memory(self, graph, tmp_path):
        import numpy as np

        path = tmp_path / "kg.kg2"
        storage.save_snapshot_v2(graph, path)
        loaded = storage.load_snapshot_v2(path, mmap=False)
        assert not isinstance(loaded.store.scores, np.memmap)
        assert set(loaded.triples()) == set(graph.triples())

    def test_name_stored_and_overridable(self, graph, tmp_path):
        path = tmp_path / "kg.kg2"
        graph.name = "the-graph"
        storage.save_snapshot_v2(graph, path)
        assert storage.load_snapshot_v2(path).name == "the-graph"
        assert storage.load_snapshot_v2(path, name="other").name == "other"

    def test_mutable_round_trip(self, graph, tmp_path):
        path = tmp_path / "kg.kg2"
        storage.save_snapshot_v2(graph, path)
        loaded = storage.load_snapshot_v2(path, mutable=True)
        assert type(loaded) is KnowledgeGraph
        loaded.add("x", "y", "z")
        assert loaded.size == 4

    def test_empty_graph_round_trip(self, tmp_path):
        path = tmp_path / "empty.kg2"
        assert storage.save_snapshot_v2(KnowledgeGraph(), path) == 0
        loaded = storage.load_snapshot_v2(path)
        assert loaded.size == 0

    def test_verify_accepts_good_file(self, graph, tmp_path):
        path = tmp_path / "kg.kg2"
        storage.save_snapshot_v2(graph, path)
        loaded = storage.load_snapshot_v2(path, verify=True)
        assert set(loaded.triples()) == set(graph.triples())

    def test_live_graph_snapshot_compacts(self, graph, tmp_path):
        from repro.kg.delta import GraphUpdate, LiveGraph

        live = LiveGraph(graph)
        live.apply_updates(
            [GraphUpdate.add("x", "type", "t1", 7.0), GraphUpdate.remove("c", "likes", "a")]
        )
        path = tmp_path / "kg.kg2"
        assert storage.save_snapshot_v2(live, path) == 3
        loaded = storage.load_snapshot_v2(path)
        assert set(loaded.triples()) == set(live.triples())

    def test_nan_score_rejected_before_writing(self, tmp_path):
        kg = KnowledgeGraph()
        kg.add("a", "p", "b", score=float("nan"))
        with pytest.raises(KnowledgeGraphError, match="finite"):
            storage.save_snapshot_v2(kg, tmp_path / "kg.kg2")
        assert not (tmp_path / "kg.kg2").exists()


class TestSnapshotV2Errors:
    """Every corruption mode names the path and hints at the format."""

    def _save(self, graph, tmp_path):
        path = tmp_path / "kg.kg2"
        storage.save_snapshot_v2(graph, path)
        return path

    def test_truncated_file(self, graph, tmp_path):
        path = self._save(graph, tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(KnowledgeGraphError, match=r"kg\.kg2.*truncated"):
            storage.load_snapshot_v2(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "kg.kg2"
        path.write_bytes(b"not a packed snapshot at all" + b"\x00" * 64)
        with pytest.raises(KnowledgeGraphError, match=r"kg\.kg2.*bad magic"):
            storage.load_snapshot_v2(path)

    def test_v1_npz_given_to_v2_reader_hints_at_load_snapshot(self, graph, tmp_path):
        path = tmp_path / "kg.npz"
        storage.save_snapshot(graph, path)
        with pytest.raises(KnowledgeGraphError, match="zip container.*load_snapshot"):
            storage.load_snapshot_v2(path)

    def test_garbage_manifest_tail(self, graph, tmp_path):
        import struct

        path = self._save(graph, tmp_path)
        data = path.read_bytes()
        (manifest_len,) = struct.unpack("<Q", data[-8:])
        body = data[: len(data) - 8 - manifest_len]
        garbage = b"{not json!!"
        path.write_bytes(body + garbage + struct.pack("<Q", len(garbage)))
        with pytest.raises(KnowledgeGraphError, match=r"kg\.kg2.*not valid JSON"):
            storage.load_snapshot_v2(path)

    def test_manifest_length_out_of_bounds(self, graph, tmp_path):
        import struct

        path = self._save(graph, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-8] + struct.pack("<Q", 2**40))
        with pytest.raises(KnowledgeGraphError, match="manifest length.*outside"):
            storage.load_snapshot_v2(path)

    def _rewrite_manifest(self, path, mutate):
        import json
        import struct

        data = path.read_bytes()
        (manifest_len,) = struct.unpack("<Q", data[-8:])
        manifest = json.loads(data[len(data) - 8 - manifest_len : -8])
        mutate(manifest)
        raw = json.dumps(manifest, sort_keys=True).encode()
        path.write_bytes(
            data[: len(data) - 8 - manifest_len] + raw + struct.pack("<Q", len(raw))
        )

    def test_future_version_rejected_with_hint(self, graph, tmp_path):
        path = self._save(graph, tmp_path)
        self._rewrite_manifest(path, lambda m: m.update(version=99))
        with pytest.raises(KnowledgeGraphError, match="version 99.*packed version 2"):
            storage.load_snapshot_v2(path)

    def test_foreign_format_rejected(self, graph, tmp_path):
        path = self._save(graph, tmp_path)
        self._rewrite_manifest(path, lambda m: m.update(format="someone/else"))
        with pytest.raises(KnowledgeGraphError, match="bad snapshot magic"):
            storage.load_snapshot_v2(path)

    def test_missing_section_named(self, graph, tmp_path):
        path = self._save(graph, tmp_path)
        self._rewrite_manifest(path, lambda m: m["sections"].pop("scores"))
        with pytest.raises(KnowledgeGraphError, match="missing section 'scores'"):
            storage.load_snapshot_v2(path)

    def test_section_offset_out_of_bounds(self, graph, tmp_path):
        path = self._save(graph, tmp_path)
        self._rewrite_manifest(
            path, lambda m: m["sections"]["scores"].update(offset=2**40)
        )
        with pytest.raises(KnowledgeGraphError, match="'scores'.*outside file bounds"):
            storage.load_snapshot_v2(path)

    def test_section_shape_nbytes_mismatch(self, graph, tmp_path):
        path = self._save(graph, tmp_path)
        self._rewrite_manifest(
            path, lambda m: m["sections"]["scores"].update(shape=[999])
        )
        with pytest.raises(KnowledgeGraphError):
            storage.load_snapshot_v2(path)

    @pytest.mark.parametrize("section", ["subjects", "scores", "terms"])
    def test_verify_catches_flipped_bytes_in_every_section(
        self, graph, tmp_path, section
    ):
        """Corruption *inside a section* (offsets from the manifest, not
        guessed — padding bytes are meaningless by design) fails verify."""
        path = self._save(graph, tmp_path)
        manifest = storage.read_snapshot_v2_manifest(path)
        meta = manifest["sections"][section]
        data = bytearray(path.read_bytes())
        where = int(meta["offset"]) + int(meta["nbytes"]) // 2
        data[where] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(KnowledgeGraphError, match=f"'{section}' checksum mismatch"):
            storage.load_snapshot_v2(path, verify=True)

    def test_unreadable_path_names_file(self, tmp_path):
        with pytest.raises(KnowledgeGraphError, match="no-such"):
            storage.load_snapshot_v2(tmp_path / "no-such.kg2")


class TestAtomicSnapshotWrites:
    """A crashed writer never leaves a file (or ruins one) at the target."""

    class _Boom(RuntimeError):
        pass

    def _crashing_graph(self, graph):
        """A graph whose column extraction succeeds but whose terms blow
        up mid-serialisation — simulating a writer crash after the
        destination would already have been opened by a naive writer."""
        crasher = self

        class CrashingStore:
            def __getattr__(self, name):
                raise crasher._Boom("mid-write failure")

        graph.store = CrashingStore()
        return graph

    @pytest.mark.parametrize("saver", ["save_snapshot", "save_snapshot_v2"])
    def test_failed_write_leaves_no_file(self, tmp_path, saver):
        bad = KnowledgeGraph()
        bad.add("a", "p", "b", score=float("nan"))  # crashes validation
        target = tmp_path / "kg.bin"
        with pytest.raises(KnowledgeGraphError):
            getattr(storage, saver)(bad, target)
        assert list(tmp_path.iterdir()) == []  # no target, no temp litter

    @pytest.mark.parametrize("saver", ["save_snapshot", "save_snapshot_v2"])
    def test_failed_write_preserves_previous_snapshot(self, graph, tmp_path, saver):
        target = tmp_path / "kg.bin"
        getattr(storage, saver)(graph, target)
        before = target.read_bytes()
        bad = KnowledgeGraph()
        bad.add("x", "p", "y", score=float("nan"))
        with pytest.raises(KnowledgeGraphError):
            getattr(storage, saver)(bad, target)
        assert target.read_bytes() == before  # old snapshot intact
        assert list(tmp_path.iterdir()) == [target]

    def test_mid_stream_crash_cleans_temp(self, graph, tmp_path, monkeypatch):
        """Even a crash *during* byte writing (post-validation) must not
        leave a partial file at the destination."""
        target = tmp_path / "kg.kg2"
        real_dumps = storage.json.dumps

        def exploding_dumps(*args, **kwargs):
            raise self._Boom("mid-write failure")

        monkeypatch.setattr(storage.json, "dumps", exploding_dumps)
        with pytest.raises(self._Boom):
            storage.save_snapshot_v2(graph, target)
        monkeypatch.setattr(storage.json, "dumps", real_dumps)
        assert list(tmp_path.iterdir()) == []
