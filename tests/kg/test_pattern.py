"""Unit tests for repro.kg.pattern."""

import pytest

from repro.errors import PatternError
from repro.kg.pattern import TriplePattern, Variable, is_variable, var
from repro.kg.triple import Triple


class TestVariable:
    def test_str_has_question_mark(self):
        assert str(Variable("s")) == "?s"

    def test_empty_name_rejected(self):
        with pytest.raises(PatternError):
            Variable("")

    def test_prefixed_name_rejected(self):
        with pytest.raises(PatternError):
            Variable("?s")

    def test_var_shorthand(self):
        assert var("x") == Variable("x")

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable("x")


class TestPatternBasics:
    def test_terms(self):
        p = TriplePattern(var("s"), "rdf:type", "singer")
        assert p.terms == (var("s"), "rdf:type", "singer")

    def test_variables_in_position_order(self):
        p = TriplePattern(var("s"), var("p"), var("o"))
        assert p.variable_names == ("s", "p", "o")

    def test_repeated_variable_counted_once(self):
        p = TriplePattern(var("x"), "p", var("x"))
        assert p.variable_names == ("x",)

    def test_key_wildcard_positions(self):
        p = TriplePattern(var("s"), "rdf:type", "singer")
        assert p.key() == (None, "rdf:type", "singer")

    def test_key_variable_name_independent(self):
        a = TriplePattern(var("s"), "p", "o")
        b = TriplePattern(var("x"), "p", "o")
        assert a.key() == b.key()

    def test_empty_constant_rejected(self):
        with pytest.raises(PatternError):
            TriplePattern("", "p", "o")

    def test_str(self):
        p = TriplePattern(var("s"), "rdf:type", "singer")
        assert str(p) == "?s rdf:type singer"


class TestMatching:
    def test_constant_match(self):
        p = TriplePattern("a", "p", "b")
        assert p.matches(Triple("a", "p", "b"))
        assert not p.matches(Triple("a", "p", "c"))

    def test_variable_binds(self):
        p = TriplePattern(var("s"), "rdf:type", "singer")
        t = Triple("shakira", "rdf:type", "singer")
        assert p.bind(t) == {"s": "shakira"}

    def test_bind_mismatch_returns_none(self):
        p = TriplePattern(var("s"), "rdf:type", "singer")
        assert p.bind(Triple("x", "rdf:type", "pianist")) is None

    def test_repeated_variable_consistency(self):
        p = TriplePattern(var("x"), "knows", var("x"))
        assert p.bind(Triple("a", "knows", "a")) == {"x": "a"}
        assert p.bind(Triple("a", "knows", "b")) is None

    def test_all_variables_matches_everything(self):
        p = TriplePattern(var("s"), var("p"), var("o"))
        assert p.matches(Triple("any", "thing", "atall"))


class TestSubstituteRename:
    def test_substitute_full(self):
        p = TriplePattern(var("s"), "rdf:type", var("t"))
        q = p.substitute({"s": "shakira", "t": "singer"})
        assert q == TriplePattern("shakira", "rdf:type", "singer")

    def test_substitute_partial(self):
        p = TriplePattern(var("s"), "rdf:type", var("t"))
        q = p.substitute({"t": "singer"})
        assert q == TriplePattern(var("s"), "rdf:type", "singer")

    def test_rename(self):
        p = TriplePattern(var("s"), "p", var("o"))
        q = p.rename({"s": "x"})
        assert q == TriplePattern(var("x"), "p", var("o"))

    def test_shares_variable_with(self):
        a = TriplePattern(var("s"), "p1", "o1")
        b = TriplePattern(var("s"), "p2", "o2")
        c = TriplePattern(var("t"), "p3", "o3")
        assert a.shares_variable_with(b)
        assert not a.shares_variable_with(c)


class TestIdentity:
    def test_equal_patterns(self):
        assert TriplePattern(var("s"), "p", "o") == TriplePattern(var("s"), "p", "o")

    def test_different_variable_names_not_equal(self):
        assert TriplePattern(var("s"), "p", "o") != TriplePattern(var("x"), "p", "o")

    def test_hashable(self):
        patterns = {TriplePattern(var("s"), "p", "o"), TriplePattern(var("s"), "p", "o")}
        assert len(patterns) == 1
