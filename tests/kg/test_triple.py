"""Unit tests for repro.kg.triple."""

import pytest

from repro.errors import KnowledgeGraphError
from repro.kg.triple import Triple


class TestConstruction:
    def test_basic_fields(self):
        t = Triple("a", "p", "b", 2.5)
        assert t.subject == "a"
        assert t.predicate == "p"
        assert t.object == "b"
        assert t.score == 2.5

    def test_default_score_is_one(self):
        assert Triple("a", "p", "b").score == 1.0

    def test_spo_property(self):
        assert Triple("a", "p", "b").spo == ("a", "p", "b")

    @pytest.mark.parametrize("field", ["subject", "predicate", "object"])
    def test_empty_term_rejected(self, field):
        kwargs = {"subject": "a", "predicate": "p", "object": "b"}
        kwargs[field] = ""
        with pytest.raises(KnowledgeGraphError):
            Triple(**kwargs)

    @pytest.mark.parametrize("field", ["subject", "predicate", "object"])
    def test_non_string_term_rejected(self, field):
        kwargs = {"subject": "a", "predicate": "p", "object": "b"}
        kwargs[field] = 42
        with pytest.raises(KnowledgeGraphError):
            Triple(**kwargs)

    def test_negative_score_rejected(self):
        with pytest.raises(KnowledgeGraphError):
            Triple("a", "p", "b", -0.1)

    def test_non_numeric_score_rejected(self):
        with pytest.raises(KnowledgeGraphError):
            Triple("a", "p", "b", "high")

    def test_zero_score_allowed(self):
        assert Triple("a", "p", "b", 0.0).score == 0.0


class TestIdentity:
    def test_equality_ignores_score(self):
        assert Triple("a", "p", "b", 1.0) == Triple("a", "p", "b", 99.0)

    def test_hash_ignores_score(self):
        assert hash(Triple("a", "p", "b", 1.0)) == hash(Triple("a", "p", "b", 7.0))

    def test_inequality_on_terms(self):
        assert Triple("a", "p", "b") != Triple("a", "p", "c")

    def test_not_equal_to_tuple(self):
        assert Triple("a", "p", "b") != ("a", "p", "b")

    def test_usable_in_sets(self):
        triples = {Triple("a", "p", "b", 1), Triple("a", "p", "b", 2)}
        assert len(triples) == 1


class TestWithScore:
    def test_with_score_returns_new_triple(self):
        t = Triple("a", "p", "b", 1.0)
        t2 = t.with_score(5.0)
        assert t2.score == 5.0
        assert t.score == 1.0
        assert t2 == t  # identity unchanged

    def test_with_score_validates(self):
        with pytest.raises(KnowledgeGraphError):
            Triple("a", "p", "b").with_score(-1.0)
