"""Unit tests for repro.kg.namespace."""

import pytest

from repro.kg.namespace import RDF_TYPE, Namespace


class TestNamespace:
    def test_term_construction(self):
        ns = Namespace("yago:")
        assert ns["Shakira"] == "yago:Shakira"
        assert ns.term("Shakira") == "yago:Shakira"

    def test_empty_local_name_rejected(self):
        with pytest.raises(ValueError):
            Namespace("x:")[""]

    def test_contains(self):
        ns = Namespace("tweet:")
        assert "tweet:123" in ns
        assert "yago:123" not in ns

    def test_local(self):
        ns = Namespace("tweet:")
        assert ns.local("tweet:123") == "123"

    def test_local_outside_namespace_raises(self):
        with pytest.raises(ValueError):
            Namespace("a:").local("b:x")

    def test_rdf_type_constant(self):
        assert RDF_TYPE == "rdf:type"
