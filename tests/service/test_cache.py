"""MatchListCache: LRU behaviour, statistics, version-aware invalidation."""

from __future__ import annotations

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.service import MatchListCache

VAR = Variable("s")


def pattern(type_name: str) -> TriplePattern:
    return TriplePattern(VAR, "rdf:type", type_name)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        MatchListCache(capacity=0)


def test_hit_miss_counting(music_graph):
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)

    first = music_graph.match_list(pattern("singer"))
    second = music_graph.match_list(pattern("singer"))
    assert first is second  # served from cache, not re-sorted

    stats = cache.stats()
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.hit_rate == 0.5
    assert stats.size == 1


def test_lru_eviction_order(music_graph):
    cache = MatchListCache(capacity=2)
    music_graph.attach_match_list_cache(cache)

    music_graph.match_list(pattern("singer"))    # [singer]
    music_graph.match_list(pattern("lyricist"))  # [singer, lyricist]
    music_graph.match_list(pattern("singer"))    # [lyricist, singer] (hit)
    music_graph.match_list(pattern("writer"))    # evicts lyricist

    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.size == 2
    assert pattern("singer").key() in cache
    assert pattern("lyricist").key() not in cache


def test_graph_mutation_invalidates_entries(music_graph):
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)

    before = music_graph.match_list(pattern("singer"))
    assert before.triples[0].subject == "shakira"

    # Mutation bumps the version counter; the stale entry must not be
    # served even though it is still resident.
    music_graph.add("newcomer", "rdf:type", "singer", score=500.0)
    after = music_graph.match_list(pattern("singer"))

    assert after is not before
    assert after.triples[0].subject == "newcomer"
    stats = cache.stats()
    assert stats.invalidations == 1


def test_detach_restores_internal_caching(music_graph):
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    assert music_graph.match_list_cache is cache

    music_graph.detach_match_list_cache()
    assert music_graph.match_list_cache is None

    music_graph.match_list(pattern("singer"))
    assert cache.stats().lookups == 0  # detached cache sees no traffic


def test_explicit_invalidate_caches(music_graph):
    music_graph.match_list(pattern("singer"))
    assert music_graph.index_stats()["match_lists"] == 1
    music_graph.invalidate_caches()
    assert music_graph.index_stats()["match_lists"] == 0
    # And the next lookup rebuilds transparently.
    assert len(music_graph.match_list(pattern("singer"))) == 4


def test_shared_across_graph_handles_and_engines(music_graph, music_rules):
    """Two engines over one graph share one cache (the runner's layout)."""
    from repro.core.engine import SpecQPEngine

    cache = MatchListCache(capacity=64)
    one = SpecQPEngine(music_graph, music_rules, match_list_cache=cache)
    two = SpecQPEngine(music_graph, music_rules, match_list_cache=cache)
    assert one.match_list_cache is two.match_list_cache

    query = "SELECT ?s WHERE { ?s 'rdf:type' <singer>. ?s 'rdf:type' <lyricist> }"
    first = one.query(query, k=3)
    hits_after_first = cache.stats().hits
    second = two.query(query, k=3)

    assert [a.bindings for a in first.answers] == [a.bindings for a in second.answers]
    assert cache.stats().hits > hits_after_first


def test_cache_refuses_second_graph(music_graph):
    """Entries carry no graph identity, so one cache serves one graph."""
    from repro.errors import KnowledgeGraphError

    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    music_graph.match_list(pattern("singer"))

    other = KnowledgeGraph(name="other")
    other.add("bob", "rdf:type", "singer", score=1.0)
    with pytest.raises(KnowledgeGraphError):
        other.attach_match_list_cache(cache)
    # The second graph must not see the first graph's triples.
    assert other.match_list(pattern("singer")).triples[0].subject == "bob"


def test_invalidate_caches_clears_attached_external_cache(music_graph):
    """invalidate_caches() is the cold-start path: version tags alone
    would let external entries survive (the version does not change)."""
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    music_graph.match_list(pattern("singer"))
    assert len(cache) == 1

    music_graph.invalidate_caches()
    assert len(cache) == 0
    music_graph.match_list(pattern("singer"))
    assert cache.stats().hits == 0  # rebuilt, not served stale


def test_version_bump_put_sweeps_stale_entries(music_graph):
    """The first put at a newer graph version purges every superseded
    entry at once instead of leaving them to LRU eviction."""
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)

    music_graph.match_list(pattern("singer"))
    music_graph.match_list(pattern("lyricist"))
    assert len(cache) == 2

    music_graph.add("newcomer", "rdf:type", "writer", score=5.0)
    # One rebuild at the new version: the other old entry must go too.
    music_graph.match_list(pattern("writer"))
    assert len(cache) == 1
    stats = cache.stats()
    assert stats.invalidations == 2  # both stale entries swept eagerly
    assert pattern("singer").key() not in cache
    assert pattern("lyricist").key() not in cache


def test_purge_stale_explicit(music_graph):
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    music_graph.match_list(pattern("singer"))
    music_graph.match_list(pattern("writer"))

    assert cache.purge_stale(music_graph.version) == 0  # all current
    music_graph.add("newcomer", "rdf:type", "writer", score=5.0)
    purged = cache.purge_stale(music_graph.version)
    assert purged == 2
    assert len(cache) == 0
    assert cache.stats().invalidations == 2
    # Rebuilds repopulate at the current version.
    music_graph.match_list(pattern("singer"))
    assert len(cache) == 1
    # An out-of-order put at a superseded version (an in-flight old query
    # finishing late) inserts without purging the newer entries back.
    stale_list = music_graph.match_list(pattern("writer"))
    cache.put(pattern("writer").key(), music_graph.version - 1, stale_list)
    assert len(cache) == 2
    assert pattern("singer").key() in cache


def test_release_allows_rebinding(music_graph):
    from repro.errors import KnowledgeGraphError

    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    music_graph.match_list(pattern("singer"))
    music_graph.detach_match_list_cache()

    other = KnowledgeGraph(name="other")
    other.add("bob", "rdf:type", "singer", score=1.0)
    with pytest.raises(KnowledgeGraphError):
        other.attach_match_list_cache(cache)  # still bound

    cache.release(music_graph)
    assert len(cache) == 0  # old graph's entries went with the binding
    other.attach_match_list_cache(cache)
    assert other.match_list(pattern("singer")).triples[0].subject == "bob"


def test_release_ignores_non_owner(music_graph):
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    music_graph.match_list(pattern("singer"))
    cache.release(object())  # not the owner: binding and entries survive
    assert len(cache) == 1
    assert music_graph.match_list_cache is cache


def test_reset_stats_keeps_entries(music_graph):
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    music_graph.match_list(pattern("singer"))
    cache.reset_stats()
    stats = cache.stats()
    assert stats.lookups == 0
    assert stats.size == 1


def test_clear_drops_entries_but_keeps_counters(music_graph):
    cache = MatchListCache(capacity=8)
    music_graph.attach_match_list_cache(cache)
    music_graph.match_list(pattern("singer"))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats().misses == 1
