"""The versioned whole-answer result cache, alone and inside the runner.

Covers the cache's own contract (version-keyed hits, LRU bound, eager
sweeps, canonical keys), the WorkloadRunner integration (warm repeats
served without execution, ``apply_updates`` invalidation, executor
independence of entries), the warm-up pre-encoding gate, and the
concurrency property: get/put racing a version bump never serves an
answer computed against a superseded graph version.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets.workload import Workload
from repro.errors import ExperimentError
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate
from repro.kg.pattern import TriplePattern, Variable
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery
from repro.service import CachedResult, ResultCache, WorkloadRunner, result_key


@pytest.fixture(autouse=True)
def _restore_shared_graph(tiny_xkg_workload):
    yield
    tiny_xkg_workload.graph.detach_match_list_cache()


def make_result(label: str, score: float = 1.0) -> CachedResult:
    answer = Answer(bindings=(("s", label),), score=score)
    return CachedResult(
        answers=(answer,), n_relaxed=0, plan=f"plan-{label}", executor="tuple"
    )


def tp(type_name: str, var: str = "s") -> TriplePattern:
    return TriplePattern(Variable(var), "rdf:type", type_name)


class TestResultCacheUnit:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_get_put_roundtrip_and_counters(self):
        cache = ResultCache(capacity=4)
        result = make_result("a")
        assert cache.get("key", 1) is None
        cache.put("key", 1, result)
        assert cache.get("key", 1) is result
        assert "key" in cache and len(cache) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_version_mismatch_misses_and_drops(self):
        cache = ResultCache(capacity=4)
        cache.put("key", 1, make_result("a"))
        assert cache.get("key", 2) is None  # stale: dropped, counted
        assert "key" not in cache
        assert cache.stats().invalidations == 1

    def test_put_at_newer_version_sweeps_older_entries(self):
        cache = ResultCache(capacity=8)
        cache.put("old1", 1, make_result("a"))
        cache.put("old2", 1, make_result("b"))
        cache.put("new", 2, make_result("c"))
        assert len(cache) == 1 and "new" in cache
        assert cache.stats().invalidations == 2

    def test_purge_stale_reports_count(self):
        cache = ResultCache(capacity=8)
        for i in range(3):
            cache.put(f"k{i}", 5, make_result(str(i)))
        assert cache.purge_stale(5) == 0
        assert cache.purge_stale(6) == 3
        assert len(cache) == 0

    def test_lru_eviction_beyond_capacity(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1, make_result("a"))
        cache.put("b", 1, make_result("b"))
        cache.get("a", 1)  # refresh a: b becomes LRU
        cache.put("c", 1, make_result("c"))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_clear_forgets_entries_and_version_floor(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 7, make_result("a"))
        cache.clear()
        assert len(cache) == 0
        # After clear() the cache accepts an entry at a *lower* version —
        # that is the point: it is used when the graph object itself is
        # replaced and the counter's meaning resets.
        cache.put("b", 3, make_result("b"))
        assert cache.get("b", 3) is not None


class TestResultKeyCanonicalization:
    def test_name_and_pattern_order_never_split_the_cache(self):
        a, b = tp("singer"), tp("lyricist")
        q1 = TriplePatternQuery((a, b), projection=(Variable("s"),), name="one")
        q2 = TriplePatternQuery((b, a), projection=(Variable("s"),), name="two")
        assert result_key(q1, 5, "sig") == result_key(q2, 5, "sig")

    def test_k_projection_and_signature_always_split_it(self):
        q = TriplePatternQuery((tp("singer"), tp("lyricist", var="o")))
        narrow = TriplePatternQuery(
            (tp("singer"), tp("lyricist", var="o")), projection=(Variable("s"),)
        )
        assert result_key(q, 5, "sig") != result_key(q, 6, "sig")
        assert result_key(q, 5, "sig") != result_key(q, 5, "other")
        assert result_key(q, 5, "sig") != result_key(narrow, 5, "sig")

    def test_variable_names_are_significant(self):
        # Different variable names bind different answer columns; they
        # must not share an entry even though the shapes match.
        q1 = TriplePatternQuery((tp("singer", var="s"),))
        q2 = TriplePatternQuery((tp("singer", var="x"),))
        assert result_key(q1, 5, "sig") != result_key(q2, 5, "sig")


class TestRunnerIntegration:
    def test_rejects_negative_capacity(self, tiny_xkg_workload):
        with pytest.raises(ExperimentError):
            WorkloadRunner(tiny_xkg_workload, result_cache_capacity=-1)

    def test_zero_capacity_disables_the_cache(self, tiny_xkg_workload):
        runner = WorkloadRunner(tiny_xkg_workload, result_cache_capacity=0)
        assert runner.result_cache is None
        report = runner.run(k=5)
        assert "result_cache_hits" not in report.extras

    def test_warm_repeats_hit_whole_answers(self, tiny_xkg_workload):
        runner = WorkloadRunner(tiny_xkg_workload)
        queries = list(tiny_xkg_workload.queries)
        first = runner.run(queries, k=5)
        assert first.extras["result_cache_hits"] == 0
        assert first.extras["result_cache_misses"] == len(queries)
        second = runner.run(queries, k=5)
        assert second.extras["result_cache_hits"] == len(queries)
        assert second.extras["result_cache_misses"] == 0
        assert all(o.executor == "cached" for o in second.outcomes)
        # A hit replays the outcome metadata, not just the answers.
        for before, after in zip(first.outcomes, second.outcomes):
            assert (before.n_answers, before.n_relaxed, before.plan) == (
                after.n_answers,
                after.n_relaxed,
                after.plan,
            )
            assert before.top_score == after.top_score

    def test_hits_serve_identical_answers(self, tiny_xkg_workload):
        runner = WorkloadRunner(tiny_xkg_workload)
        query = tiny_xkg_workload.queries[0]
        executed = runner.execute_query(query, k=5)
        cached = runner.execute_query(query, k=5)
        assert cached == executed
        assert runner.result_cache is not None
        assert runner.result_cache.stats().hits >= 1

    def test_entries_serve_across_executor_toggles(self, tiny_xkg_workload):
        """Answers are executor-independent, so one cached entry keeps
        serving after the runner is toggled to the other pipeline."""
        workload = Workload(
            "toggle",
            ColumnarGraph.from_graph(tiny_xkg_workload.graph, name="toggle"),
            tiny_xkg_workload.rules,
            tiny_xkg_workload.queries,
        )
        runner = WorkloadRunner(workload, executor="tuple")
        queries = workload.queries[:4]
        runner.run(queries, k=5)
        runner.executor = "block"
        report = runner.run(queries, k=5)
        assert report.extras["result_cache_hits"] == len(queries)

    def test_different_k_values_never_share_entries(self, tiny_xkg_workload):
        # PLANGEN replans per k (relaxation decisions depend on it), so a
        # k=1 request after a cached k=5 must be a miss, never a
        # truncated replay of the k=5 entry.
        runner = WorkloadRunner(tiny_xkg_workload)
        query = tiny_xkg_workload.queries[0]
        top5 = runner.execute_query(query, k=5)
        top1 = runner.execute_query(query, k=1)
        assert len(top5) <= 5 and len(top1) <= 1
        assert runner.result_cache is not None
        stats = runner.result_cache.stats()
        assert stats.hits == 0 and stats.misses == 2
        assert len(runner.result_cache) == 2

    def test_apply_updates_invalidates_cached_answers(
        self, tiny_xkg_workload
    ):
        workload = Workload(
            "invalidate",
            ColumnarGraph.from_graph(tiny_xkg_workload.graph, name="inv"),
            tiny_xkg_workload.rules,
            tiny_xkg_workload.queries,
        )
        queries = workload.queries[:6]
        runner = WorkloadRunner(workload)
        runner.run(queries, k=5)
        runner.apply_updates([GraphUpdate.add("s_new", "p_new", "o_new", 1.0)])
        report = runner.run(queries, k=5)
        # Every cached entry described the pre-update graph: all misses.
        assert report.extras["result_cache_hits"] == 0
        assert report.extras["result_cache_misses"] == len(queries)
        again = runner.run(queries, k=5)
        assert again.extras["result_cache_hits"] == len(queries)


class TestWarmUpPreEncodingGate:
    """warm_up only pre-encodes block lists when the block pipeline can
    actually serve: pinned-tuple runners must not pay for (or hold) lists
    no query will ever read."""

    def _columnar_workload(self, tiny_xkg_workload, name):
        return Workload(
            name,
            ColumnarGraph.from_graph(tiny_xkg_workload.graph, name=name),
            tiny_xkg_workload.rules,
            tiny_xkg_workload.queries,
        )

    def test_tuple_runner_skips_pre_encoding(self, tiny_xkg_workload):
        workload = self._columnar_workload(tiny_xkg_workload, "gate-tuple")
        runner = WorkloadRunner(workload, executor="tuple")
        assert not runner._pre_encodes_blocks()
        runner.warm_up()
        assert len(runner.encoded_store) == 0

    @pytest.mark.parametrize("mode", ["block", "auto"])
    def test_block_and_auto_runners_pre_encode(self, tiny_xkg_workload, mode):
        workload = self._columnar_workload(tiny_xkg_workload, f"gate-{mode}")
        runner = WorkloadRunner(workload, executor=mode)
        assert runner._pre_encodes_blocks()
        runner.warm_up()
        patterns = {p for q in workload.queries for p in q.patterns}
        assert len(runner.encoded_store) == len(patterns)

    def test_object_backend_never_pre_encodes(self, tiny_xkg_workload):
        # The object graph cannot execute blocks at all; "block" falls
        # back to tuple and pre-encoding would build unusable lists.
        runner = WorkloadRunner(tiny_xkg_workload, executor="block")
        assert not runner._pre_encodes_blocks()
        runner.warm_up()
        assert len(runner.encoded_store) == 0


class TestConcurrencyNeverServesStale:
    def test_version_bump_racing_readers(self):
        """Hammer get/put from a pool while a writer bumps the version:
        every hit must carry the exact version the reader asked for."""
        cache = ResultCache(capacity=64)
        current_version = [1]
        stop = threading.Event()
        violations: list[tuple[int, str]] = []
        keys = [f"q{i}" for i in range(8)]

        def reader(worker: int) -> int:
            served = 0
            while not stop.is_set():
                for key in keys:
                    version = current_version[0]
                    hit = cache.get(key, version)
                    if hit is None:
                        cache.put(key, version, make_result(f"v{version}"))
                    else:
                        served += 1
                        expected = f"v{version}"
                        got = hit.answers[0].as_dict()["s"]
                        # The entry we were handed must have been
                        # computed at the version we asked for — a
                        # stale-version answer here is the bug the
                        # versioned cache exists to prevent.
                        if got != expected:
                            violations.append((worker, f"{got} != {expected}"))
            return served

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(reader, w) for w in range(4)]
            for bump in range(2, 30):
                current_version[0] = bump
                cache.purge_stale(bump)
            stop.set()
            served = sum(f.result() for f in futures)

        assert not violations
        assert served > 0  # the race actually exercised the hit path

    def test_runner_batches_race_apply_updates(self, tiny_xkg_workload):
        """Interleave query batches with update batches from another
        thread; every batch's answers must equal a fresh uncached run
        against the graph state that batch observed."""
        workload = Workload(
            "race",
            ColumnarGraph.from_graph(tiny_xkg_workload.graph, name="race"),
            tiny_xkg_workload.rules,
            tiny_xkg_workload.queries,
        )
        runner = WorkloadRunner(workload, n_workers=2)
        queries = workload.queries[:4]
        errors: list[str] = []

        def write(round_index: int) -> None:
            runner.apply_updates(
                [
                    GraphUpdate.add(
                        f"rs{round_index}", "race:p", f"ro{round_index}", 2.0
                    )
                ]
            )

        for round_index in range(5):
            writer = threading.Thread(target=write, args=(round_index,))
            writer.start()
            runner.run(queries, k=5)
            writer.join()
            # The gate serialized us against the writer: whatever side
            # won, the batch's answers must match an uncached runner at
            # the *current* version (the writer has joined, so if it won
            # the race our batch saw the post-update graph; if we won,
            # re-running now reflects the update and cached entries are
            # version-stale — either way no stale answer may surface).
            oracle = WorkloadRunner(
                Workload("oracle", runner.graph, workload.rules, queries),
                result_cache_capacity=0,
            )
            check = runner.run(queries, k=5)
            fresh = oracle.run(queries, k=5)
            got = [(o.n_answers, o.top_score) for o in check.outcomes]
            want = [(o.n_answers, o.top_score) for o in fresh.outcomes]
            if got != want:
                errors.append(f"round {round_index}: {got} != {want}")
        assert not errors
