"""The multiprocess worker pool: ``WorkloadRunner(worker_model="process")``.

Covers the contract laid out in ``repro.service.procpool``: answers
byte-identical to thread serving, one shared snapshot (reused when the
graph came from a ``.kg2`` file), versioned delta shipping for live
updates — including the no-mixed-versions oracle under a concurrent
writer — generation re-export, and deterministic teardown.
"""

import threading

import pytest

from repro.kg import storage
from repro.kg.delta import GraphUpdate
from repro.service import WorkloadRunner
from repro.service import procpool
import repro.service.runner as runner_mod


def _rows(answers):
    return [(a.bindings, a.score) for a in answers]


@pytest.fixture(scope="module")
def workload(tiny_xkg_workload):
    return tiny_xkg_workload


@pytest.fixture(scope="module")
def queries(workload):
    return workload.stretched(24)


@pytest.fixture(scope="module")
def reference_answers(workload, queries):
    runner = WorkloadRunner(workload, n_workers=1)
    return [_rows(runner.execute_query(q, 5)) for q in queries]


class TestChunking:
    def test_empty_batch(self):
        assert procpool.make_chunks(0, 4) == []

    def test_bounds_are_contiguous_and_complete(self):
        for n_queries in (1, 7, 24, 100):
            for n_workers in (1, 3, 8):
                bounds = procpool.make_chunks(n_queries, n_workers)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_queries
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start

    def test_aims_for_chunks_per_worker(self):
        bounds = procpool.make_chunks(1000, 4)
        assert len(bounds) == 4 * procpool.CHUNKS_PER_WORKER


class TestWireTypesPickle:
    def test_worker_spec_and_task_round_trip(self, workload):
        import pickle

        from repro.core.config import EngineConfig

        spec = procpool.WorkerSpec(
            graph_name=workload.graph.name,
            rules=workload.rules,
            config=EngineConfig(),
            cache_capacity=64,
            plan_cache=True,
            shards=1,
            shard_strategy="score-range",
            executor="tuple",
            warm_queries=tuple(workload.queries),
        )
        assert pickle.loads(pickle.dumps(spec)).graph_name == spec.graph_name
        task = procpool.ChunkTask(
            generation=0,
            snapshot_path="/tmp/x.kg2",
            log=(GraphUpdate.add("a", "p", "b", 1.0),),
            log_len=1,
            queries=tuple(workload.queries[:2]),
            k=5,
        )
        again = pickle.loads(pickle.dumps(task))
        assert again.queries == task.queries and again.log == task.log


class TestProcessServing:
    def test_rejects_unknown_worker_model(self, workload):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="worker model"):
            WorkloadRunner(workload, worker_model="fibers")

    def test_answers_identical_to_thread_model(
        self, workload, queries, reference_answers
    ):
        with WorkloadRunner(workload, n_workers=2, worker_model="process") as proc:
            report = proc.run(queries, k=5)
            assert [
                _rows(proc.execute_query(q, 5)) for q in queries
            ] == reference_answers
        thread_report = WorkloadRunner(workload, n_workers=2).run(queries, k=5)
        for ours, theirs in zip(report.outcomes, thread_report.outcomes):
            assert ours.query_name == theirs.query_name
            assert ours.n_answers == theirs.n_answers
            assert ours.top_score == theirs.top_score
            assert ours.plan == theirs.plan

    def test_report_extras_describe_the_fleet(self, workload, queries):
        with WorkloadRunner(workload, n_workers=2, worker_model="process") as proc:
            report = proc.run(queries, k=5)
            assert report.extras["worker_model"] == "process"
            assert report.extras["process_generation"] == 0
            assert 1 <= report.extras["process_workers_used"] <= 2
            assert report.extras["process_chunks"] >= 2
            # one batch, one version — the oracle the merge relies on
            assert len(report.extras["process_graph_versions"]) == 1
            assert report.cache is None  # match-list caches live in workers

    def test_master_result_cache_fronts_the_pool(self, workload, queries):
        with WorkloadRunner(workload, n_workers=2, worker_model="process") as proc:
            proc.run(queries, k=5)
            repeat = proc.run(queries, k=5)
            assert repeat.extras["result_cache_hits"] == len(queries)
            assert repeat.extras["process_chunks"] == 0  # nothing dispatched
            assert all(o.executor == "cached" for o in repeat.outcomes)

    @pytest.mark.parametrize("executor", ["block", "auto"])
    def test_executors_identical_through_the_fleet(
        self, workload, queries, reference_answers, executor
    ):
        with WorkloadRunner(
            workload, n_workers=2, worker_model="process", executor=executor
        ) as proc:
            assert [
                _rows(proc.execute_query(q, 5)) for q in queries
            ] == reference_answers

    def test_sharded_fleet_identical(self, workload, queries, reference_answers):
        with WorkloadRunner(
            workload, n_workers=2, worker_model="process", shards=4
        ) as proc:
            assert [
                _rows(proc.execute_query(q, 5)) for q in queries
            ] == reference_answers

    def test_kg2_loaded_graph_reuses_the_file(
        self, workload, queries, reference_answers, tmp_path
    ):
        from repro.datasets.workload import Workload

        path = tmp_path / "g.kg2"
        storage.save_snapshot_v2(workload.graph, path)
        served = Workload(
            name=workload.name,
            graph=storage.load_snapshot_v2(path, name=workload.graph.name),
            rules=workload.rules,
            queries=list(workload.queries),
        )
        with WorkloadRunner(served, n_workers=2, worker_model="process") as proc:
            proc.run(queries, k=5)
            assert proc._proc_snapshot == str(path)  # shared, not re-exported
            assert proc._proc_dir is None
            assert [
                _rows(proc.execute_query(q, 5)) for q in queries
            ] == reference_answers

    def test_executor_toggle_respawns_fleet(self, workload, queries):
        with WorkloadRunner(workload, n_workers=2, worker_model="process") as proc:
            proc.run(queries[:6], k=5)
            assert proc._fleet is not None
            proc.executor = "block"
            assert proc._fleet is None  # workers were pinned to "tuple"
            report = proc.run(queries[:6], k=5)
            assert report.extras["executor"] == "block"

    def test_close_is_idempotent_and_removes_exports(self, workload, queries):
        import os

        proc = WorkloadRunner(workload, n_workers=2, worker_model="process")
        proc.run(queries[:6], k=5)
        exported = proc._proc_dir
        assert exported is not None and os.path.isdir(exported)
        proc.close()
        assert not os.path.exists(exported)
        proc.close()  # second close is a no-op


class TestProcessUpdates:
    """Versioned delta shipping across the process boundary."""

    def _batch(self, workload, offset):
        adds = [
            GraphUpdate.add(f"proc:e{offset}-{i}", "rel:linked_to", "proc:hub", 0.9)
            for i in range(3)
        ]
        removes = [
            GraphUpdate.remove(t.subject, t.predicate, t.object)
            for t in list(workload.graph.triples())[offset : offset + 2]
        ]
        return adds + removes

    def test_updates_reach_workers_and_answers_match(self, workload, queries):
        oracle = WorkloadRunner(workload, n_workers=1)
        with WorkloadRunner(workload, n_workers=2, worker_model="process") as proc:
            proc.run(queries, k=5)
            batch = self._batch(workload, 0)
            oracle.apply_updates(batch)
            proc.apply_updates(batch)
            assert len(proc._proc_log) == len(batch)  # shipped, not re-exported
            report = proc.run(queries, k=5)
            assert len(report.extras["process_graph_versions"]) == 1
            assert [_rows(proc.execute_query(q, 5)) for q in queries] == [
                _rows(oracle.execute_query(q, 5)) for q in queries
            ]

    def test_reexport_threshold_rolls_the_generation(
        self, workload, queries, monkeypatch
    ):
        monkeypatch.setattr(runner_mod, "REEXPORT_THRESHOLD", 4)
        oracle = WorkloadRunner(workload, n_workers=1)
        with WorkloadRunner(workload, n_workers=2, worker_model="process") as proc:
            proc.run(queries, k=5)
            batch = self._batch(workload, 10)  # 5 updates >= threshold 4
            oracle.apply_updates(batch)
            proc.apply_updates(batch)
            assert proc._proc_generation == 1
            assert proc._proc_log == []  # folded into the new snapshot
            proc.run(queries, k=5)
            assert [_rows(proc.execute_query(q, 5)) for q in queries] == [
                _rows(oracle.execute_query(q, 5)) for q in queries
            ]

    def test_no_mixed_versions_under_concurrent_writer(self, workload, queries):
        """The threaded + multiprocess oracle: batches race a writer
        thread; every batch must still be served at exactly one graph
        version, and in-flight batches finish on the old version (the
        writer gate holds the writer out until they drain)."""
        with WorkloadRunner(workload, n_workers=2, worker_model="process") as proc:
            proc.run(queries[:8], k=5)  # fleet up before the race
            reports = []
            errors = []

            def serve():
                try:
                    for _ in range(4):
                        reports.append(proc.run(queries[:8], k=5))
                except Exception as error:  # pragma: no cover - fails the test
                    errors.append(error)

            def write():
                try:
                    for offset in range(3):
                        proc.apply_updates(self._batch(workload, 20 + 5 * offset))
                except Exception as error:  # pragma: no cover - fails the test
                    errors.append(error)

            threads = [threading.Thread(target=serve) for _ in range(2)]
            threads.append(threading.Thread(target=write))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert len(reports) == 8
            for report in reports:
                versions = report.extras["process_graph_versions"]
                assert len(versions) <= 1, "a batch mixed graph versions"
            # After the dust settles: answers equal a sequential oracle
            # that applied the same updates.
            oracle = WorkloadRunner(workload, n_workers=1)
            for offset in range(3):
                oracle.apply_updates(self._batch(workload, 20 + 5 * offset))
            assert [_rows(proc.execute_query(q, 5)) for q in queries[:8]] == [
                _rows(oracle.execute_query(q, 5)) for q in queries[:8]
            ]
