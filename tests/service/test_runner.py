"""WorkloadRunner: batch execution, concurrency equivalence, cache modes."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError, ExperimentError
from repro.service import WorkloadRunner


@pytest.fixture(autouse=True)
def _restore_shared_graph(tiny_xkg_workload):
    """The session-scoped workload graph outlives these tests: leave it
    with no external cache attached and let indexes rebuild lazily."""
    yield
    tiny_xkg_workload.graph.detach_match_list_cache()


def outcome_signature(report):
    """What must be invariant across execution strategies."""
    return [
        (o.n_answers, o.n_relaxed, round(o.top_score, 9)) for o in report.outcomes
    ]


def test_rejects_bad_arguments(tiny_xkg_workload):
    with pytest.raises(ExperimentError):
        WorkloadRunner(tiny_xkg_workload, n_workers=0)
    runner = WorkloadRunner(tiny_xkg_workload)
    with pytest.raises(ExperimentError):
        runner.run([], k=5)
    with pytest.raises(ExperimentError):
        runner.run(mode="lukewarm")


def test_warm_run_reports_whole_batch(tiny_xkg_workload):
    runner = WorkloadRunner(tiny_xkg_workload)
    report = runner.run(k=5)

    assert report.n_queries == len(tiny_xkg_workload.queries)
    assert report.mode == "warm"
    assert report.dataset == tiny_xkg_workload.name
    assert report.wall_seconds > 0
    assert report.cache is not None and report.cache.lookups > 0
    names = [o.query_name for o in report.outcomes]
    assert names == [q.name for q in tiny_xkg_workload.queries]


def test_repeated_queries_hit_both_caches(tiny_xkg_workload):
    runner = WorkloadRunner(tiny_xkg_workload)
    queries = tiny_xkg_workload.stretched(3 * len(tiny_xkg_workload.queries))
    report = runner.run(queries, k=5)

    assert report.cache is not None
    assert report.cache.hit_rate > 0.5
    # Rounds 2 and 3 are structural repeats: all planned from cache.
    assert report.extras["plan_cache_hits"] >= 2 * len(tiny_xkg_workload.queries)
    assert report.extras["plan_cache_size"] == len(tiny_xkg_workload.queries)


def test_concurrent_runs_match_sequential(tiny_xkg_workload):
    sequential = WorkloadRunner(tiny_xkg_workload, n_workers=1)
    concurrent = WorkloadRunner(tiny_xkg_workload, n_workers=4)
    queries = tiny_xkg_workload.stretched(2 * len(tiny_xkg_workload.queries))

    seq_report = sequential.run(queries, k=5)
    conc_report = concurrent.run(queries, k=5)

    assert outcome_signature(conc_report) == outcome_signature(seq_report)
    assert conc_report.n_workers == 4
    # Outcomes come back in submission order regardless of completion order.
    assert [o.query_name for o in conc_report.outcomes] == [q.name for q in queries]


def test_cold_matches_warm_answers(tiny_xkg_workload):
    runner = WorkloadRunner(tiny_xkg_workload)
    comparison = runner.compare(k=5)
    assert outcome_signature(comparison["warm"]) == outcome_signature(
        comparison["cold"]
    )
    assert comparison["cold"].mode == "cold"
    assert comparison["cold"].cache is None
    assert comparison["speedup"] > 0


def test_plan_cache_can_be_disabled(tiny_xkg_workload):
    runner = WorkloadRunner(tiny_xkg_workload, plan_cache=False)
    queries = tiny_xkg_workload.stretched(2 * len(tiny_xkg_workload.queries))
    report = runner.run(queries, k=5)
    assert report.extras["plan_cache_hits"] == 0
    assert report.extras["plan_cache_size"] == 0


def test_graph_mutation_between_batches_rebuilds_substrate(music_graph, music_rules):
    from repro.datasets.workload import Workload
    from repro.query.query import TriplePatternQuery
    from repro.kg.pattern import TriplePattern, Variable

    s = Variable("s")
    query = TriplePatternQuery(
        (TriplePattern(s, "rdf:type", "singer"),), name="singers"
    )
    workload = Workload("music", music_graph, music_rules, [query])
    runner = WorkloadRunner(workload)

    before = runner.run(k=2)
    catalog_before = runner.catalog
    assert before.outcomes[0].top_score == pytest.approx(1.0)

    music_graph.add("newcomer", "rdf:type", "singer", score=1000.0)
    after = runner.run(k=2)

    assert runner.catalog is not catalog_before  # version-aware rebuild
    assert after.warmup_seconds > 0
    top = after.outcomes[0]
    assert top.n_answers == 2


def test_stretched_and_batches(tiny_xkg_workload):
    queries = tiny_xkg_workload.stretched(30)
    assert len(queries) == 30
    assert len({q.name for q in queries}) == 30  # round suffixes keep names unique
    assert queries[0].patterns == queries[len(tiny_xkg_workload.queries)].patterns

    batches = list(tiny_xkg_workload.iter_batches(8, queries))
    assert [len(b) for b in batches] == [8, 8, 8, 6]
    assert [q for batch in batches for q in batch] == queries

    with pytest.raises(DatasetError):
        tiny_xkg_workload.stretched(0)
    with pytest.raises(DatasetError):
        next(tiny_xkg_workload.iter_batches(0))
