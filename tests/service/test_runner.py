"""WorkloadRunner: batch execution, concurrency equivalence, cache modes."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError, ExperimentError
from repro.service import WorkloadRunner


@pytest.fixture(autouse=True)
def _restore_shared_graph(tiny_xkg_workload):
    """The session-scoped workload graph outlives these tests: leave it
    with no external cache attached and let indexes rebuild lazily."""
    yield
    tiny_xkg_workload.graph.detach_match_list_cache()


def outcome_signature(report):
    """What must be invariant across execution strategies."""
    return [
        (o.n_answers, o.n_relaxed, round(o.top_score, 9)) for o in report.outcomes
    ]


def test_rejects_bad_arguments(tiny_xkg_workload):
    with pytest.raises(ExperimentError):
        WorkloadRunner(tiny_xkg_workload, n_workers=0)
    runner = WorkloadRunner(tiny_xkg_workload)
    with pytest.raises(ExperimentError):
        runner.run([], k=5)
    with pytest.raises(ExperimentError):
        runner.run(mode="lukewarm")


def test_warm_run_reports_whole_batch(tiny_xkg_workload):
    runner = WorkloadRunner(tiny_xkg_workload)
    report = runner.run(k=5)

    assert report.n_queries == len(tiny_xkg_workload.queries)
    assert report.mode == "warm"
    assert report.dataset == tiny_xkg_workload.name
    assert report.wall_seconds > 0
    assert report.cache is not None and report.cache.lookups > 0
    names = [o.query_name for o in report.outcomes]
    assert names == [q.name for q in tiny_xkg_workload.queries]


def test_repeated_queries_hit_both_caches(tiny_xkg_workload):
    # Result cache off: with it on, repeats are served whole answers and
    # never reach the plan cache this test measures.
    runner = WorkloadRunner(tiny_xkg_workload, result_cache_capacity=0)
    queries = tiny_xkg_workload.stretched(3 * len(tiny_xkg_workload.queries))
    report = runner.run(queries, k=5)

    assert report.cache is not None
    assert report.cache.hit_rate > 0.5
    # Rounds 2 and 3 are structural repeats: all planned from cache.
    assert report.extras["plan_cache_hits"] >= 2 * len(tiny_xkg_workload.queries)
    assert report.extras["plan_cache_size"] == len(tiny_xkg_workload.queries)


def test_concurrent_runs_match_sequential(tiny_xkg_workload):
    sequential = WorkloadRunner(tiny_xkg_workload, n_workers=1)
    concurrent = WorkloadRunner(tiny_xkg_workload, n_workers=4)
    queries = tiny_xkg_workload.stretched(2 * len(tiny_xkg_workload.queries))

    seq_report = sequential.run(queries, k=5)
    conc_report = concurrent.run(queries, k=5)

    assert outcome_signature(conc_report) == outcome_signature(seq_report)
    assert conc_report.n_workers == 4
    # Outcomes come back in submission order regardless of completion order.
    assert [o.query_name for o in conc_report.outcomes] == [q.name for q in queries]


def test_cold_matches_warm_answers(tiny_xkg_workload):
    runner = WorkloadRunner(tiny_xkg_workload)
    comparison = runner.compare(k=5)
    assert outcome_signature(comparison["warm"]) == outcome_signature(
        comparison["cold"]
    )
    assert comparison["cold"].mode == "cold"
    assert comparison["cold"].cache is None
    assert comparison["speedup"] > 0


def test_plan_cache_can_be_disabled(tiny_xkg_workload):
    runner = WorkloadRunner(tiny_xkg_workload, plan_cache=False)
    queries = tiny_xkg_workload.stretched(2 * len(tiny_xkg_workload.queries))
    report = runner.run(queries, k=5)
    assert report.extras["plan_cache_hits"] == 0
    assert report.extras["plan_cache_size"] == 0


def test_graph_mutation_between_batches_rebuilds_substrate(music_graph, music_rules):
    from repro.datasets.workload import Workload
    from repro.query.query import TriplePatternQuery
    from repro.kg.pattern import TriplePattern, Variable

    s = Variable("s")
    query = TriplePatternQuery(
        (TriplePattern(s, "rdf:type", "singer"),), name="singers"
    )
    workload = Workload("music", music_graph, music_rules, [query])
    runner = WorkloadRunner(workload)

    before = runner.run(k=2)
    catalog_before = runner.catalog
    assert before.outcomes[0].top_score == pytest.approx(1.0)

    music_graph.add("newcomer", "rdf:type", "singer", score=1000.0)
    after = runner.run(k=2)

    assert runner.catalog is not catalog_before  # version-aware rebuild
    assert after.warmup_seconds > 0
    top = after.outcomes[0]
    assert top.n_answers == 2


def test_stretched_and_batches(tiny_xkg_workload):
    queries = tiny_xkg_workload.stretched(30)
    assert len(queries) == 30
    assert len({q.name for q in queries}) == 30  # round suffixes keep names unique
    assert queries[0].patterns == queries[len(tiny_xkg_workload.queries)].patterns

    batches = list(tiny_xkg_workload.iter_batches(8, queries))
    assert [len(b) for b in batches] == [8, 8, 8, 6]
    assert [q for batch in batches for q in batch] == queries

    with pytest.raises(DatasetError):
        tiny_xkg_workload.stretched(0)
    with pytest.raises(DatasetError):
        next(tiny_xkg_workload.iter_batches(0))


# ----------------------------------------------------------------------
# Live updates (apply_updates)
# ----------------------------------------------------------------------
def music_workload(music_graph, music_rules):
    from repro.datasets.workload import Workload
    from repro.kg.pattern import TriplePattern, Variable
    from repro.query.query import TriplePatternQuery

    s = Variable("s")
    queries = [
        TriplePatternQuery((TriplePattern(s, "rdf:type", "singer"),), name="singers"),
        TriplePatternQuery((TriplePattern(s, "rdf:type", "writer"),), name="writers"),
    ]
    return Workload("music", music_graph, music_rules, queries)


def test_apply_updates_wraps_serves_and_invalidates(music_graph, music_rules):
    from repro.kg import GraphUpdate, LiveGraph

    runner = WorkloadRunner(music_workload(music_graph, music_rules))
    before = runner.run(k=3)
    assert before.outcomes[0].n_answers == 3

    result = runner.apply_updates(
        [
            GraphUpdate.add("megastar", "rdf:type", "singer", 1000.0),
            GraphUpdate.remove("taher", "rdf:type", "singer"),
            GraphUpdate.remove("nobody", "rdf:type", "singer"),
        ]
    )
    assert isinstance(runner.graph, LiveGraph)
    assert result["adds"] == 1 and result["removes"] == 1
    assert result["absent_removes"] == 1
    # First update wraps the graph: the frozen graph's entries go with the
    # released binding, so there is nothing left to purge.
    assert result["cache_purged"] == 0 and len(runner.cache) == 0

    after = runner.run(k=3)
    top = after.outcomes[0]
    assert top.top_score == pytest.approx(1.0)  # megastar normalises to 1
    assert "updates_applied" in after.extras
    assert after.extras["updates_applied"] == 2
    assert after.extras["graph_version"] == runner.graph.version
    assert "live updates" in after.render()
    # The workload's original graph object was never mutated.
    assert ("megastar", "rdf:type", "singer") not in music_graph

    # Subsequent updates purge the entries the last batch populated.
    result2 = runner.apply_updates(
        [GraphUpdate.add("anotherstar", "rdf:type", "singer", 2000.0)]
    )
    assert result2["cache_purged"] >= 1


def test_apply_updates_answers_match_fresh_runner(music_graph, music_rules):
    """Served answers after updates equal a runner built over the final
    graph — the service-level mutation-equivalence check."""
    from repro.kg import GraphUpdate

    updates = [
        GraphUpdate.add("megastar", "rdf:type", "singer", 500.0),
        GraphUpdate.add("dylan", "rdf:type", "writer", 1.0),  # overwrite
        GraphUpdate.remove("beyonce", "rdf:type", "singer"),
    ]
    runner = WorkloadRunner(music_workload(music_graph, music_rules))
    runner.run(k=4)
    runner.apply_updates(updates)
    live_report = runner.run(k=4)

    fresh_graph = music_graph.__class__(music_graph.triples(), name="fresh")
    for update in updates:
        if update.op == "+":
            fresh_graph.add_triple(update.triple())
        else:
            fresh_graph.remove(*update.spo)
    fresh = WorkloadRunner(music_workload(fresh_graph, music_rules))
    fresh_report = fresh.run(k=4)

    assert outcome_signature(live_report) == outcome_signature(fresh_report)


def test_apply_updates_sharded_runner(tiny_xkg_workload):
    from repro.kg import GraphUpdate

    runner = WorkloadRunner(tiny_xkg_workload, shards=4)
    queries = tiny_xkg_workload.queries[:6]
    before = runner.run(queries, k=5)
    runner.apply_updates(
        [GraphUpdate.add(f"fresh{i}", "rdf:type", "topic", float(i + 1)) for i in range(8)]
    )
    after = runner.run(queries, k=5)
    assert outcome_signature(after) == outcome_signature(before)  # untouched patterns
    assert ("fresh3", "rdf:type", "topic") in runner.graph

    compacted = runner.apply_updates(
        [GraphUpdate.add("fresh99", "rdf:type", "topic", 9.0)], compact=True
    )
    assert compacted["compacted"] is True
    assert runner.graph.delta_size == 0
    again = runner.run(queries, k=5)
    assert outcome_signature(again) == outcome_signature(before)
    assert runner.update_stats["update_batches"] == 2
    assert runner.update_stats["update_compactions"] == 1


def test_apply_updates_auto_compacts_at_threshold(music_graph, music_rules):
    from repro.kg import GraphUpdate

    runner = WorkloadRunner(
        music_workload(music_graph, music_rules), compact_threshold=3
    )
    result = runner.apply_updates(
        [GraphUpdate.add(f"n{i}", "rdf:type", "singer", float(i + 1)) for i in range(4)]
    )
    assert result["compacted"] is True
    # The threshold is enforced per update, so only the post-compaction
    # residue (here the 4th add) may remain pending.
    assert runner.graph.delta_size < 3


def test_apply_updates_refreshes_catalog_incrementally(music_graph, music_rules):
    from repro.kg import GraphUpdate

    runner = WorkloadRunner(music_workload(music_graph, music_rules))
    runner.run(k=3)
    # First update wraps the graph: the catalog rebuilds over the wrapper.
    runner.apply_updates([GraphUpdate.add("a", "rdf:type", "singer", 2.0)])
    runner.run(k=3)
    catalog = runner.catalog
    # Later updates keep the catalog object, refreshed in place.
    runner.apply_updates([GraphUpdate.add("b", "rdf:type", "singer", 3.0)])
    report = runner.run(k=3)
    assert runner.catalog is catalog
    assert report.warmup_seconds == 0.0  # no full rebuild


def test_apply_updates_waits_for_inflight_batches(music_graph, music_rules):
    """The batch gate: a writer blocks until running batches drain, and
    batches queued behind the writer see the new version."""
    import threading

    from repro.kg import GraphUpdate

    runner = WorkloadRunner(music_workload(music_graph, music_rules))
    runner.run(k=2)  # warm up outside the race

    in_batch = threading.Event()
    release_batch = threading.Event()
    original_execute = runner._execute_warm

    def slow_execute(query, k):
        in_batch.set()
        release_batch.wait(timeout=5)
        return original_execute(query, k)

    runner._execute_warm = slow_execute
    batch_thread = threading.Thread(target=lambda: runner.run(k=2))
    batch_thread.start()
    assert in_batch.wait(timeout=5)

    applied = threading.Event()
    update_thread = threading.Thread(
        target=lambda: (
            runner.apply_updates([GraphUpdate.add("x", "rdf:type", "singer", 1.0)]),
            applied.set(),
        )
    )
    update_thread.start()
    # The writer must wait for the in-flight batch.
    assert not applied.wait(timeout=0.2)
    release_batch.set()
    assert applied.wait(timeout=5)
    batch_thread.join(timeout=5)
    update_thread.join(timeout=5)
    assert ("x", "rdf:type", "singer") in runner.graph
