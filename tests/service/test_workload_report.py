"""WorkloadReport and QueryOutcome aggregation arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.service import QueryOutcome, WorkloadReport, percentile
from repro.service.cache import CacheStats


def outcome(
    name: str,
    seconds: float,
    n_relaxed: int = 0,
    n_patterns: int = 2,
    n_answers: int = 5,
) -> QueryOutcome:
    return QueryOutcome(
        query_name=name,
        k=5,
        n_patterns=n_patterns,
        seconds=seconds,
        n_answers=n_answers,
        n_relaxed=n_relaxed,
        plan=f"plan-{name}",
    )


@pytest.fixture
def report() -> WorkloadReport:
    outcomes = tuple(
        outcome(f"q{i}", seconds=(i + 1) / 100.0, n_relaxed=i % 3)
        for i in range(10)
    )
    return WorkloadReport(
        outcomes=outcomes,
        wall_seconds=0.5,
        n_workers=2,
        cache=CacheStats(
            hits=30, misses=10, evictions=1, invalidations=0, size=9, capacity=16
        ),
        dataset="unit",
    )


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 11)]  # 1..10
    assert percentile(values, 50) == 5.0
    assert percentile(values, 90) == 9.0
    assert percentile(values, 99) == 10.0
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 10.0
    assert percentile([3.0], 50) == 3.0
    with pytest.raises(ExperimentError):
        percentile([], 50)
    with pytest.raises(ExperimentError):
        percentile([1.0], 150)


def test_empty_report_rejected():
    with pytest.raises(ExperimentError):
        WorkloadReport(outcomes=(), wall_seconds=1.0)


def test_latency_aggregates(report):
    assert report.n_queries == 10
    assert report.mean_latency == pytest.approx(0.055)
    assert report.max_latency == pytest.approx(0.10)
    assert report.latency_percentile(50) == pytest.approx(0.05)
    assert report.latency_percentile(99) == pytest.approx(0.10)
    assert report.queries_per_second == pytest.approx(20.0)


def test_plan_mix_and_relaxation_counts(report):
    # n_relaxed cycles 0,1,2 over n_patterns=2: 2 => all-relaxed.
    assert report.plan_mix == {"exact": 4, "partial": 3, "all-relaxed": 3}
    assert report.mean_relaxed == pytest.approx(0.9)
    assert report.total_answers == 50


def test_plan_kind_boundaries():
    assert outcome("q", 0.1, n_relaxed=0).plan_kind == "exact"
    assert outcome("q", 0.1, n_relaxed=1).plan_kind == "partial"
    assert outcome("q", 0.1, n_relaxed=2).plan_kind == "all-relaxed"


def test_as_dict_is_flat_and_complete(report):
    summary = report.as_dict()
    assert summary["n_queries"] == 10
    assert summary["p50_latency"] == pytest.approx(0.05)
    assert summary["plan_mix"]["exact"] == 4
    assert summary["cache"]["hit_rate"] == pytest.approx(0.75)
    assert summary["mode"] == "warm"


def test_render_mentions_everything(report):
    text = report.render()
    assert "unit" in text
    assert "queries/s" in text
    assert "p50 / p90 / p99" in text
    assert "exact=4 partial=3 all-relaxed=3" in text
    assert "hit rate 75.0%" in text


def test_cache_stats_hit_rate_zero_when_untouched():
    stats = CacheStats(
        hits=0, misses=0, evictions=0, invalidations=0, size=0, capacity=4
    )
    assert stats.hit_rate == 0.0
    assert stats.lookups == 0
