"""Unit + golden-manifest tests for the scenario pack generator.

The golden test is the determinism contract: rebuilding any shipped pack
from its frozen seed must reproduce the checked-in manifest byte for
byte (counts and the sha256 content checksum).  An intentional generator
change regenerates the file with
``python scripts/validate_scenarios.py --write`` so the golden diff
lands in review next to the change that caused it.
"""

import json
from pathlib import Path

import pytest

from repro.datasets.scenarios import (
    DOMAINS,
    SCENARIOS,
    DomainSchema,
    EntityClass,
    PredicateSpec,
    ScenarioSpec,
    TIE_SCORE,
    build_scenario,
    scenario_names,
)
from repro.errors import DatasetError
from repro.kg.pattern import TriplePattern, Variable

GOLDEN_PATH = Path(__file__).parent / "golden_scenarios.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def packs():
    return {name: build_scenario(name) for name in scenario_names()}


class TestGoldenManifests:
    def test_golden_file_covers_exactly_the_registry(self):
        assert sorted(GOLDEN) == scenario_names()

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_pack_matches_golden_manifest(self, packs, name):
        assert packs[name].manifest() == GOLDEN[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_pack_validates_clean(self, packs, name):
        assert packs[name].validate() == []


class TestRegistry:
    def test_names_sorted_and_registered(self):
        assert scenario_names() == sorted(SCENARIOS)
        assert len(scenario_names()) >= 10

    def test_every_domain_served_by_a_base_pack(self):
        domains_with_base = {
            spec.domain for spec in SCENARIOS.values()
            if spec.name.endswith("-base")
        }
        assert domains_with_base == set(DOMAINS)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(DatasetError, match="commerce-base"):
            build_scenario("nope")

    def test_spec_rejects_unknown_domain(self):
        with pytest.raises(DatasetError, match="unknown domain"):
            ScenarioSpec("x", "warehouse", "desc")

    def test_spec_rejects_unknown_intent(self):
        with pytest.raises(DatasetError, match="unknown intent"):
            ScenarioSpec("x", "commerce", "desc", intents={"teleport": 1})

    def test_spec_rejects_unknown_trait(self):
        with pytest.raises(DatasetError, match="unknown adversarial trait"):
            ScenarioSpec("x", "commerce", "desc", adversarial=("chaos",))

    def test_spec_rejects_bad_k(self):
        with pytest.raises(DatasetError, match="k must be"):
            ScenarioSpec("x", "commerce", "desc", k=0)


class TestSchemaValidation:
    def test_entity_class_needs_positive_count(self):
        with pytest.raises(DatasetError, match="count >= 1"):
            EntityClass("thing", 0)

    def test_predicate_fanout_ordering(self):
        with pytest.raises(DatasetError, match="fanout"):
            PredicateSpec("p", "a", "b", fanout=(3, 2))

    def test_schema_rejects_unknown_class_reference(self):
        with pytest.raises(DatasetError, match="unknown class"):
            DomainSchema(
                "d",
                entities=(EntityClass("a", 2),),
                predicates=(PredicateSpec("p", "a", "ghost", fanout=(1, 1)),),
            )

    def test_schema_rejects_duplicate_classes(self):
        with pytest.raises(DatasetError, match="duplicate entity classes"):
            DomainSchema(
                "d",
                entities=(EntityClass("a", 2), EntityClass("a", 3)),
                predicates=(),
            )


class TestPackStructure:
    def test_workload_names_carry_the_pack_name(self, packs):
        for name, pack in packs.items():
            assert pack.workload.name == f"scenario:{name}"

    def test_hot_pack_repeats_hot_queries(self, packs):
        pack = packs["commerce-hot"]
        repeats = [q for q in pack.workload.queries if "#h" in q.name]
        assert len(repeats) > len(pack.workload.queries) / 2
        # Repeats are structurally identical to their origin (set-semantics
        # equality), which is what makes (query, k) result-cache keys collide.
        by_origin = {q.name: q for q in pack.workload.queries if "#h" not in q.name}
        for repeat in repeats:
            origin = by_origin[repeat.name.split("#h")[0]]
            assert repeat == origin

    def test_update_packs_stream_touches_queried_constants(self, packs):
        pack = packs["social-update-heavy"]
        queried = {
            (p.predicate, p.object)
            for q in pack.workload.queries
            for p in q.patterns
            if isinstance(p.object, str)
        }
        fresh_adds = [
            u for u in pack.updates
            if u.op == "+" and u.subject.startswith("fresh")
        ]
        assert fresh_adds
        assert all((u.predicate, u.object) in queried for u in fresh_adds)

    def test_ties_pack_run_straddles_k(self, packs):
        pack = packs["adversarial-ties"]
        pattern = TriplePattern(Variable("s"), "adv:tied", "adv:tie-bucket")
        scores = [t.score for t in pack.workload.graph.match_list(pattern).triples]
        assert scores.count(TIE_SCORE) > pack.k

    def test_edge_k_pack_has_starved_and_empty_probes(self, packs):
        pack = packs["adversarial-edge-k"]
        assert pack.k == 25
        rare = TriplePattern(Variable("s"), "adv:rare", "adv:rare-bucket")
        assert 0 < pack.workload.graph.count(rare) < pack.k
        absent = TriplePattern(Variable("s"), "adv:rare", "adv:absent-bucket")
        assert pack.workload.graph.count(absent) == 0

    def test_every_pack_mines_rules(self, packs):
        for name, pack in packs.items():
            assert len(pack.workload.rules) > 0, name


class TestExport:
    def test_export_line_sections_ordered(self, packs):
        pack = packs["social-update-heavy"]
        kinds = [line.split("\t", 1)[0] for line in pack.export_lines()]
        assert set(kinds) == {"T", "Q", "U"}
        assert kinds == sorted(kinds, key="TQU".index)
        manifest = pack.manifest()
        assert kinds.count("T") == manifest["triples"]
        assert kinds.count("Q") == manifest["queries"]
        assert kinds.count("U") == manifest["updates"]

    def test_triple_lines_sorted(self, packs):
        lines = [
            line for line in packs["geo-base"].export_lines()
            if line.startswith("T\t")
        ]
        assert lines == sorted(lines)

    def test_seed_override_changes_content_not_contract(self):
        default = build_scenario("media-base")
        reseeded = build_scenario("media-base", seed=5)
        assert reseeded.checksum() != default.checksum()
        assert reseeded.validate() == []
        assert reseeded.manifest()["seed"] == 5
