"""Unit tests for the Twitter-like dataset generator."""

import pytest

from repro.datasets.twitter import HAS_TAG, TwitterConfig, generate_twitter
from repro.errors import DatasetError
from repro.relax.cooccurrence import CooccurrenceIndex


class TestConfigValidation:
    def test_min_terms(self):
        with pytest.raises(DatasetError):
            TwitterConfig(terms_per_tweet_min=1)

    def test_term_range_order(self):
        with pytest.raises(DatasetError):
            TwitterConfig(terms_per_tweet_min=5, terms_per_tweet_max=3)

    def test_queries_positive(self):
        with pytest.raises(DatasetError):
            TwitterConfig(n_queries=0)


class TestGeneratedWorkload:
    def test_basic_shape(self, tiny_twitter_workload):
        w = tiny_twitter_workload
        assert w.name == "twitter"
        assert len(w.queries) == 10
        assert w.graph.predicates() == {HAS_TAG}

    def test_query_sizes(self, tiny_twitter_workload):
        for query in tiny_twitter_workload.queries:
            assert len(query) in (2, 3)

    def test_min_relaxations(self, tiny_twitter_workload):
        assert tiny_twitter_workload.validate(min_relaxations_per_pattern=5) == []

    def test_queries_nonempty(self, tiny_twitter_workload):
        from repro.stats.selectivity import JoinCardinalityEstimator

        w = tiny_twitter_workload
        est = JoinCardinalityEstimator(w.graph, "exact")
        for query in w.queries:
            assert est.cardinality(query) >= 1, query.name

    def test_scores_shared_per_tweet(self, tiny_twitter_workload):
        """Every triple of a tweet carries the tweet's retweet count."""
        per_tweet: dict[str, set[float]] = {}
        for triple in tiny_twitter_workload.graph.triples():
            per_tweet.setdefault(triple.subject, set()).add(triple.score)
        assert all(len(scores) == 1 for scores in per_tweet.values())

    def test_rule_weights_match_cooccurrence(self, tiny_twitter_workload):
        """Mined weights must equal the paper's §4.2 formula exactly."""
        w = tiny_twitter_workload
        index = CooccurrenceIndex(w.graph, HAS_TAG)
        checked = 0
        for rule in w.rules:
            t1, t2 = rule.domain.object, rule.range.object
            assert rule.weight == pytest.approx(index.weight(t1, t2))
            checked += 1
            if checked >= 50:
                break
        assert checked > 0

    def test_deterministic_by_seed(self):
        config = TwitterConfig(n_tweets=300, n_trends=6, n_queries=5, seed=5)
        w1, w2 = generate_twitter(config), generate_twitter(config)
        assert w1.graph.size == w2.graph.size
        assert [q.patterns for q in w1.queries] == [q.patterns for q in w2.queries]

    def test_trend_cooccurrence_structure(self, tiny_twitter_workload):
        """Terms of the same trend co-occur more than cross-trend terms on
        average — the signal the relaxation mining relies on."""
        index = CooccurrenceIndex(tiny_twitter_workload.graph, HAS_TAG)
        same_trend, cross_trend = [], []
        items = index.items()
        for item in items[:30]:
            for other, weight in index.neighbours(item)[:10]:
                trend_a = item.split("_")[0]
                trend_b = other.split("_")[0]
                (same_trend if trend_a == trend_b else cross_trend).append(weight)
        if same_trend and cross_trend:
            assert (sum(same_trend) / len(same_trend)) > (
                sum(cross_trend) / len(cross_trend)
            )
