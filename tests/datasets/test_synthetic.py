"""Unit tests for shared synthetic-generation utilities."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    make_rng,
    name_series,
    weighted_sample_without_replacement,
    zipf_rank_weights,
    zipf_scores,
)
from repro.errors import DatasetError


class TestMakeRng:
    def test_seed_reproducible(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng


class TestZipfScores:
    def test_bounds(self):
        scores = zipf_scores(make_rng(0), 1000, alpha=1.1, max_score=500)
        assert scores.min() >= 1.0
        assert scores.max() <= 500 + 1  # ceil can add at most 1

    def test_heavy_tail_shape(self):
        scores = zipf_scores(make_rng(0), 5000, alpha=1.1)
        # Power law: median far below mean.
        assert np.median(scores) < np.mean(scores)

    def test_eighty_twenty_property(self):
        """The generated scores must exhibit the 80/20 concentration the
        paper's two-bucket model assumes: the top 30% of scores carry well
        over half of the total mass."""
        scores = np.sort(zipf_scores(make_rng(3), 2000, alpha=1.1))[::-1]
        top30 = scores[: len(scores) * 30 // 100].sum()
        assert top30 / scores.sum() > 0.55

    def test_zero_n(self):
        assert len(zipf_scores(make_rng(0), 0)) == 0

    def test_negative_n_rejected(self):
        with pytest.raises(DatasetError):
            zipf_scores(make_rng(0), -1)

    def test_alpha_one_special_case(self):
        scores = zipf_scores(make_rng(0), 100, alpha=1.0)
        assert len(scores) == 100

    def test_bad_alpha(self):
        with pytest.raises(DatasetError):
            zipf_scores(make_rng(0), 10, alpha=0.0)


class TestRankWeights:
    def test_normalised(self):
        weights = zipf_rank_weights(10)
        assert weights.sum() == pytest.approx(1.0)

    def test_descending(self):
        weights = zipf_rank_weights(10, exponent=1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_bad_n(self):
        with pytest.raises(DatasetError):
            zipf_rank_weights(0)


class TestWeightedSample:
    def test_distinct_items(self):
        items = [f"i{j}" for j in range(20)]
        sample = weighted_sample_without_replacement(
            make_rng(0), items, zipf_rank_weights(20), 10
        )
        assert len(sample) == len(set(sample)) == 10

    def test_size_capped_to_population(self):
        items = ["a", "b"]
        sample = weighted_sample_without_replacement(
            make_rng(0), items, zipf_rank_weights(2), 10
        )
        assert sorted(sample) == ["a", "b"]

    def test_zero_size(self):
        assert weighted_sample_without_replacement(
            make_rng(0), ["a"], zipf_rank_weights(1), 0
        ) == []


class TestNameSeries:
    def test_padding_stable(self):
        names = name_series("e", 12)
        assert names[0] == "e000"
        assert names[-1] == "e011"

    def test_custom_width(self):
        assert name_series("t", 2, width=6) == ["t000000", "t000001"]

    def test_negative_rejected(self):
        with pytest.raises(DatasetError):
            name_series("x", -1)


class TestScaleProfiles:
    def test_registry_contains_million(self):
        from repro.datasets.synthetic import SCALE_PROFILES

        assert "million" in SCALE_PROFILES
        assert SCALE_PROFILES["million"].n_triples == 1_000_000
        assert SCALE_PROFILES["smoke"].n_triples <= 10_000

    def test_smoke_profile_exact_count_and_determinism(self):
        from repro.datasets.synthetic import generate_scaled_graph

        first = generate_scaled_graph("smoke", seed=3)
        second = generate_scaled_graph("smoke", seed=3)
        assert first.size == 10_000
        assert (first.store.subjects == second.store.subjects).all()
        assert (first.store.scores == second.store.scores).all()
        assert first.name == "synthetic-smoke"

    def test_different_seeds_differ(self):
        from repro.datasets.synthetic import generate_scaled_graph

        a = generate_scaled_graph("smoke", seed=1)
        b = generate_scaled_graph("smoke", seed=2)
        assert not (a.store.subjects == b.store.subjects).all()

    def test_scores_are_power_law_counts(self):
        from repro.datasets.synthetic import generate_scaled_graph

        graph = generate_scaled_graph("smoke", seed=5)
        scores = graph.store.scores
        assert scores.min() >= 1.0
        assert np.isfinite(scores).all()
        # Heavy tail: the top percent carries far more than its share.
        top = np.sort(scores)[-len(scores) // 100 :]
        assert top.sum() > scores.sum() * 0.05

    def test_graph_is_queryable(self):
        from repro.datasets.synthetic import generate_scaled_graph
        from repro.kg import TriplePattern, Variable

        graph = generate_scaled_graph("smoke", seed=7)
        predicate = next(iter(graph.predicates()))
        matches = graph.match_list(
            TriplePattern(Variable("s"), predicate, Variable("o"))
        )
        assert len(matches) > 0
        assert matches.normalized_scores[0] == 1.0

    def test_unknown_profile_rejected(self):
        from repro.datasets.synthetic import generate_scaled_graph

        with pytest.raises(DatasetError, match="unknown scale profile"):
            generate_scaled_graph("galactic")

    def test_impossible_profile_rejected(self):
        from repro.datasets.synthetic import ScaleProfile

        with pytest.raises(DatasetError, match="combinations"):
            ScaleProfile("bad", n_triples=100, n_entities=2, n_predicates=2)

    def test_custom_profile(self):
        from repro.datasets.synthetic import ScaleProfile, generate_scaled_graph

        profile = ScaleProfile("tiny", n_triples=500, n_entities=300, n_predicates=8)
        graph = generate_scaled_graph(profile, seed=0)
        assert graph.size == 500
