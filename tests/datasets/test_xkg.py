"""Unit tests for the XKG-like dataset generator."""

import pytest

from repro.datasets.xkg import HAS_TOPIC, XKGConfig, generate_xkg
from repro.errors import DatasetError
from repro.kg.namespace import RDF_TYPE


class TestConfigValidation:
    def test_relaxation_budget_enforced(self):
        with pytest.raises(DatasetError):
            XKGConfig(types_per_domain=5, min_relaxations=10)

    def test_queries_positive(self):
        with pytest.raises(DatasetError):
            XKGConfig(n_queries=0)


class TestGeneratedWorkload:
    def test_basic_shape(self, tiny_xkg_workload):
        w = tiny_xkg_workload
        assert w.name == "xkg"
        assert len(w.queries) == 12
        assert w.graph.size > 0
        assert len(w.rules) > 0

    def test_query_sizes_in_range(self, tiny_xkg_workload):
        for query in tiny_xkg_workload.queries:
            assert 2 <= len(query) <= 4

    def test_every_query_has_nonempty_match_lists(self, tiny_xkg_workload):
        w = tiny_xkg_workload
        assert w.validate(require_nonempty=True) == []

    def test_every_query_has_exact_answer(self, tiny_xkg_workload):
        """Queries are seeded from real entities, so the unrelaxed query
        must have at least one answer — the paper's construction."""
        from repro.stats.selectivity import JoinCardinalityEstimator

        w = tiny_xkg_workload
        est = JoinCardinalityEstimator(w.graph, "exact")
        for query in w.queries:
            assert est.cardinality(query) >= 1, query.name

    def test_min_relaxations_satisfied(self, tiny_xkg_workload):
        w = tiny_xkg_workload
        assert w.validate(min_relaxations_per_pattern=10) == []

    def test_predicates_used(self, tiny_xkg_workload):
        predicates = tiny_xkg_workload.graph.predicates()
        assert RDF_TYPE in predicates
        assert HAS_TOPIC in predicates

    def test_deterministic_by_seed(self):
        config = XKGConfig(
            n_domains=3, types_per_domain=12, n_entities=150,
            n_topics=30, n_queries=5, seed=99,
        )
        w1, w2 = generate_xkg(config), generate_xkg(config)
        assert w1.graph.size == w2.graph.size
        assert [q.patterns for q in w1.queries] == [q.patterns for q in w2.queries]
        scores1 = sorted(t.score for t in w1.graph.triples())
        scores2 = sorted(t.score for t in w2.graph.triples())
        assert scores1 == scores2

    def test_different_seeds_differ(self):
        base = dict(
            n_domains=3, types_per_domain=12, n_entities=150,
            n_topics=30, n_queries=5,
        )
        w1 = generate_xkg(XKGConfig(**base, seed=1))
        w2 = generate_xkg(XKGConfig(**base, seed=2))
        assert [q.patterns for q in w1.queries] != [q.patterns for q in w2.queries]

    def test_rule_weights_valid(self, tiny_xkg_workload):
        for rule in tiny_xkg_workload.rules:
            assert 0.0 < rule.weight < 1.0
