"""Unit tests for the Workload bundle."""

import pytest

from repro.datasets.workload import Workload
from repro.errors import DatasetError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


def make_workload():
    kg = KnowledgeGraph()
    kg.add("x", "rdf:type", "a", score=1.0)
    kg.add("x", "rdf:type", "b", score=1.0)
    rules = RuleSet([RelaxationRule(tp("a"), tp("b"), 0.5)])
    queries = [
        TriplePatternQuery((tp("a"),), name="q1"),
        TriplePatternQuery((tp("a"), tp("b")), name="q2"),
    ]
    return Workload("test", kg, rules, queries)


class TestWorkload:
    def test_summary(self):
        w = make_workload()
        summary = w.summary()
        assert summary["queries"] == 2
        assert summary["queries_by_size"] == {1: 1, 2: 1}

    def test_queries_by_size(self):
        grouped = make_workload().queries_by_size()
        assert list(grouped) == [1, 2]

    def test_empty_queries_rejected(self):
        kg = KnowledgeGraph()
        with pytest.raises(DatasetError):
            Workload("empty", kg, RuleSet(), [])

    def test_duplicate_names_rejected(self):
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a")
        queries = [
            TriplePatternQuery((tp("a"),), name="dup"),
            TriplePatternQuery((tp("b"),), name="dup"),
        ]
        with pytest.raises(DatasetError):
            Workload("w", kg, RuleSet(), queries)

    def test_validate_flags_missing_relaxations(self):
        w = make_workload()
        problems = w.validate(min_relaxations_per_pattern=1)
        # q2's pattern 'b' has no rules.
        assert any("q2" in p for p in problems)

    def test_validate_flags_empty_lists(self):
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a")
        queries = [TriplePatternQuery((tp("zzz"),), name="q")]
        w = Workload("w", kg, RuleSet(), queries)
        assert w.validate(require_nonempty=True)

    def test_validate_clean(self):
        w = make_workload()
        assert w.validate() == []
