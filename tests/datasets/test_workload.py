"""Unit tests for the Workload bundle."""

import pytest

from repro.datasets.workload import Workload
from repro.errors import DatasetError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


def make_workload():
    kg = KnowledgeGraph()
    kg.add("x", "rdf:type", "a", score=1.0)
    kg.add("x", "rdf:type", "b", score=1.0)
    rules = RuleSet([RelaxationRule(tp("a"), tp("b"), 0.5)])
    queries = [
        TriplePatternQuery((tp("a"),), name="q1"),
        TriplePatternQuery((tp("a"), tp("b")), name="q2"),
    ]
    return Workload("test", kg, rules, queries)


class TestWorkload:
    def test_summary(self):
        w = make_workload()
        summary = w.summary()
        assert summary["queries"] == 2
        assert summary["queries_by_size"] == {1: 1, 2: 1}

    def test_queries_by_size(self):
        grouped = make_workload().queries_by_size()
        assert list(grouped) == [1, 2]

    def test_empty_queries_rejected(self):
        kg = KnowledgeGraph()
        with pytest.raises(DatasetError):
            Workload("empty", kg, RuleSet(), [])

    def test_duplicate_names_rejected(self):
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a")
        queries = [
            TriplePatternQuery((tp("a"),), name="dup"),
            TriplePatternQuery((tp("b"),), name="dup"),
        ]
        with pytest.raises(DatasetError):
            Workload("w", kg, RuleSet(), queries)

    def test_validate_flags_missing_relaxations(self):
        w = make_workload()
        problems = w.validate(min_relaxations_per_pattern=1)
        # q2's pattern 'b' has no rules.
        assert any("q2" in p for p in problems)

    def test_validate_flags_empty_lists(self):
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a")
        queries = [TriplePatternQuery((tp("zzz"),), name="q")]
        w = Workload("w", kg, RuleSet(), queries)
        assert w.validate(require_nonempty=True)

    def test_validate_clean(self):
        w = make_workload()
        assert w.validate() == []


class TestStretchedSeed:
    def test_same_seed_same_stream(self):
        w = make_workload()
        first = w.stretched(17, seed=42)
        second = w.stretched(17, seed=42)
        assert [q.name for q in first] == [q.name for q in second]
        assert [q.patterns for q in first] == [q.patterns for q in second]

    def test_different_seeds_differ(self):
        w = make_workload()
        streams = {
            tuple(q.name for q in w.stretched(17, seed=seed))
            for seed in range(5)
        }
        assert len(streams) > 1

    def test_seed_preserves_multiset(self):
        w = make_workload()
        plain = w.stretched(17)
        shuffled = w.stretched(17, seed=7)
        assert sorted(q.name for q in plain) == sorted(q.name for q in shuffled)

    def test_none_keeps_cycling_order(self):
        w = make_workload()
        names = [q.name for q in w.stretched(5)]
        assert names == ["q1", "q2", "q1#r1", "q2#r1", "q1#r2"]
