"""Mutation-equivalence suite: live overlays serve exactly what a rebuild would.

The live-update subsystem's headline contract: after applying randomized
update batches (adds, removes, score overwrites) to a :class:`LiveGraph`,
answers and scores — and the match lists under them — are byte-identical
to a graph freshly rebuilt from the final triple set, across the
object/columnar backends and shard counts {1, 4}, both strategies, and
both before and after :meth:`LiveGraph.compact`.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import SpecQPEngine
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import ShardedGraph
from repro.kg.triple import Triple
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet

VAR_S = Variable("s")

#: The four execution configurations the tentpole must hold exactness on.
BASE_FACTORIES = [
    pytest.param(lambda kg: KnowledgeGraph(kg.triples(), name="obj"), id="object"),
    pytest.param(lambda kg: ColumnarGraph.from_graph(kg), id="columnar"),
    pytest.param(
        lambda kg: ShardedGraph.from_graph(kg, 4, strategy="hash-subject"),
        id="sharded-hash-4",
    ),
    pytest.param(
        lambda kg: ShardedGraph.from_graph(kg, 4, strategy="score-range"),
        id="sharded-range-4",
    ),
]


def seed_graph(rng: random.Random, n: int = 350) -> KnowledgeGraph:
    kg = KnowledgeGraph(name="seed")
    while kg.size < n:
        kg.add(
            f"s{rng.randrange(30)}",
            f"p{rng.randrange(4)}",
            f"o{rng.randrange(15)}",
            score=float(rng.randrange(1, 60)),
        )
    return kg


def random_batch(rng: random.Random, graph: KnowledgeGraph, size: int):
    """A randomized mix of fresh adds, score overwrites and removes."""
    existing = [t.spo for t in graph.triples()]
    batch: list[GraphUpdate] = []
    for _ in range(size):
        roll = rng.random()
        if roll < 0.35 and existing:
            batch.append(GraphUpdate.remove(*rng.choice(existing)))
        elif roll < 0.6 and existing:
            spo = rng.choice(existing)
            batch.append(GraphUpdate.add(*spo, float(rng.randrange(1, 150))))
        else:
            batch.append(
                GraphUpdate.add(
                    f"s{rng.randrange(45)}",
                    f"p{rng.randrange(4)}",
                    f"o{rng.randrange(18)}",
                    float(rng.randrange(1, 150)),
                )
            )
    return batch


def replay(kg: KnowledgeGraph, batches) -> KnowledgeGraph:
    """The oracle: the final triple set, built from scratch."""
    scores = {t.spo: t.score for t in kg.triples()}
    for batch in batches:
        for update in batch:
            if update.op == "+":
                scores[update.spo] = update.score
            else:
                scores.pop(update.spo, None)
    return KnowledgeGraph(
        (Triple(s, p, o, score) for (s, p, o), score in scores.items()),
        name="oracle",
    )


def query_set() -> tuple[RuleSet, list[TriplePatternQuery]]:
    rules = RuleSet()
    rules.add(
        RelaxationRule(
            TriplePattern(VAR_S, "p0", "o1"), TriplePattern(VAR_S, "p0", "o2"), 0.7
        )
    )
    rules.add(
        RelaxationRule(
            TriplePattern(VAR_S, "p1", "o3"), TriplePattern(VAR_S, "p1", "o4"), 0.8
        )
    )
    queries = [
        TriplePatternQuery(
            (TriplePattern(VAR_S, "p0", "o1"), TriplePattern(VAR_S, "p1", Variable("o"))),
            name="join",
        ),
        TriplePatternQuery(
            (
                TriplePattern(VAR_S, "p0", "o1"),
                TriplePattern(VAR_S, "p1", "o3"),
                TriplePattern(VAR_S, "p2", Variable("o2")),
            ),
            name="three",
        ),
        TriplePatternQuery((TriplePattern(VAR_S, "p3", Variable("o")),), name="single"),
    ]
    return rules, queries


def answer_rows(engine: SpecQPEngine, query: TriplePatternQuery, k: int):
    result = engine.query(query, k=k)
    return [(answer.bindings, answer.score) for answer in result.answers]


PATTERNS = [
    TriplePattern(VAR_S, f"p{i}", Variable("o")) for i in range(4)
] + [
    TriplePattern(VAR_S, "p0", "o1"),
    TriplePattern("s1", Variable("p"), Variable("o")),
    TriplePattern(Variable("x"), "p2", Variable("x")),
]


@pytest.mark.parametrize("make_base", BASE_FACTORIES)
@pytest.mark.parametrize("seed", [3, 17])
def test_match_lists_identical_to_rebuild(make_base, seed):
    rng = random.Random(seed)
    kg = seed_graph(rng)
    batches = [random_batch(rng, kg, 40), random_batch(rng, kg, 40)]
    oracle = replay(kg, batches)

    live = LiveGraph(make_base(kg))
    for batch in batches:
        live.apply_updates(batch)

    def check(stage: str):
        assert live.size == oracle.size, stage
        for pattern in PATTERNS:
            actual = live.match_list(pattern)
            expected = oracle.match_list(pattern)
            assert actual.triples == expected.triples, (stage, pattern)
            assert actual.max_score == expected.max_score, (stage, pattern)
            assert actual.normalized_scores == expected.normalized_scores, (
                stage,
                pattern,
            )

    check("dirty")
    live.compact()
    check("compacted")


@pytest.mark.parametrize("make_base", BASE_FACTORIES)
def test_answers_identical_to_rebuild(make_base):
    rng = random.Random(29)
    kg = seed_graph(rng)
    batches = [random_batch(rng, kg, 50)]
    oracle = replay(kg, batches)
    rules, queries = query_set()

    live = LiveGraph(make_base(kg))
    live.apply_updates(batches[0])

    for n_shards in (1, 4):
        expected_engine = SpecQPEngine(
            oracle, rules, shards=n_shards if n_shards > 1 else None
        )
        live_engine = SpecQPEngine(live, rules)
        for query in queries:
            for k in (3, 10):
                assert answer_rows(live_engine, query, k) == answer_rows(
                    expected_engine, query, k
                ), (n_shards, query.name, k)

    live.compact()
    post_engine = SpecQPEngine(live, rules)
    reference = SpecQPEngine(oracle, rules)
    for query in queries:
        assert answer_rows(post_engine, query, 5) == answer_rows(
            reference, query, 5
        ), (query.name, "post-compact")


def test_incremental_batches_stay_exact_through_compactions():
    """Many small batches with a tight auto-compact threshold: the overlay
    must stay exact across repeated base swaps."""
    rng = random.Random(41)
    kg = seed_graph(rng, n=200)
    live = LiveGraph(
        ShardedGraph.from_graph(kg, 4, strategy="score-range"),
        compact_threshold=25,
    )
    batches = [random_batch(rng, kg, 15) for _ in range(6)]
    seen_versions = [live.version]
    for batch in batches:
        live.apply_updates(batch)
        seen_versions.append(live.version)
    assert live.compactions >= 2
    assert seen_versions == sorted(set(seen_versions))

    oracle = replay(kg, batches)
    for pattern in PATTERNS:
        actual = live.match_list(pattern)
        expected = oracle.match_list(pattern)
        assert actual.triples == expected.triples
        assert actual.normalized_scores == expected.normalized_scores


def test_statistics_catalog_refresh_tracks_overlay():
    """refresh() drops exactly the touched patterns; rebuilt stats match a
    from-scratch catalog over the final graph."""
    from repro.stats.catalog import StatisticsCatalog

    rng = random.Random(5)
    kg = seed_graph(rng, n=250)
    live = LiveGraph(ColumnarGraph.from_graph(kg))
    catalog = StatisticsCatalog(live)
    untouched = TriplePattern(VAR_S, "p3", Variable("o"))
    touched = TriplePattern(VAR_S, "p0", Variable("o"))
    catalog.pattern_stats(untouched)
    catalog.histogram(touched)
    kept_stats = catalog.pattern_stats(untouched)

    live.apply_updates([GraphUpdate.add("fresh", "p0", "o9", 42.0)])
    summary = catalog.refresh()
    assert summary["dropped"] >= 1

    # Untouched pattern kept its cached stats object (no recompute).
    assert catalog.pattern_stats(untouched) is kept_stats
    # Touched pattern rebuilt and agrees with a cold catalog.
    reference = StatisticsCatalog(live.thaw())
    assert catalog.pattern_stats(touched) == reference.pattern_stats(touched)
    assert catalog.match_count(touched) == reference.match_count(touched)


def test_refresh_falls_back_to_invalidate_without_journal(music_graph):
    from repro.stats.catalog import StatisticsCatalog

    catalog = StatisticsCatalog(music_graph)
    catalog.pattern_stats(TriplePattern(VAR_S, "rdf:type", "singer"))
    summary = catalog.refresh()
    assert summary == {"dropped": 1, "kept": 0}
