"""Equivalence suite: block executor × backends × shards × live updates.

The acceptance bar for the vectorized engine: for every backend the
block path runs on — columnar, sharded (1 and 4 shards), and live
overlays over each, before and after compaction — ``executor="block"``
returns byte-identical ``(bindings, score)`` sequences to
``executor="tuple"``, on a real generated workload with mined rules.

The scenario-matrix section below makes the same claim on generated
coverage traffic: the adversarial packs (boundary-tie runs straddling
k, k > result-count, empty match lists, unselective joins) run in the
default suite across tuple/block/auto × object/columnar/sharded, and
the full every-pack sweep — including each pack's update stream — runs
under the ``slow_scenario`` marker (``make scenarios``).
"""

from __future__ import annotations

import functools

import pytest

from repro.core.engine import SpecQPEngine
from repro.datasets.scenarios import build_scenario, scenario_names
from repro.datasets.workload import Workload
from repro.errors import ExperimentError
from repro.kg.columnar import ColumnarGraph
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.sharding import ShardedGraph
from repro.service import WorkloadRunner

SHARD_COUNTS = (1, 4)


def answer_rows(result):
    return [(answer.bindings, answer.score) for answer in result.answers]


@pytest.fixture(scope="module")
def store_graph(tiny_xkg_workload):
    return ColumnarGraph.from_graph(tiny_xkg_workload.graph)


def _updates(graph):
    """A small mutation batch touching existing and fresh terms."""
    sample = [t for _, t in zip(range(12), graph.triples())]
    updates = [GraphUpdate.remove(*t.spo) for t in sample[:6]]
    updates += [
        GraphUpdate.add(t.subject, t.predicate, t.object, t.score + 5.0)
        for t in sample[6:]
    ]
    updates += [
        GraphUpdate.add(f"fresh-{i}", "rdf:type", sample[0].object, 40.0 + i)
        for i in range(4)
    ]
    return updates


def _backends(store_graph):
    """Every backend family the block engine claims to cover."""
    backends = {"columnar": ColumnarGraph(store_graph.store, name="eq")}
    for n_shards in SHARD_COUNTS:
        backends[f"sharded-{n_shards}"] = ShardedGraph(
            store_graph.store, n_shards, strategy="score-range", name="eq"
        )
    return backends


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_block_equals_tuple_on_static_backends(
    tiny_xkg_workload, store_graph, n_shards
):
    graph = (
        ColumnarGraph(store_graph.store, name="eq")
        if n_shards == 1
        else ShardedGraph(store_graph.store, n_shards, strategy="score-range")
    )
    tuple_engine = SpecQPEngine(graph, tiny_xkg_workload.rules, executor="tuple")
    block_engine = SpecQPEngine(graph, tiny_xkg_workload.rules, executor="block")
    assert block_engine.executor.uses_block_path()
    for query in tiny_xkg_workload.queries:
        for k in (3, 10):
            expected = answer_rows(tuple_engine.query(query, k=k))
            actual = answer_rows(block_engine.query(query, k=k))
            assert actual == expected, (query.name, k, n_shards)


@pytest.mark.parametrize("base_kind", ["columnar", "sharded-4"])
@pytest.mark.parametrize("stage", ["pre-compaction", "post-compaction"])
def test_block_equals_tuple_on_live_overlays(
    tiny_xkg_workload, store_graph, base_kind, stage
):
    base = _backends(store_graph)[base_kind]
    live = LiveGraph(base)
    live.apply_updates(_updates(store_graph))
    if stage == "post-compaction":
        live.compact()
    tuple_engine = SpecQPEngine(live, tiny_xkg_workload.rules, executor="tuple")
    block_engine = SpecQPEngine(live, tiny_xkg_workload.rules, executor="block")
    assert block_engine.executor.uses_block_path()
    for query in tiny_xkg_workload.queries[:6]:
        expected = answer_rows(tuple_engine.query(query, k=10))
        actual = answer_rows(block_engine.query(query, k=10))
        assert actual == expected, (query.name, base_kind, stage)


# ----------------------------------------------------------------------
# Scenario matrix
# ----------------------------------------------------------------------
ADVERSARIAL_PACKS = (
    "adversarial-ties",
    "adversarial-edge-k",
    "adversarial-unselective",
)
EXECUTORS = ("tuple", "block", "auto")


@functools.lru_cache(maxsize=None)
def _scenario_pack(name):
    return build_scenario(name)


def _scenario_backends(pack):
    """The backend families for one pack: the object graph the generator
    built, its columnar conversion, and a 4-shard partition of it."""
    columnar = ColumnarGraph.from_graph(pack.workload.graph)
    return {
        "object": pack.workload.graph,
        "columnar": columnar,
        "sharded-4": ShardedGraph(
            columnar.store, 4, strategy="score-range", name="scenario-eq"
        ),
    }


def _scenario_rows(pack, graph, executor, queries=None):
    engine = SpecQPEngine(graph, pack.workload.rules, executor=executor)
    return [
        answer_rows(engine.query(query, k=pack.k))
        for query in (queries or pack.workload.queries)
    ]


@pytest.mark.parametrize("name", ADVERSARIAL_PACKS)
def test_adversarial_packs_identical_across_executors_and_backends(name):
    """Tier-1: the shapes executor divergence would first show on —
    boundary ties at the k cut, starved k, empty lists, open joins —
    must agree byte-identically everywhere."""
    pack = _scenario_pack(name)
    backends = _scenario_backends(pack)
    reference = _scenario_rows(pack, backends["columnar"], "tuple")
    for backend_name, graph in backends.items():
        for executor in EXECUTORS:
            rows = _scenario_rows(pack, graph, executor)
            assert rows == reference, (name, backend_name, executor)


@pytest.mark.slow_scenario
@pytest.mark.parametrize("name", scenario_names())
def test_every_pack_identical_across_executors_and_backends(name):
    """The full sweep `make scenarios` runs: every shipped pack across
    every backend family and executor, plus — for update-carrying packs
    — the same matrix again on a live overlay pre and post compaction."""
    pack = _scenario_pack(name)
    backends = _scenario_backends(pack)
    reference = _scenario_rows(pack, backends["columnar"], "tuple")
    for backend_name, graph in backends.items():
        for executor in EXECUTORS:
            rows = _scenario_rows(pack, graph, executor)
            assert rows == reference, (name, backend_name, executor)

    if not pack.updates:
        return
    for base_kind in ("columnar", "sharded-4"):
        for stage in ("pre-compaction", "post-compaction"):
            live = LiveGraph(backends[base_kind])
            live.apply_updates(pack.updates)
            if stage == "post-compaction":
                live.compact()
            expected = _scenario_rows(pack, live, "tuple")
            assert expected != reference, (
                f"{name}: update stream changed no answer on {base_kind}"
            )
            for executor in ("block", "auto"):
                rows = _scenario_rows(pack, live, executor)
                assert rows == expected, (name, base_kind, stage, executor)


class TestWorkloadRunnerExecutor:
    def test_unknown_executor_rejected(self, tiny_xkg_workload):
        with pytest.raises(ExperimentError):
            WorkloadRunner(tiny_xkg_workload, executor="simd")

    def test_reports_identical_across_executors(self, tiny_xkg_workload, store_graph):
        workload = Workload(
            "block-eq",
            ColumnarGraph(store_graph.store, name="eq"),
            tiny_xkg_workload.rules,
            tiny_xkg_workload.queries,
        )
        queries = workload.stretched(30)
        tuple_report = WorkloadRunner(workload, executor="tuple").run(queries, k=10)
        block_report = WorkloadRunner(workload, executor="block").run(queries, k=10)
        assert block_report.extras["executor"] == "block"
        assert [o.n_answers for o in block_report.outcomes] == [
            o.n_answers for o in tuple_report.outcomes
        ]
        assert [o.top_score for o in block_report.outcomes] == [
            o.top_score for o in tuple_report.outcomes
        ]

    def test_executor_toggle_never_replays_stale_plans(
        self, tiny_xkg_workload, store_graph
    ):
        """Plan-cache keys include the executor kind, so toggling
        ``executor=`` on one shared runner keeps both strategies' plans
        apart (and the answers identical).  The result cache is disabled
        here — it is executor-independent by design, so with it on the
        toggled batches would be served whole and never reach the plan
        cache this test is about."""
        workload = Workload(
            "block-toggle",
            ColumnarGraph(store_graph.store, name="eq"),
            tiny_xkg_workload.rules,
            tiny_xkg_workload.queries,
        )
        runner = WorkloadRunner(workload, executor="tuple", result_cache_capacity=0)
        queries = workload.queries[:4]
        first = runner.run(queries, k=5)
        plans_after_tuple = first.extras["plan_cache_size"]
        assert first.extras["plan_cache_hits"] == 0

        runner.executor = "block"
        assert runner.executor == "block"
        second = runner.run(queries, k=5)
        # Same queries, other executor: no cross-executor plan reuse.
        assert second.extras["plan_cache_hits"] == 0
        assert second.extras["plan_cache_size"] == plans_after_tuple * 2

        runner.executor = "tuple"
        third = runner.run(queries, k=5)
        # Back on tuple: its own plans are still cached and replayed.
        assert third.extras["plan_cache_hits"] == len(queries)

        assert [o.top_score for o in first.outcomes] == [
            o.top_score for o in second.outcomes
        ] == [o.top_score for o in third.outcomes]

    def test_apply_updates_then_block_serving_stays_equivalent(
        self, tiny_xkg_workload, store_graph
    ):
        workload = Workload(
            "block-live",
            ColumnarGraph(store_graph.store, name="eq"),
            tiny_xkg_workload.rules,
            tiny_xkg_workload.queries,
        )
        queries = workload.queries[:6]
        tuple_runner = WorkloadRunner(workload, executor="tuple")
        block_runner = WorkloadRunner(workload, executor="block")
        updates = _updates(store_graph)
        tuple_runner.apply_updates(updates)
        block_runner.apply_updates(updates)
        tuple_report = tuple_runner.run(queries, k=10)
        block_report = block_runner.run(queries, k=10)
        assert [o.top_score for o in block_report.outcomes] == [
            o.top_score for o in tuple_report.outcomes
        ]
        assert [o.n_answers for o in block_report.outcomes] == [
            o.n_answers for o in tuple_report.outcomes
        ]
