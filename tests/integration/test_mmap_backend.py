"""Mmap-backend equivalence: the tier-1 acceptance bar for v2 snapshots.

A graph attached from a packed v2 snapshot (``ColumnarStore.open_mmap``,
memory-mapped columns, persisted dictionary ranks, score-ordered rows)
must be indistinguishable — byte-identical answers — from the same graph
served off the v1 ``.npz`` snapshot or the object backend, across every
executor, sharded and unsharded, before and after live updates.
"""

import pytest

from repro.kg import storage
from repro.kg.delta import GraphUpdate
from repro.service import WorkloadRunner


def _answer_rows(answers):
    return [(a.bindings, a.score) for a in answers]


@pytest.fixture(scope="module")
def workload(tiny_xkg_workload):
    return tiny_xkg_workload


@pytest.fixture(scope="module")
def snapshot_dir(workload, tmp_path_factory):
    root = tmp_path_factory.mktemp("mmap-backend")
    storage.save_snapshot(workload.graph, root / "g.npz")
    storage.save_snapshot_v2(workload.graph, root / "g.kg2")
    return root


def _runner(workload, graph, *, executor="tuple", shards=1, **kwargs):
    from repro.datasets.workload import Workload

    served = Workload(
        name=workload.name,
        graph=graph,
        rules=workload.rules,
        queries=list(workload.queries),
    )
    return WorkloadRunner(served, executor=executor, shards=shards, **kwargs)


class TestAnswersAcrossBackends:
    @pytest.mark.parametrize("executor", ["tuple", "block", "auto"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_mmap_matches_npz_and_object(
        self, workload, snapshot_dir, executor, shards
    ):
        object_runner = _runner(
            workload, workload.graph, executor=executor, shards=shards
        )
        npz_runner = _runner(
            workload,
            storage.load_snapshot(snapshot_dir / "g.npz"),
            executor=executor,
            shards=shards,
        )
        mmap_runner = _runner(
            workload,
            storage.load_snapshot_v2(snapshot_dir / "g.kg2"),
            executor=executor,
            shards=shards,
        )
        for query in workload.queries:
            expected = _answer_rows(object_runner.execute_query(query, 5))
            assert (
                _answer_rows(npz_runner.execute_query(query, 5)) == expected
            ), (query.name, "npz")
            assert (
                _answer_rows(mmap_runner.execute_query(query, 5)) == expected
            ), (query.name, "mmap")

    def test_reports_agree_on_answer_counts(self, workload, snapshot_dir):
        mmap_runner = _runner(
            workload, storage.load_snapshot_v2(snapshot_dir / "g.kg2")
        )
        npz_runner = _runner(
            workload, storage.load_snapshot(snapshot_dir / "g.npz")
        )
        mmap_report = mmap_runner.run(workload.queries, k=5)
        npz_report = npz_runner.run(workload.queries, k=5)
        for ours, theirs in zip(mmap_report.outcomes, npz_report.outcomes):
            assert ours.n_answers == theirs.n_answers
            assert ours.top_score == theirs.top_score
            assert ours.plan == theirs.plan


class TestUpdatesOverMmap:
    """apply_updates on an mmap-attached graph: copy-on-write overlay."""

    UPDATES = [
        GraphUpdate.add("mmap:new-entity", "rel:linked_to", "mmap:hub", 0.95),
        GraphUpdate.add("mmap:hub", "rel:linked_to", "mmap:new-entity", 0.5),
    ]

    @pytest.mark.parametrize("shards", [1, 4])
    def test_post_update_answers_identical(self, workload, snapshot_dir, shards):
        object_runner = _runner(workload, workload.graph, shards=shards)
        mmap_runner = _runner(
            workload,
            storage.load_snapshot_v2(snapshot_dir / "g.kg2"),
            shards=shards,
        )
        removals = [
            GraphUpdate.remove(t.subject, t.predicate, t.object)
            for t in list(workload.graph.triples())[:5]
        ]
        batch = self.UPDATES + removals
        object_runner.apply_updates(batch)
        mmap_runner.apply_updates(batch)
        for query in workload.queries:
            assert _answer_rows(mmap_runner.execute_query(query, 5)) == _answer_rows(
                object_runner.execute_query(query, 5)
            ), query.name

    def test_snapshot_file_untouched_by_updates(self, workload, snapshot_dir):
        before = (snapshot_dir / "g.kg2").read_bytes()
        runner = _runner(
            workload, storage.load_snapshot_v2(snapshot_dir / "g.kg2")
        )
        runner.apply_updates(self.UPDATES)
        runner.run(workload.queries[:4], k=5)
        assert (snapshot_dir / "g.kg2").read_bytes() == before
