"""End-to-end integration tests across the whole pipeline.

These exercise the full stack — dataset generation → rule mining →
statistics → planning → operator execution → metrics — and assert the
*shape* properties the paper's evaluation relies on.
"""

import pytest

from repro.baselines.naive import NaiveEngine
from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol
from repro.metrics.quality import precision_at_k


@pytest.fixture(scope="module")
def xkg_engine(tiny_xkg_workload):
    return SpecQPEngine(tiny_xkg_workload.graph, tiny_xkg_workload.rules)


@pytest.fixture(scope="module")
def twitter_engine(tiny_twitter_workload):
    return SpecQPEngine(
        tiny_twitter_workload.graph, tiny_twitter_workload.rules
    )


class TestXKGEndToEnd:
    def test_all_queries_run_under_both_engines(self, tiny_xkg_workload, xkg_engine):
        for query in tiny_xkg_workload.queries:
            spec = xkg_engine.query(query, k=5)
            trinit = xkg_engine.query_trinit(query, k=5)
            assert len(spec.answers) <= 5
            assert len(trinit.answers) <= 5
            assert list(spec.scores) == sorted(spec.scores, reverse=True)
            assert list(trinit.scores) == sorted(trinit.scores, reverse=True)

    def test_spec_never_uses_more_memory(self, tiny_xkg_workload, xkg_engine):
        """Spec-QP prunes work: it must never create more answer objects
        than TriniT on the same query (plans coincide in the worst case,
        modulo join-order; allow a small tolerance)."""
        worse = 0
        for query in tiny_xkg_workload.queries:
            spec = xkg_engine.query(query, k=5)
            trinit = xkg_engine.query_trinit(query, k=5)
            if spec.answer_objects_created > trinit.answer_objects_created * 1.05:
                worse += 1
        assert worse <= len(tiny_xkg_workload.queries) // 4

    def test_average_precision_in_paper_band(self, tiny_xkg_workload, xkg_engine):
        precisions = []
        for query in tiny_xkg_workload.queries:
            spec = xkg_engine.query(query, k=5)
            trinit = xkg_engine.query_trinit(query, k=5)
            precisions.append(precision_at_k(spec.answers, trinit.answers))
        assert sum(precisions) / len(precisions) >= 0.6

    def test_spec_answers_are_valid_trinit_answers(self, tiny_xkg_workload, xkg_engine):
        """Every Spec-QP answer must carry its true score: the same
        binding evaluated by the full engine has at least that score
        (Spec-QP can only *miss* relaxations, never inflate scores)."""
        query = tiny_xkg_workload.queries[0]
        spec = xkg_engine.query(query, k=5)
        trinit = xkg_engine.query_trinit(query, k=50)
        true_scores = {a.bindings: a.score for a in trinit.answers}
        for answer in spec.answers:
            if answer.bindings in true_scores:
                assert answer.score <= true_scores[answer.bindings] + 1e-9


class TestTwitterEndToEnd:
    def test_sparse_regime_relaxes_aggressively(
        self, tiny_twitter_workload, twitter_engine
    ):
        """Twitter terms match few tweets, so most queries cannot fill a
        top-10 exactly and Spec-QP must relax most patterns (§4.5.2)."""
        relaxed_fractions = []
        for query in tiny_twitter_workload.queries:
            decision = twitter_engine.plan(query, k=10)
            relaxed_fractions.append(decision.plan.n_relaxed / len(query))
        assert sum(relaxed_fractions) / len(relaxed_fractions) > 0.5

    def test_quality_against_ground_truth(
        self, tiny_twitter_workload, twitter_engine
    ):
        precisions = []
        for query in tiny_twitter_workload.queries:
            spec = twitter_engine.query(query, k=5)
            trinit = twitter_engine.query_trinit(query, k=5)
            precisions.append(precision_at_k(spec.answers, trinit.answers))
        assert sum(precisions) / len(precisions) >= 0.6


class TestNaiveAgreementOnGeneratedData:
    def test_trinit_equals_naive_on_xkg_query(self, tiny_xkg_workload):
        w = tiny_xkg_workload
        engine = SpecQPEngine(w.graph, w.rules)
        naive = NaiveEngine(w.graph, w.rules)
        query = min(w.queries, key=len)  # smallest relaxation space
        t = engine.query_trinit(query, k=5)
        n = naive.query(query, k=5)
        assert [round(a.score, 9) for a in t.answers] == [
            round(a.score, 9) for a in n.answers
        ]


class TestKSweepShape:
    def test_higher_k_requires_no_fewer_relaxations(self, tiny_xkg_workload):
        """§4.5.2: as k grows, queries increasingly require relaxations.
        The *predicted* relaxation count must be monotone-ish: on average
        not decreasing from k=3 to k=10."""
        w = tiny_xkg_workload
        engine = SpecQPEngine(w.graph, w.rules)
        mean_relaxed = {}
        for k in (3, 10):
            counts = [engine.plan(q, k).plan.n_relaxed for q in w.queries]
            mean_relaxed[k] = sum(counts) / len(counts)
        assert mean_relaxed[10] >= mean_relaxed[3] - 1e-9


class TestSessionIntegration:
    def test_full_session_on_twitter(self, tiny_twitter_workload):
        session = ExperimentSession(
            tiny_twitter_workload,
            ks=(3,),
            protocol=TimingProtocol(n_runs=2, n_keep=1),
        )
        records = session.records(3)
        assert len(records) == len(tiny_twitter_workload.queries)
        assert all(r.trinit_total_seconds > 0 for r in records)


class TestConfigVariants:
    def test_nbucket_engine_runs(self, tiny_xkg_workload):
        w = tiny_xkg_workload
        engine = SpecQPEngine(
            w.graph, w.rules, EngineConfig(histogram_kind="n-bucket", n_buckets=6)
        )
        result = engine.query(w.queries[0], k=5)
        assert len(result.answers) <= 5

    def test_independence_selectivity_engine_runs(self, tiny_xkg_workload):
        w = tiny_xkg_workload
        engine = SpecQPEngine(
            w.graph, w.rules, EngineConfig(selectivity_mode="independence")
        )
        result = engine.query(w.queries[0], k=5)
        assert len(result.answers) <= 5

    def test_relaxation_cap_reduces_memory(self, tiny_xkg_workload):
        w = tiny_xkg_workload
        capped = SpecQPEngine(
            w.graph, w.rules, EngineConfig(max_relaxations_per_pattern=2)
        )
        full = SpecQPEngine(w.graph, w.rules)
        query = max(w.queries, key=len)
        capped_result = capped.query_trinit(query, k=5)
        full_result = full.query_trinit(query, k=5)
        assert (
            capped_result.answer_objects_created
            <= full_result.answer_objects_created
        )
