"""Backend-equivalence integration tests.

The acceptance bar for the columnar subsystem: the full engine —
statistics catalog, estimator, PLANGEN, operators — must produce
*identical* answers whether the substrate is the object-backed
:class:`KnowledgeGraph` or a :class:`ColumnarGraph` (including one that
took a round trip through a binary snapshot).
"""

import pytest

from repro.core.engine import SpecQPEngine
from repro.kg import ColumnarGraph
from repro.kg import storage


def _answer_rows(result):
    return [(answer.bindings, answer.score) for answer in result.answers]


@pytest.fixture(scope="module", params=["xkg", "twitter"])
def workload(request, tiny_xkg_workload, tiny_twitter_workload):
    return tiny_xkg_workload if request.param == "xkg" else tiny_twitter_workload


@pytest.fixture(scope="module")
def columnar_graph(workload, tmp_path_factory):
    """The workload graph, frozen and round-tripped through a snapshot."""
    path = tmp_path_factory.mktemp("backend") / f"{workload.name}.npz"
    storage.save_snapshot(workload.graph, path)
    return storage.load_snapshot(path)


class TestEngineAnswersAcrossBackends:
    def test_snapshot_round_trip_preserves_graph(self, workload, columnar_graph):
        assert isinstance(columnar_graph, ColumnarGraph)
        assert columnar_graph.size == workload.graph.size
        assert columnar_graph.predicates() == workload.graph.predicates()

    @pytest.mark.parametrize("k", [3, 10])
    def test_specqp_answers_identical(self, workload, columnar_graph, k):
        object_engine = SpecQPEngine(workload.graph, workload.rules)
        columnar_engine = SpecQPEngine(columnar_graph, workload.rules)
        for query in workload.queries:
            expected = object_engine.query(query, k=k)
            actual = columnar_engine.query(query, k=k)
            assert _answer_rows(actual) == _answer_rows(expected), query.name
            assert actual.plan.describe() == expected.plan.describe(), query.name

    def test_trinit_and_exact_answers_identical(self, workload, columnar_graph):
        object_engine = SpecQPEngine(workload.graph, workload.rules)
        columnar_engine = SpecQPEngine(columnar_graph, workload.rules)
        for query in workload.queries[:5]:
            assert _answer_rows(
                columnar_engine.query_trinit(query, k=5)
            ) == _answer_rows(object_engine.query_trinit(query, k=5))
            assert _answer_rows(
                columnar_engine.query_exact(query, k=5)
            ) == _answer_rows(object_engine.query_exact(query, k=5))
