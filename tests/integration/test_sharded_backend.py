"""Sharded-execution equivalence: the acceptance bar for the sharding PR.

The full engine — statistics catalog, estimator, PLANGEN, operators — must
produce *byte-identical* answers whether it runs over the plain substrate
or a :class:`~repro.kg.sharding.ShardedGraph` with any shard count and
either partitioning strategy, and the service layer must preserve that
through its caches and plan reuse.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SpecQPEngine
from repro.kg.sharding import ShardedGraph
from repro.service import WorkloadRunner


def _answer_rows(result):
    return [(answer.bindings, answer.score) for answer in result.answers]


@pytest.fixture(scope="module", params=["xkg", "twitter"])
def workload(request, tiny_xkg_workload, tiny_twitter_workload):
    return tiny_xkg_workload if request.param == "xkg" else tiny_twitter_workload


class TestShardedEngineEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 3])
    @pytest.mark.parametrize("strategy", ["hash-subject", "score-range"])
    def test_specqp_answers_identical(self, workload, n_shards, strategy):
        plain = SpecQPEngine(workload.graph, workload.rules)
        sharded = SpecQPEngine(
            workload.graph, workload.rules, shards=n_shards,
            shard_strategy=strategy,
        )
        assert isinstance(sharded.graph, ShardedGraph)
        for query in workload.queries:
            expected = plain.query(query, k=10)
            actual = sharded.query(query, k=10)
            assert _answer_rows(actual) == _answer_rows(expected), query.name
            assert actual.plan.describe() == expected.plan.describe(), query.name

    def test_trinit_and_exact_answers_identical(self, workload):
        plain = SpecQPEngine(workload.graph, workload.rules)
        sharded = SpecQPEngine(
            workload.graph, workload.rules, shards=3,
            shard_strategy="score-range",
        )
        for query in workload.queries[:5]:
            assert _answer_rows(
                sharded.query_trinit(query, k=5)
            ) == _answer_rows(plain.query_trinit(query, k=5))
            assert _answer_rows(
                sharded.query_exact(query, k=5)
            ) == _answer_rows(plain.query_exact(query, k=5))

    def test_repeated_queries_stay_identical(self, workload):
        """Cache warm-up must not change sharded results."""
        sharded = SpecQPEngine(
            workload.graph, workload.rules, shards=2,
            shard_strategy="score-range",
        )
        query = workload.queries[0]
        first = sharded.query(query, k=8)
        second = sharded.query(query, k=8)
        assert _answer_rows(first) == _answer_rows(second)


class TestShardedRunnerEquivalence:
    @pytest.mark.parametrize("strategy", ["hash-subject", "score-range"])
    def test_warm_batches_identical(self, workload, strategy):
        queries = workload.stretched(30)
        plain = WorkloadRunner(workload)
        sharded = WorkloadRunner(workload, shards=3, shard_strategy=strategy)
        expected = plain.run(queries, k=6, mode="warm")
        actual = sharded.run(queries, k=6, mode="warm")
        assert [o.n_answers for o in actual.outcomes] == [
            o.n_answers for o in expected.outcomes
        ]
        assert [o.top_score for o in actual.outcomes] == [
            o.top_score for o in expected.outcomes
        ]
        assert [o.plan for o in actual.outcomes] == [
            o.plan for o in expected.outcomes
        ]
        assert actual.extras["shards"] == 3
        assert "shards" in actual.render()

    def test_cold_mode_identical(self, workload):
        queries = workload.queries[:5]
        plain = WorkloadRunner(workload)
        sharded = WorkloadRunner(workload, shards=2)
        expected = plain.run(queries, k=5, mode="cold")
        actual = sharded.run(queries, k=5, mode="cold")
        assert [o.top_score for o in actual.outcomes] == [
            o.top_score for o in expected.outcomes
        ]

    def test_shard_caches_are_used(self, workload):
        runner = WorkloadRunner(workload, shards=2, shard_strategy="score-range")
        report = runner.run(workload.stretched(20), k=5, mode="warm")
        shard_lookups = (
            report.extras["shard_cache_hits"] + report.extras["shard_cache_misses"]
        )
        assert shard_lookups >= 0
        assert runner.graph.shard_cache_stats().size > 0
