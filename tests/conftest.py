"""Shared fixtures: small deterministic graphs, rules and workloads."""

from __future__ import annotations

import random

import pytest

from repro.datasets import (
    TwitterConfig,
    XKGConfig,
    generate_twitter,
    generate_xkg,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RelaxationRule, RuleSet

VAR_S = Variable("s")


@pytest.fixture
def music_graph() -> KnowledgeGraph:
    """A small hand-written graph mirroring the paper's running example.

    Entity scores are chosen so every match list has a clear ranking and
    the exact top-k of small queries can be verified by hand.
    """
    kg = KnowledgeGraph(name="music")
    rows = [
        # singers
        ("shakira", "rdf:type", "singer", 100.0),
        ("beyonce", "rdf:type", "singer", 90.0),
        ("miley", "rdf:type", "singer", 50.0),
        ("taher", "rdf:type", "singer", 1.0),
        # vocalists (overlapping)
        ("shakira", "rdf:type", "vocalist", 80.0),
        ("freddie", "rdf:type", "vocalist", 95.0),
        ("miley", "rdf:type", "vocalist", 40.0),
        # lyricists
        ("shakira", "rdf:type", "lyricist", 70.0),
        ("beyonce", "rdf:type", "lyricist", 60.0),
        ("dylan", "rdf:type", "lyricist", 99.0),
        # writers
        ("dylan", "rdf:type", "writer", 88.0),
        ("freddie", "rdf:type", "writer", 20.0),
        ("beyonce", "rdf:type", "writer", 30.0),
        # guitarists
        ("dylan", "rdf:type", "guitarist", 77.0),
        ("freddie", "rdf:type", "guitarist", 55.0),
        ("shakira", "rdf:type", "guitarist", 33.0),
        # musicians (broad)
        ("shakira", "rdf:type", "musician", 60.0),
        ("beyonce", "rdf:type", "musician", 58.0),
        ("dylan", "rdf:type", "musician", 90.0),
        ("freddie", "rdf:type", "musician", 85.0),
        ("miley", "rdf:type", "musician", 30.0),
    ]
    for s, p, o, score in rows:
        kg.add(s, p, o, score=score)
    return kg


def type_pattern(type_name: str, var: Variable = VAR_S) -> TriplePattern:
    return TriplePattern(var, "rdf:type", type_name)


@pytest.fixture
def music_rules() -> RuleSet:
    """Table-1-style relaxations over the music graph."""
    rules = RuleSet()
    rules.add(RelaxationRule(type_pattern("singer"), type_pattern("vocalist"), 0.8))
    rules.add(RelaxationRule(type_pattern("singer"), type_pattern("musician"), 0.5))
    rules.add(RelaxationRule(type_pattern("lyricist"), type_pattern("writer"), 0.7))
    rules.add(RelaxationRule(type_pattern("guitarist"), type_pattern("musician"), 0.6))
    return rules


@pytest.fixture
def singer_lyricist_query() -> TriplePatternQuery:
    return TriplePatternQuery(
        (type_pattern("singer"), type_pattern("lyricist")),
        projection=(VAR_S,),
        name="singer-lyricist",
    )


@pytest.fixture
def three_pattern_query() -> TriplePatternQuery:
    return TriplePatternQuery(
        (
            type_pattern("singer"),
            type_pattern("lyricist"),
            type_pattern("guitarist"),
        ),
        projection=(VAR_S,),
        name="singer-lyricist-guitarist",
    )


@pytest.fixture
def random_graph() -> KnowledgeGraph:
    """A medium random graph for integration-ish unit tests."""
    rng = random.Random(1234)
    kg = KnowledgeGraph(name="random")
    types = [f"type{i}" for i in range(12)]
    entities = [f"e{i}" for i in range(150)]
    for type_name in types:
        for entity in rng.sample(entities, rng.randint(30, 90)):
            kg.add(entity, "rdf:type", type_name, score=rng.paretovariate(1.3))
    return kg


@pytest.fixture(scope="session")
def tiny_xkg_workload():
    """A very small but fully functional XKG workload (session-scoped:
    generation and stats warming are shared across tests)."""
    return generate_xkg(
        XKGConfig(
            n_domains=4,
            types_per_domain=12,
            n_entities=400,
            n_topics=40,
            n_queries=12,
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def tiny_twitter_workload():
    return generate_twitter(
        TwitterConfig(
            n_tweets=800,
            n_trends=10,
            vocabulary_per_trend=20,
            n_queries=10,
            seed=13,
        )
    )
