"""Unit tests for the timing protocol."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.efficiency import TimingProtocol


class TestTimingProtocol:
    def test_paper_defaults(self):
        protocol = TimingProtocol()
        assert protocol.n_runs == 5
        assert protocol.n_keep == 3

    def test_runs_and_averages_last_k(self):
        calls = []

        def run():
            calls.append(len(calls))
            return len(calls)  # 1, 2, 3, 4, 5

        outcome = TimingProtocol(5, 3).measure(run, float)
        assert len(calls) == 5
        assert outcome.mean_seconds == pytest.approx((3 + 4 + 5) / 3)
        assert outcome.all_seconds == (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_keeps_last_result_object(self):
        counter = iter(range(10))
        outcome = TimingProtocol(3, 2).measure(lambda: next(counter), float)
        assert outcome.result == 2  # third call returned 2

    def test_single_run(self):
        outcome = TimingProtocol(1, 1).measure(lambda: 7.0, float)
        assert outcome.mean_seconds == 7.0

    @pytest.mark.parametrize("n_runs,n_keep", [(0, 1), (3, 0), (3, 4)])
    def test_invalid_settings(self, n_runs, n_keep):
        with pytest.raises(ExperimentError):
            TimingProtocol(n_runs, n_keep)
