"""Unit tests for plain-text table rendering."""

from repro.metrics.report import fmt_ratio, fmt_seconds, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[-1]

    def test_title_underlined(self):
        text = render_table(("x",), [("1",)], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_non_string_cells(self):
        text = render_table(("n", "f"), [(1, 2.5)])
        assert "2.5" in text

    def test_empty_rows(self):
        text = render_table(("h",), [])
        assert "h" in text


class TestFormatters:
    def test_fmt_seconds_milliseconds(self):
        assert fmt_seconds(0.0123) == "12.3ms"

    def test_fmt_seconds_seconds(self):
        assert fmt_seconds(2.345) == "2.35s"

    def test_fmt_ratio(self):
        assert fmt_ratio(3.0, 1.5) == "2.00x"

    def test_fmt_ratio_undefined(self):
        assert fmt_ratio(1.0, 0.0) == "-"
