"""Unit tests for quality metrics."""

import pytest

from repro.errors import ExperimentError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.metrics.quality import (
    precision_at_k,
    prediction_is_exact,
    required_relaxations,
    score_error,
)
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery


def ans(name, score):
    return Answer.from_mapping({"s": name}, score)


class TestPrecision:
    def test_perfect(self):
        truth = [ans("a", 2.0), ans("b", 1.0)]
        assert precision_at_k(truth, truth) == 1.0

    def test_half(self):
        approx = [ans("a", 2.0), ans("x", 1.5)]
        truth = [ans("a", 2.0), ans("b", 1.0)]
        assert precision_at_k(approx, truth) == 0.5

    def test_zero(self):
        assert precision_at_k([ans("x", 1.0)], [ans("a", 1.0)]) == 0.0

    def test_empty_truth(self):
        assert precision_at_k([], []) == 1.0
        assert precision_at_k([ans("a", 1.0)], []) == 0.0

    def test_score_irrelevant(self):
        approx = [ans("a", 99.0)]
        truth = [ans("a", 1.0)]
        assert precision_at_k(approx, truth) == 1.0


class TestScoreError:
    def test_identical_zero_error(self):
        truth = [ans("a", 2.0), ans("b", 1.0)]
        err = score_error(truth, truth, n_patterns=2)
        assert err.mean == 0.0
        assert err.std == 0.0
        assert err.percent == 0.0

    def test_rankwise_deviation(self):
        approx = [ans("a", 1.9), ans("b", 0.8)]
        truth = [ans("a", 2.0), ans("c", 1.0)]
        err = score_error(approx, truth, n_patterns=2)
        assert err.mean == pytest.approx((0.1 + 0.2) / 2)

    def test_missing_ranks_count_fully(self):
        approx = [ans("a", 2.0)]
        truth = [ans("a", 2.0), ans("b", 1.0)]
        err = score_error(approx, truth, n_patterns=2)
        assert err.mean == pytest.approx(0.5)

    def test_percent_normalised_by_max_score(self):
        approx = [ans("a", 1.9)]
        truth = [ans("a", 2.0)]
        err = score_error(approx, truth, n_patterns=2)
        assert err.percent == pytest.approx(100 * 0.1 / 2)

    def test_empty_truth(self):
        err = score_error([], [], n_patterns=2)
        assert err.mean == 0.0

    def test_bad_n_patterns(self):
        with pytest.raises(ExperimentError):
            score_error([], [], n_patterns=0)


class TestRequiredRelaxations:
    @pytest.fixture
    def graph(self):
        kg = KnowledgeGraph()
        kg.add("x", "rdf:type", "a", score=1.0)
        kg.add("x", "rdf:type", "b", score=1.0)
        kg.add("y", "rdf:type", "a", score=1.0)
        # y is NOT of type b.
        return kg

    def test_no_relaxation_needed(self, graph):
        query = TriplePatternQuery(
            (
                TriplePattern(var("s"), "rdf:type", "a"),
                TriplePattern(var("s"), "rdf:type", "b"),
            )
        )
        truth = [ans("x", 2.0)]
        assert required_relaxations(graph, query, truth) == frozenset()

    def test_slot_specific_requirement(self, graph):
        query = TriplePatternQuery(
            (
                TriplePattern(var("s"), "rdf:type", "a"),
                TriplePattern(var("s"), "rdf:type", "b"),
            )
        )
        truth = [ans("x", 2.0), ans("y", 1.5)]  # y needed slot 1 relaxed
        assert required_relaxations(graph, query, truth) == frozenset({1})

    def test_all_slots_required(self, graph):
        query = TriplePatternQuery(
            (
                TriplePattern(var("s"), "rdf:type", "zz1"),
                TriplePattern(var("s"), "rdf:type", "zz2"),
            )
        )
        truth = [ans("x", 1.0)]
        assert required_relaxations(graph, query, truth) == frozenset({0, 1})

    def test_empty_truth(self, graph):
        query = TriplePatternQuery((TriplePattern(var("s"), "rdf:type", "a"),))
        assert required_relaxations(graph, query, []) == frozenset()


class TestPredictionExact:
    def test_exact_match(self):
        assert prediction_is_exact((0, 2), frozenset({0, 2}))

    def test_superset_not_exact(self):
        assert not prediction_is_exact((0, 1, 2), frozenset({0, 2}))

    def test_subset_not_exact(self):
        assert not prediction_is_exact((0,), frozenset({0, 2}))

    def test_empty_sets(self):
        assert prediction_is_exact((), frozenset())
