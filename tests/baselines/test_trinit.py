"""Unit tests for the TriniT baseline engine."""

import pytest

from repro.baselines.trinit import TriniTEngine


@pytest.fixture
def engine(music_graph, music_rules):
    return TriniTEngine(music_graph, music_rules)


class TestTriniT:
    def test_plan_shape(self, engine, three_pattern_query):
        plan = engine.plan(three_pattern_query)
        assert plan.join_group == ()
        assert plan.singletons == (0, 1, 2)

    def test_produces_sorted_topk(self, engine, three_pattern_query):
        result = engine.query(three_pattern_query, k=5)
        scores = list(result.scores)
        assert scores == sorted(scores, reverse=True)
        assert len(result.answers) <= 5

    def test_includes_relaxed_answers(self, engine, singer_lyricist_query):
        result = engine.query(singer_lyricist_query, k=10)
        names = {a.as_dict()["s"] for a in result.answers}
        # freddie is not a singer or lyricist but is vocalist+writer,
        # reachable through both relaxations.
        assert "freddie" in names

    def test_max_relaxations_cap(self, music_graph, music_rules, singer_lyricist_query):
        capped = TriniTEngine(music_graph, music_rules, max_relaxations_per_pattern=0)
        # Cap of 0 is normalised to None by executor contract; use 1.
        capped = TriniTEngine(music_graph, music_rules, max_relaxations_per_pattern=1)
        full = TriniTEngine(music_graph, music_rules)
        capped_result = capped.query(singer_lyricist_query, k=10)
        full_result = full.query(singer_lyricist_query, k=10)
        assert capped_result.answer_objects_created <= full_result.answer_objects_created

    def test_memory_accounting_positive(self, engine, singer_lyricist_query):
        result = engine.query(singer_lyricist_query, k=3)
        assert result.answer_objects_created > 0
