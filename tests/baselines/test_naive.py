"""Unit tests for the naive all-relaxations baseline, and the critical
cross-engine ground-truth agreement property."""

import pytest

from repro.baselines.naive import NaiveEngine
from repro.baselines.trinit import TriniTEngine


@pytest.fixture
def naive(music_graph, music_rules):
    return NaiveEngine(music_graph, music_rules)


@pytest.fixture
def trinit(music_graph, music_rules):
    return TriniTEngine(music_graph, music_rules)


class TestNaive:
    def test_counts_variants(self, naive, singer_lyricist_query):
        result = naive.query(singer_lyricist_query, k=5)
        # singer has 2 relaxations, lyricist has 1: (1+2)*(1+1) = 6.
        assert result.queries_evaluated == 6

    def test_sorted_and_truncated(self, naive, three_pattern_query):
        result = naive.query(three_pattern_query, k=3)
        scores = [a.score for a in result.answers]
        assert scores == sorted(scores, reverse=True)
        assert len(result.answers) <= 3

    def test_max_variants_cap(self, naive, singer_lyricist_query):
        result = naive.query(singer_lyricist_query, k=5, max_variants=2)
        assert result.queries_evaluated == 2

    def test_materialization_counted(self, naive, singer_lyricist_query):
        result = naive.query(singer_lyricist_query, k=5)
        assert result.answers_materialized > 0


class TestGroundTruthAgreement:
    """TriniT (incremental operators) and naive (brute force) must produce
    identical top-k answers with identical scores — this pins the scoring
    semantics across two completely independent implementations."""

    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_two_pattern_agreement(self, naive, trinit, singer_lyricist_query, k):
        n = naive.query(singer_lyricist_query, k=k)
        t = trinit.query(singer_lyricist_query, k=k)
        assert [a.bindings for a in n.answers] == [a.bindings for a in t.answers]
        for na, ta in zip(n.answers, t.answers):
            assert na.score == pytest.approx(ta.score)

    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_three_pattern_agreement(self, naive, trinit, three_pattern_query, k):
        n = naive.query(three_pattern_query, k=k)
        t = trinit.query(three_pattern_query, k=k)
        assert [a.bindings for a in n.answers] == [a.bindings for a in t.answers]
        for na, ta in zip(n.answers, t.answers):
            assert na.score == pytest.approx(ta.score)

    def test_agreement_on_random_graph(self, random_graph):
        """Same property on a bigger random graph with mined rules."""
        from repro.relax.mining import mine_object_relaxations
        from repro.kg.pattern import TriplePattern, var
        from repro.query.query import TriplePatternQuery

        rules = mine_object_relaxations(
            random_graph, "rdf:type", min_weight=0.2, max_rules_per_constant=3
        )
        query = TriplePatternQuery(
            (
                TriplePattern(var("s"), "rdf:type", "type0"),
                TriplePattern(var("s"), "rdf:type", "type1"),
            ),
            projection=(var("s"),),
        )
        n = NaiveEngine(random_graph, rules).query(query, k=10)
        t = TriniTEngine(random_graph, rules).query(query, k=10)
        assert [a.bindings for a in n.answers] == [a.bindings for a in t.answers]
        for na, ta in zip(n.answers, t.answers):
            assert na.score == pytest.approx(ta.score)
