"""Unit tests for the block substrate: codec, encoded lists, blocks, sink."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.kg.columnar import ColumnarGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable, var
from repro.operators.block import (
    Block,
    BlockTopK,
    EncodedListStore,
    EncodedMatchList,
    TermCodec,
    build_encoded_match_list,
    first_occurrence_keep,
    joint_group_ids,
    pack_columns,
)
from repro.operators.memory import ExecutionContext
from repro.operators.scan import SortedScan
from repro.operators.vector_scan import VectorScan


def tp(type_name: str, v: str = "s") -> TriplePattern:
    return TriplePattern(var(v), "rdf:type", type_name)


@pytest.fixture
def graph() -> KnowledgeGraph:
    kg = KnowledgeGraph()
    for i, score in enumerate((10.0, 8.0, 6.0, 4.0, 2.0)):
        kg.add(f"e{i}", "rdf:type", "t", score=score)
    kg.add("e0", "knows", "e1", score=3.0)
    return kg


@pytest.fixture
def columnar(graph) -> ColumnarGraph:
    return ColumnarGraph.from_graph(graph)


class TestTermCodec:
    def test_store_terms_keep_store_ids(self, columnar):
        codec = TermCodec(columnar.store)
        term = columnar.store.term_list()[0]
        assert codec.encode(term) == 0
        assert codec.decode(0) == term
        assert codec.n_ids == columnar.store.n_terms

    def test_side_interning_roundtrip(self, columnar):
        codec = TermCodec(columnar.store)
        base = codec.n_base
        assert codec.encode("never-seen") == base
        assert codec.encode("another") == base + 1
        assert codec.encode("never-seen") == base  # stable
        assert codec.decode(base) == "never-seen"
        assert codec.decode(base + 1) == "another"
        assert codec.n_ids == base + 2

    def test_storeless_codec_interns_everything(self):
        codec = TermCodec(None)
        assert codec.encode("a") == 0
        assert codec.encode("b") == 1
        assert codec.decode(0) == "a"

    def test_injective(self, columnar):
        codec = TermCodec(columnar.store)
        terms = columnar.store.term_list() + ["x1", "x2"]
        ids = [codec.encode(t) for t in terms]
        assert len(set(ids)) == len(terms)

    def test_concurrent_interning_stays_injective(self):
        # One codec is shared by every worker thread of a runner, and
        # side-table interning happens outside the store lock: two
        # threads racing to intern must never hand one id to two terms.
        import threading

        codec = TermCodec(None)
        terms = [f"term-{i}" for i in range(500)]
        barrier = threading.Barrier(4)
        results: list[dict[str, int]] = [{} for _ in range(4)]

        def intern(slot: int) -> None:
            barrier.wait()
            # Each thread walks the terms in a different order so the
            # first-toucher of any given term varies.
            ordered = terms[slot:] + terms[:slot]
            results[slot] = {t: codec.encode(t) for t in ordered}

        threads = [
            threading.Thread(target=intern, args=(slot,)) for slot in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reference = results[0]
        assert len(set(reference.values())) == len(terms)  # injective
        for other in results[1:]:
            assert other == reference  # and identical across threads
        assert all(codec.decode(i) == t for t, i in reference.items())


class TestPackColumns:
    def test_single_column_passthrough(self):
        column = np.array([3, 1, 2], dtype=np.int64)
        packed = pack_columns([column], 10)
        assert packed.tolist() == [3, 1, 2]

    def test_two_columns_collision_free(self):
        a = np.array([0, 1, 1], dtype=np.int64)
        b = np.array([1, 0, 1], dtype=np.int64)
        packed = pack_columns([a, b], 2)
        assert len(set(packed.tolist())) == 3

    def test_zero_columns_pack_to_constant(self):
        packed = pack_columns([], 10, n_rows=4)
        assert packed.tolist() == [0, 0, 0, 0]

    def test_zero_columns_require_n_rows(self):
        with pytest.raises(ExecutionError):
            pack_columns([], 10)

    def test_overflow_returns_none(self):
        a = np.array([0], dtype=np.int64)
        assert pack_columns([a, a, a], 3_000_000) is None

    def test_equal_rows_pack_equal(self):
        a = np.array([5, 5], dtype=np.int64)
        b = np.array([7, 7], dtype=np.int64)
        packed = pack_columns([a, b], 100)
        assert packed[0] == packed[1]


class TestJointGroupIds:
    def test_consistent_across_row_sets(self):
        a = (np.array([1, 2], dtype=np.int64), np.array([3, 4], dtype=np.int64))
        b = (np.array([2, 1, 1], dtype=np.int64), np.array([4, 3, 9], dtype=np.int64))
        ga, gb = joint_group_ids(a, b)
        assert ga[0] == gb[1]  # (1, 3) in both sets
        assert ga[1] == gb[0]  # (2, 4) in both sets
        assert gb[2] not in (ga[0], ga[1])  # (1, 9) matches nothing


class TestFirstOccurrenceKeep:
    def test_keeps_first_in_order(self):
        packed = np.array([7, 3, 7, 3, 9], dtype=np.int64)
        assert first_occurrence_keep(packed).tolist() == [0, 1, 4]


class TestEncodedMatchList:
    def test_from_store_matches_string_list(self, columnar):
        pattern = tp("t")
        encoded = EncodedMatchList.from_store(columnar.store, pattern)
        string_list = columnar.match_list(pattern)
        assert len(encoded) == len(string_list)
        assert encoded.var_names == ("s",)
        terms = columnar.store.term_list()
        decoded = [terms[i] for i in encoded.columns[0].tolist()]
        expected = [t.subject for t in string_list.triples]
        assert decoded == expected
        assert encoded.scores.tolist() == list(string_list.normalized_scores)
        assert encoded.max_score == string_list.max_score

    def test_from_match_list_agrees_with_from_store(self, columnar):
        pattern = TriplePattern(var("s"), "knows", var("o"))
        codec = TermCodec(columnar.store)
        from_store = EncodedMatchList.from_store(columnar.store, pattern)
        from_list = EncodedMatchList.from_match_list(
            columnar.match_list(pattern), pattern, codec
        )
        assert from_store.var_names == from_list.var_names
        for a, b in zip(from_store.columns, from_list.columns):
            assert a.tolist() == b.tolist()
        assert from_store.scores.tolist() == from_list.scores.tolist()

    def test_empty_pattern(self, columnar):
        encoded = EncodedMatchList.from_store(columnar.store, tp("missing"))
        assert len(encoded) == 0
        assert encoded.max_score == 0.0

    def test_repeated_variable_keeps_diagonal(self):
        kg = KnowledgeGraph()
        kg.add("a", "p", "a", score=5.0)
        kg.add("a", "p", "b", score=4.0)
        frozen = ColumnarGraph.from_graph(kg)
        pattern = TriplePattern(var("x"), "p", var("x"))
        encoded = EncodedMatchList.from_store(frozen.store, pattern)
        assert len(encoded) == 1
        assert encoded.var_names == ("x",)

    def test_from_match_list_filters_key_conflated_repeated_variables(self):
        """Regression: match lists are cached by *key*, which conflates
        (?x, p, ?x) with (?x, p, ?y) — encoding a cache-served list for
        the repeated-variable pattern must drop off-diagonal rows, like
        the tuple scan's per-row bind check does."""
        kg = KnowledgeGraph()
        for s, p, o, score in [
            ("a", "p", "a", 4.0), ("a", "p", "b", 3.0), ("b", "p", "b", 5.0),
        ]:
            kg.add(s, p, o, score=score)
        open_pattern = TriplePattern(var("x"), "p", var("y"))
        diagonal = TriplePattern(var("x"), "p", var("x"))
        # The polluted list: built for the open pattern, same index key.
        polluted = kg.match_list(open_pattern)
        codec = TermCodec(None)
        encoded = EncodedMatchList.from_match_list(polluted, diagonal, codec)
        assert len(encoded) == 2  # only (b,p,b) and (a,p,a) survive
        decoded = [codec.decode(i) for i in encoded.columns[0].tolist()]
        assert decoded == ["b", "a"]
        # Scores stay verbatim from the polluted list (the tuple scan's
        # behaviour): normalised by the list's global max.
        assert encoded.scores.tolist() == [1.0, 0.8]

    def test_build_helper_prefers_store(self, columnar):
        codec = TermCodec(columnar.store)
        encoded = build_encoded_match_list(columnar, tp("t"), codec)
        assert len(encoded) == 5

    def test_build_helper_falls_back_without_matching_store(self, graph):
        codec = TermCodec(None)
        encoded = build_encoded_match_list(graph, tp("t"), codec)
        assert len(encoded) == 5
        decoded = [codec.decode(i) for i in encoded.columns[0].tolist()]
        assert decoded == ["e0", "e1", "e2", "e3", "e4"]


class TestEncodedListStore:
    def test_hit_miss_accounting(self, columnar):
        store = EncodedListStore(capacity=4)
        pattern = tp("t")
        first = store.get_or_build(columnar, pattern)
        again = store.get_or_build(columnar, pattern)
        assert again is first
        stats = store.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_bound_to_one_graph(self, columnar, graph):
        store = EncodedListStore()
        store.get_or_build(columnar, tp("t"))
        other = ColumnarGraph.from_graph(graph, name="other")
        with pytest.raises(ExecutionError):
            store.get_or_build(other, tp("t"))
        store.release(columnar)
        assert len(store.get_or_build(other, tp("t"))) == 5  # rebound

    def test_capacity_bound_evicts_lru(self, columnar):
        store = EncodedListStore(capacity=1)
        store.get_or_build(columnar, tp("t"))
        store.get_or_build(columnar, TriplePattern(var("s"), "knows", var("o")))
        assert len(store) == 1
        assert store.stats()["evictions"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ExecutionError):
            EncodedListStore(capacity=0)

    def test_expect_codec_rejects_mid_query_mutation(self, graph):
        # A query captures the codec once and decodes with it at the
        # sink; a leaf built after the graph moved on must fail loudly
        # instead of encoding ids the sink cannot decode.
        store = EncodedListStore()
        codec = store.codec(graph)
        assert len(store.get_or_build(graph, tp("t"), expect_codec=codec)) == 5
        graph.add("e9", "rdf:type", "t", score=1.0)  # version bump
        with pytest.raises(ExecutionError, match="graph changed"):
            store.get_or_build(graph, tp("t"), expect_codec=codec)
        # Without the pin the store refreshes and serves the new version.
        assert len(store.get_or_build(graph, tp("t"))) == 6


class TestBlock:
    def test_column_lookup(self):
        block = Block(
            ("s", "o"),
            (np.array([1], dtype=np.int64), np.array([2], dtype=np.int64)),
            np.array([1.0]),
        )
        assert block.column("o").tolist() == [2]
        with pytest.raises(ExecutionError):
            block.column("missing")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            Block(("s",), (), np.array([1.0]))


class TestVectorScan:
    def test_stream_matches_sorted_scan(self, columnar):
        pattern = tp("t")
        encoded = EncodedMatchList.from_store(columnar.store, pattern)
        context = ExecutionContext()
        scan = VectorScan(encoded, 0, context, weight=0.5, block_size=2)
        reference = SortedScan(columnar, pattern, 0, ExecutionContext(), weight=0.5)
        emitted = []
        while True:
            bound_before = scan.upper_bound()
            ref_bound = reference.upper_bound()
            assert bound_before == ref_bound
            block = scan.next_block()
            if block is None:
                break
            assert len(block) <= 2
            for row in range(len(block)):
                item = reference.next()
                assert float(block.scores[row]) == item.score
                emitted.append(float(block.scores[row]))
        assert reference.next() is None
        assert emitted == sorted(emitted, reverse=True)
        assert context.tuples_pulled == 5

    def test_empty_list_is_born_exhausted(self, columnar):
        encoded = EncodedMatchList.from_store(columnar.store, tp("missing"))
        scan = VectorScan(encoded, 0, ExecutionContext())
        assert scan.next_block() is None
        assert scan.upper_bound() == float("-inf")

    def test_weight_validation(self, columnar):
        encoded = EncodedMatchList.from_store(columnar.store, tp("t"))
        with pytest.raises(ExecutionError):
            VectorScan(encoded, 0, ExecutionContext(), weight=1.5)


class TestBlockTopK:
    def _scan(self, columnar, pattern=None, block_size=1024):
        pattern = pattern or tp("t")
        encoded = EncodedMatchList.from_store(columnar.store, pattern)
        return VectorScan(encoded, 0, ExecutionContext(), block_size=block_size)

    def test_collects_k(self, columnar):
        codec = TermCodec(columnar.store)
        answers = BlockTopK(self._scan(columnar), 3, codec).run()
        assert [a.as_dict()["s"] for a in answers] == ["e0", "e1", "e2"]

    def test_k_larger_than_result_count(self, columnar):
        codec = TermCodec(columnar.store)
        answers = BlockTopK(self._scan(columnar), 100, codec).run()
        assert len(answers) == 5

    def test_empty_source(self, columnar):
        codec = TermCodec(columnar.store)
        answers = BlockTopK(self._scan(columnar, tp("missing")), 10, codec).run()
        assert answers == []

    def test_k_must_be_positive(self, columnar):
        codec = TermCodec(columnar.store)
        with pytest.raises(ExecutionError):
            BlockTopK(self._scan(columnar), 0, codec)

    def test_boundary_ties_resolved_canonically(self):
        kg = KnowledgeGraph()
        # Three equal-scored entities straddle the k=2 boundary.
        for name in ("zeta", "alpha", "mid"):
            kg.add(name, "rdf:type", "t", score=5.0)
        kg.add("top", "rdf:type", "t", score=9.0)
        frozen = ColumnarGraph.from_graph(kg)
        codec = TermCodec(frozen.store)
        answers = BlockTopK(self._scan(frozen), 2, codec).run()
        assert [a.as_dict()["s"] for a in answers] == ["top", "alpha"]

    def test_projection_dedups_on_projected_vars(self, columnar):
        pattern = TriplePattern(var("s"), "rdf:type", var("o"))
        encoded = EncodedMatchList.from_store(columnar.store, pattern)
        scan = VectorScan(encoded, 0, ExecutionContext())
        codec = TermCodec(columnar.store)
        answers = BlockTopK(scan, 10, codec, projection=("o",)).run()
        assert [a.as_dict() for a in answers] == [{"o": "t"}]
        assert answers[0].score == 1.0
