"""Unit tests for the Operator base protocol helpers."""

from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.operators.base import EXHAUSTED_BOUND
from repro.operators.memory import ExecutionContext
from repro.operators.scan import SortedScan


def make_scan(n=5):
    kg = KnowledgeGraph()
    for i in range(n):
        kg.add(f"e{i}", "rdf:type", "t", score=float(n - i))
    return SortedScan(kg, TriplePattern(var("s"), "rdf:type", "t"), 0, ExecutionContext())


class TestIteration:
    def test_iter_consumes_all(self):
        scan = make_scan(4)
        assert len(list(scan)) == 4

    def test_iter_stops_at_none(self):
        scan = make_scan(2)
        items = list(scan)
        assert len(items) == 2
        assert list(scan) == []  # already exhausted


class TestDrain:
    def test_drain_all(self):
        assert len(make_scan(6).drain()) == 6

    def test_drain_with_limit(self):
        scan = make_scan(6)
        assert len(scan.drain(limit=2)) == 2
        # Remaining items still available.
        assert len(scan.drain()) == 4

    def test_drain_limit_larger_than_stream(self):
        assert len(make_scan(3).drain(limit=10)) == 3

    def test_exhausted_bound_constant(self):
        import math

        assert EXHAUSTED_BOUND == -math.inf
