"""Unit tests for the block HRJN rank join and block Incremental Merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.kg.columnar import ColumnarGraph
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.operators.block import BlockTopK, EncodedMatchList, TermCodec
from repro.operators.incremental_merge import IncrementalMerge, WeightedInput
from repro.operators.memory import ExecutionContext
from repro.operators.rank_join import RankJoin
from repro.operators.scan import SortedScan
from repro.operators.topk import TopK
from repro.operators.vector_join import VectorRankJoin
from repro.operators.vector_scan import VectorIncrementalMerge, VectorScan


def tp(type_name: str, v: str = "s") -> TriplePattern:
    return TriplePattern(var(v), "rdf:type", type_name)


@pytest.fixture
def columnar(music_graph) -> ColumnarGraph:
    return ColumnarGraph.from_graph(music_graph)


def vector_scan(columnar, pattern, index, context, weight=1.0, block_size=1024):
    encoded = EncodedMatchList.from_store(columnar.store, pattern)
    return VectorScan(encoded, index, context, weight=weight, block_size=block_size)


def tuple_answers(columnar, patterns, k, projection=None):
    context = ExecutionContext()
    tree = SortedScan(columnar, patterns[0], 0, context)
    for index, pattern in enumerate(patterns[1:], start=1):
        tree = RankJoin(tree, SortedScan(columnar, pattern, index, context), context)
    return TopK(tree, k, projection).run()


def block_answers(columnar, patterns, k, projection=None, block_size=1024):
    context = ExecutionContext()
    codec = TermCodec(columnar.store)
    tree = vector_scan(columnar, patterns[0], 0, context, block_size=block_size)
    for index, pattern in enumerate(patterns[1:], start=1):
        tree = VectorRankJoin(
            tree,
            vector_scan(columnar, pattern, index, context, block_size=block_size),
            context,
            codec,
            block_size=block_size,
        )
    return BlockTopK(tree, k, codec, projection).run()


class TestVectorRankJoin:
    @pytest.mark.parametrize("block_size", [1, 2, 1024])
    @pytest.mark.parametrize("k", [1, 3, 100])
    def test_matches_tuple_join(self, columnar, block_size, k):
        patterns = (tp("singer"), tp("lyricist"))
        expected = tuple_answers(columnar, patterns, k)
        actual = block_answers(columnar, patterns, k, block_size=block_size)
        assert actual == expected
        assert [a.score for a in actual] == [a.score for a in expected]

    def test_three_way_join(self, columnar):
        patterns = (tp("singer"), tp("lyricist"), tp("guitarist"))
        expected = tuple_answers(columnar, patterns, 10)
        actual = block_answers(columnar, patterns, 10)
        assert actual == expected
        assert [a.score for a in actual] == [a.score for a in expected]

    def test_variable_disjoint_cartesian_product(self, columnar):
        patterns = (tp("singer", "a"), tp("writer", "b"))
        expected = tuple_answers(columnar, patterns, 100)
        actual = block_answers(columnar, patterns, 100)
        assert actual == expected
        assert [a.score for a in actual] == [a.score for a in expected]
        assert len(actual) == 4 * 3

    def test_empty_side_yields_nothing(self, columnar):
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        join = VectorRankJoin(
            vector_scan(columnar, tp("singer"), 0, context),
            vector_scan(columnar, tp("missing"), 1, context),
            context,
            codec,
        )
        assert join.next_block() is None
        assert join.upper_bound() == float("-inf")

    def test_blocks_globally_score_sorted(self, columnar):
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        join = VectorRankJoin(
            vector_scan(columnar, tp("singer"), 0, context, block_size=1),
            vector_scan(columnar, tp("musician"), 1, context, block_size=1),
            context,
            codec,
            block_size=2,
        )
        scores: list[float] = []
        for block in join:
            scores.extend(block.scores.tolist())
        assert scores == sorted(scores, reverse=True)

    def test_upper_bound_never_below_future_emissions(self, columnar):
        """The operator contract: every future row's score <= the bound."""
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        join = VectorRankJoin(
            vector_scan(columnar, tp("singer"), 0, context, block_size=1),
            vector_scan(columnar, tp("lyricist"), 1, context, block_size=1),
            context,
            codec,
            block_size=1,
        )
        bound = join.upper_bound()
        for block in join:
            assert float(block.scores[0]) <= bound + 1e-12
            bound = join.upper_bound()
        assert join.upper_bound() == float("-inf")

    def test_overlapping_pattern_coverage_rejected(self, columnar):
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        with pytest.raises(ExecutionError):
            VectorRankJoin(
                vector_scan(columnar, tp("singer"), 0, context),
                vector_scan(columnar, tp("lyricist"), 0, context),
                context,
                codec,
            )

    def test_join_variables_exposed(self, columnar):
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        join = VectorRankJoin(
            vector_scan(columnar, tp("singer"), 0, context),
            vector_scan(columnar, tp("lyricist"), 1, context),
            context,
            codec,
        )
        assert join.join_variables == ("s",)
        assert join.var_names == ("s",)


class _UnpackableCodec(TermCodec):
    """A codec whose id domain is too large for base-n key packing,
    forcing the exact ``joint_group_ids`` fallback paths."""

    @property
    def n_ids(self) -> int:
        return 2**40


class TestUnpackableKeyFallback:
    @pytest.fixture
    def edge_graph(self) -> ColumnarGraph:
        kg = KnowledgeGraph()
        rows = [
            ("a", "knows", "x", 9.0),
            ("a", "knows", "y", 7.0),
            ("b", "knows", "x", 5.0),
            ("a", "likes", "x", 8.0),
            ("b", "likes", "x", 6.0),
            ("a", "likes", "y", 2.0),
        ]
        for s, p, o, score in rows:
            kg.add(s, p, o, score=score)
        return ColumnarGraph.from_graph(kg)

    def _patterns(self):
        return (
            TriplePattern(var("s"), "knows", var("o")),
            TriplePattern(var("s"), "likes", var("o")),
        )

    def test_join_fallback_matches_packed_path(self, edge_graph):
        """Two shared variables + an unpackable id domain: the join must
        take the joint-group-id probe and still match the tuple engine."""
        knows, likes = self._patterns()
        expected = tuple_answers(edge_graph, (knows, likes), 100)

        context = ExecutionContext()
        codec = _UnpackableCodec(edge_graph.store)
        join = VectorRankJoin(
            VectorScan(EncodedMatchList.from_store(edge_graph.store, knows), 0, context, block_size=2),
            VectorScan(EncodedMatchList.from_store(edge_graph.store, likes), 1, context, block_size=2),
            context,
            codec,
            block_size=2,
        )
        actual = BlockTopK(join, 100, codec).run()
        assert actual == expected
        assert [a.score for a in actual] == [a.score for a in expected]

    def test_merge_fallback_dedups_exactly(self, edge_graph):
        knows, likes = self._patterns()
        context = ExecutionContext()
        codec = _UnpackableCodec(edge_graph.store)
        merge = VectorIncrementalMerge(
            [
                (EncodedMatchList.from_store(edge_graph.store, knows), 1.0),
                (EncodedMatchList.from_store(edge_graph.store, likes), 0.5),
            ],
            0,
            context,
            codec,
        )
        reference = IncrementalMerge(
            [
                WeightedInput(
                    SortedScan(edge_graph, knows, 0, ExecutionContext(), 1.0), 1.0
                ),
                WeightedInput(
                    SortedScan(edge_graph, likes, 0, ExecutionContext(), 0.5), 0.5
                ),
            ],
            ExecutionContext(),
        )
        expected = sorted(
            ((item.identity(), item.score) for item in reference),
            key=lambda r: (-r[1], r[0]),
        )
        actual = []
        terms = edge_graph.store.term_list()
        for block in merge:
            for row in range(len(block)):
                identity = tuple(
                    sorted(
                        (name, terms[int(block.column(name)[row])])
                        for name in block.var_names
                    )
                )
                actual.append((identity, float(block.scores[row])))
        assert sorted(actual, key=lambda r: (-r[1], r[0])) == expected


class TestVectorIncrementalMerge:
    def _inputs(self, columnar, specs):
        return [
            (EncodedMatchList.from_store(columnar.store, pattern), weight)
            for pattern, weight in specs
        ]

    def test_matches_tuple_merge(self, columnar):
        specs = [(tp("singer"), 1.0), (tp("vocalist"), 0.8), (tp("musician"), 0.5)]
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        merge = VectorIncrementalMerge(
            self._inputs(columnar, specs), 0, context, codec, block_size=2
        )
        reference = IncrementalMerge(
            [
                WeightedInput(
                    SortedScan(columnar, pattern, 0, ExecutionContext(), weight),
                    weight,
                )
                for pattern, weight in specs
            ],
            ExecutionContext(),
        )
        expected = [(item.identity(), item.score) for item in reference]
        actual: list[tuple[tuple, float]] = []
        terms = columnar.store.term_list()
        for block in merge:
            for row in range(len(block)):
                binding = (("s", terms[int(block.column("s")[row])]),)
                actual.append((binding, float(block.scores[row])))
        assert sorted(actual, key=lambda r: (-r[1], r[0])) == sorted(
            expected, key=lambda r: (-r[1], r[0])
        )
        assert len(actual) == len(expected)

    def test_dedup_keeps_maximum_score(self, columnar):
        # shakira appears as singer (1.0 weighted) and vocalist (0.8
        # weighted); the merged stream must keep only the higher score.
        specs = [(tp("singer"), 1.0), (tp("vocalist"), 0.8)]
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        merge = VectorIncrementalMerge(
            self._inputs(columnar, specs), 0, context, codec
        )
        terms = columnar.store.term_list()
        seen: dict[str, float] = {}
        for block in merge:
            for row in range(len(block)):
                name = terms[int(block.column("s")[row])]
                assert name not in seen
                seen[name] = float(block.scores[row])
        assert seen["shakira"] == 1.0  # singer list top, not 0.8 * vocalist

    def test_upper_bound_before_and_after_prime(self, columnar):
        specs = [(tp("singer"), 1.0), (tp("musician"), 0.5)]
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        merge = VectorIncrementalMerge(
            self._inputs(columnar, specs), 0, context, codec, block_size=1
        )
        assert merge.upper_bound() == 1.0  # singer top, normalized
        block = merge.next_block()
        assert block is not None
        assert merge.upper_bound() <= 1.0

    def test_mismatched_variables_rejected(self, columnar):
        specs = [(tp("singer", "s"), 1.0), (tp("vocalist", "other"), 0.8)]
        context = ExecutionContext()
        codec = TermCodec(columnar.store)
        with pytest.raises(ExecutionError):
            VectorIncrementalMerge(
                self._inputs(columnar, specs), 0, context, codec
            )

    def test_empty_inputs_rejected(self, columnar):
        with pytest.raises(ExecutionError):
            VectorIncrementalMerge([], 0, ExecutionContext(), TermCodec(None))
