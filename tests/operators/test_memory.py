"""Unit tests for execution-context accounting."""

from repro.operators.memory import ExecutionContext


class TestExecutionContext:
    def test_initial_state(self):
        context = ExecutionContext()
        assert context.answer_objects_created == 0
        assert context.tuples_pulled == 0
        assert context.joins_attempted == 0
        assert context.joins_matched == 0

    def test_counts_factory_objects(self):
        context = ExecutionContext()
        context.factory.make({"s": "x"}, 1.0, frozenset({0}))
        left = context.factory.make({"s": "y"}, 1.0, frozenset({0}))
        right = context.factory.make({"s": "y"}, 0.5, frozenset({1}))
        context.factory.join(left, right)
        assert context.answer_objects_created == 4

    def test_snapshot_shape(self):
        context = ExecutionContext()
        context.tuples_pulled = 7
        snap = context.snapshot()
        assert snap["tuples_pulled"] == 7
        assert set(snap) == {
            "answer_objects_created",
            "tuples_pulled",
            "joins_attempted",
            "joins_matched",
        }

    def test_contexts_are_independent(self):
        a, b = ExecutionContext(), ExecutionContext()
        a.factory.make({"s": "x"}, 1.0, frozenset({0}))
        assert b.answer_objects_created == 0
