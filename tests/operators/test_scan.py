"""Unit tests for the SortedScan leaf operator."""

import math

import pytest

from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.operators.memory import ExecutionContext
from repro.operators.scan import SortedScan


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    kg.add("a", "rdf:type", "t", score=10.0)
    kg.add("b", "rdf:type", "t", score=5.0)
    kg.add("c", "rdf:type", "t", score=1.0)
    return kg


def tp(name="t"):
    return TriplePattern(var("s"), "rdf:type", name)


class TestScanOrdering:
    def test_descending_normalized_scores(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        scores = [item.score for item in scan]
        assert scores == [1.0, 0.5, 0.1]

    def test_bindings(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        first = scan.next()
        assert first is not None
        assert first.bindings == {"s": "a"}
        assert first.patterns_covered == frozenset({0})

    def test_exhaustion_returns_none(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        scan.drain()
        assert scan.next() is None
        assert scan.next() is None


class TestScanBounds:
    def test_upper_bound_tracks_head(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        assert scan.upper_bound() == 1.0
        scan.next()
        assert scan.upper_bound() == 0.5
        scan.next()
        scan.next()
        assert scan.upper_bound() == -math.inf

    def test_bounds_never_increase(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        bounds = [scan.upper_bound()]
        while scan.next() is not None:
            bounds.append(scan.upper_bound())
        assert bounds == sorted(bounds, reverse=True)


class TestScanWeight:
    def test_weight_applied(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext(), weight=0.5)
        scores = [item.score for item in scan]
        assert scores == [0.5, 0.25, 0.05]

    def test_invalid_weight(self, graph):
        with pytest.raises(ExecutionError):
            SortedScan(graph, tp(), 0, ExecutionContext(), weight=0.0)
        with pytest.raises(ExecutionError):
            SortedScan(graph, tp(), 0, ExecutionContext(), weight=1.5)


class TestScanAccounting:
    def test_objects_and_pulls_counted(self, graph):
        context = ExecutionContext()
        scan = SortedScan(graph, tp(), 0, context)
        scan.drain()
        assert context.answer_objects_created == 3
        assert context.tuples_pulled == 3

    def test_empty_pattern(self, graph):
        context = ExecutionContext()
        scan = SortedScan(graph, tp("missing"), 0, context)
        assert scan.next() is None
        assert scan.upper_bound() == -math.inf
        assert context.answer_objects_created == 0

    def test_repeated_variable_filtering(self):
        kg = KnowledgeGraph()
        kg.add("a", "knows", "a", score=1.0)
        kg.add("a", "knows", "b", score=2.0)
        pattern = TriplePattern(var("x"), "knows", var("x"))
        scan = SortedScan(kg, pattern, 0, ExecutionContext())
        items = scan.drain()
        assert len(items) == 1
        assert items[0].bindings == {"x": "a"}
