"""Unit tests for the per-shard top-k merge operator."""

from __future__ import annotations

import math

import pytest

from repro.errors import ExecutionError
from repro.kg.columnar import ColumnarStore
from repro.kg.pattern import TriplePattern, Variable
from repro.kg.sharding import ShardedGraph
from repro.kg.triple import Triple
from repro.operators.base import EXHAUSTED_BOUND, Operator
from repro.operators.memory import ExecutionContext
from repro.operators.scan import SortedScan
from repro.operators.shard_merge import ShardMerge, ShardScan, build_leaf_scan
from repro.query.answer import PartialAnswer

VAR_S = Variable("s")
VAR_O = Variable("o")


class ListStream(Operator):
    """A sorted stream over explicit (bindings, score) pairs, counting pulls."""

    def __init__(self, items, covered=frozenset({0})):
        self._items = [
            PartialAnswer(dict(bindings), score, covered)
            for bindings, score in items
        ]
        self._covered = covered
        self._position = 0
        self.pulls = 0

    @property
    def patterns_covered(self):
        return self._covered

    def next(self):
        if self._position >= len(self._items):
            return None
        self.pulls += 1
        item = self._items[self._position]
        self._position += 1
        return item

    def upper_bound(self):
        if self._position >= len(self._items):
            return EXHAUSTED_BOUND
        return self._items[self._position].score


def drain(operator):
    return [
        (tuple(sorted(item.bindings.items())), item.score) for item in operator
    ]


class TestShardMerge:
    def test_merges_in_score_order(self):
        left = ListStream([({"s": "a"}, 0.9), ({"s": "c"}, 0.4)])
        right = ListStream([({"s": "b"}, 0.7), ({"s": "d"}, 0.1)])
        merged = ShardMerge([left, right])
        assert [score for _, score in drain(merged)] == [0.9, 0.7, 0.4, 0.1]

    def test_ties_follow_tie_key(self):
        left = ListStream([({"s": "b"}, 0.5)])
        right = ListStream([({"s": "a"}, 0.5)])
        merged = ShardMerge(
            [left, right], tie_key=lambda item: (item.bindings["s"],)
        )
        assert [b for b, _ in drain(merged)] == [
            (("s", "a"),),
            (("s", "b"),),
        ]

    def test_threshold_skips_cold_streams(self):
        hot = ListStream([({"s": "a"}, 0.9), ({"s": "b"}, 0.8), ({"s": "c"}, 0.7)])
        cold = ListStream([({"s": "x"}, 0.2)])
        merged = ShardMerge([hot, cold])
        assert merged.next().score == 0.9
        assert merged.next().score == 0.8
        # The cold stream's bound (0.2) never reached the frontier.
        assert cold.pulls == 0
        assert merged.stream_states()[1] == "untouched"

    def test_upper_bound_tracks_heads_and_unpeeked(self):
        hot = ListStream([({"s": "a"}, 0.9)])
        cold = ListStream([({"s": "x"}, 0.5)])
        merged = ShardMerge([hot, cold])
        assert merged.upper_bound() == 0.9
        assert merged.next().score == 0.9
        assert merged.upper_bound() == 0.5
        assert merged.next().score == 0.5
        assert merged.next() is None
        assert merged.upper_bound() == EXHAUSTED_BOUND

    def test_empty_streams(self):
        merged = ShardMerge([ListStream([]), ListStream([])])
        assert merged.next() is None
        assert merged.next() is None

    def test_requires_streams(self):
        with pytest.raises(ExecutionError):
            ShardMerge([])

    def test_rejects_mismatched_coverage(self):
        with pytest.raises(ExecutionError):
            ShardMerge(
                [
                    ListStream([], covered=frozenset({0})),
                    ListStream([], covered=frozenset({1})),
                ]
            )


def tiny_sharded(n_shards=3, strategy="score-range"):
    triples = [
        Triple("a", "p", "x", 10.0),
        Triple("b", "p", "x", 8.0),
        Triple("c", "p", "y", 8.0),
        Triple("d", "p", "y", 5.0),
        Triple("e", "p", "z", 3.0),
        Triple("f", "p", "z", 1.0),
        Triple("a", "q", "x", 6.0),
    ]
    store = ColumnarStore.from_triples(triples)
    return ShardedGraph(store, n_shards, strategy=strategy)


class TestShardScan:
    def test_lazy_until_pulled(self):
        graph = tiny_sharded()
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        global_max, inputs = graph.shard_leaf_inputs(pattern)
        entry = inputs[0]
        scan = ShardScan(
            entry.graph, pattern, 0, ExecutionContext(), 1.0,
            global_max, entry.n_matches, entry.max_score, entry.match_list,
        )
        assert not scan.built
        assert scan.upper_bound() == 1.0  # 10.0 / 10.0, exact
        assert scan.next() is not None
        assert scan.built

    def test_empty_shard_never_builds(self):
        graph = tiny_sharded()
        pattern = TriplePattern(VAR_S, "q", VAR_O)  # one match, hottest shard
        global_max, inputs = graph.shard_leaf_inputs(pattern)
        empty = [entry for entry in inputs if entry.n_matches == 0]
        assert empty, "expected at least one shard without 'q' matches"
        scan = ShardScan(
            empty[0].graph, pattern, 0, ExecutionContext(), 1.0,
            global_max, 0, 0.0, None,
        )
        assert scan.upper_bound() == EXHAUSTED_BOUND
        assert scan.next() is None
        assert not scan.built

    def test_rescales_to_global_max(self):
        graph = tiny_sharded(n_shards=2, strategy="score-range")
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        global_max, inputs = graph.shard_leaf_inputs(pattern)
        cold = inputs[-1]
        assert cold.max_score < global_max
        scan = ShardScan(
            cold.graph, pattern, 0, ExecutionContext(), 1.0,
            global_max, cold.n_matches, cold.max_score, cold.match_list,
        )
        first = scan.next()
        # Normalised against the global maximum, not the shard's own.
        assert math.isclose(first.score, cold.max_score / global_max)
        assert scan.upper_bound() <= first.score


class TestBuildLeafScan:
    def test_plain_graph_gets_sorted_scan(self):
        from repro.kg.graph import KnowledgeGraph

        kg = KnowledgeGraph()
        kg.add("a", "p", "x", score=2.0)
        leaf = build_leaf_scan(kg, TriplePattern(VAR_S, "p", VAR_O), 0, ExecutionContext())
        assert isinstance(leaf, SortedScan)

    @pytest.mark.parametrize("strategy", ["hash-subject", "score-range"])
    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    def test_sharded_stream_identical_to_unsharded(self, strategy, n_shards):
        graph = tiny_sharded(n_shards=n_shards, strategy=strategy)
        from repro.kg.columnar import ColumnarGraph

        plain = ColumnarGraph(graph.store)
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        sharded_leaf = build_leaf_scan(graph, pattern, 0, ExecutionContext())
        plain_leaf = build_leaf_scan(plain, pattern, 0, ExecutionContext())
        assert drain(sharded_leaf) == drain(plain_leaf)

    def test_weighted_leaf_matches_unsharded(self):
        graph = tiny_sharded(n_shards=3, strategy="hash-subject")
        from repro.kg.columnar import ColumnarGraph

        plain = ColumnarGraph(graph.store)
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        sharded = build_leaf_scan(graph, pattern, 0, ExecutionContext(), weight=0.6)
        unsharded = build_leaf_scan(plain, pattern, 0, ExecutionContext(), weight=0.6)
        assert drain(sharded) == drain(unsharded)

    def test_score_range_top_k_skips_cold_shards(self):
        graph = tiny_sharded(n_shards=3, strategy="score-range")
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        leaf = build_leaf_scan(graph, pattern, 0, ExecutionContext())
        assert isinstance(leaf, ShardMerge)
        leaf.next()  # top-1
        states = leaf.stream_states()
        assert states[-1].endswith(":lazy"), states

    def test_cached_merged_list_takes_sorted_scan_fast_path(self):
        graph = tiny_sharded(n_shards=3, strategy="score-range")
        pattern = TriplePattern(VAR_S, "p", VAR_O)
        graph.match_list(pattern)  # merged list now cached on the graph
        leaf = build_leaf_scan(graph, pattern, 0, ExecutionContext())
        assert isinstance(leaf, SortedScan)
        plain_leaf = build_leaf_scan(
            tiny_sharded(n_shards=1), pattern, 0, ExecutionContext()
        )
        assert drain(leaf) == drain(plain_leaf)

    def test_single_nonempty_shard_collapses_to_shard_scan(self):
        graph = tiny_sharded(n_shards=3, strategy="score-range")
        # 'q' has exactly one match (score 6.0), in exactly one shard.
        pattern = TriplePattern(VAR_S, "q", VAR_O)
        leaf = build_leaf_scan(graph, pattern, 0, ExecutionContext())
        assert isinstance(leaf, ShardScan)
        assert [score for _, score in drain(leaf)] == [1.0]

    def test_no_matches_anywhere(self):
        graph = tiny_sharded(n_shards=2)
        leaf = build_leaf_scan(
            graph, TriplePattern(VAR_S, "missing", VAR_O), 0, ExecutionContext()
        )
        assert leaf.next() is None
        assert leaf.upper_bound() == EXHAUSTED_BOUND
