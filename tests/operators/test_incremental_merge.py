"""Unit tests for the Incremental Merge operator."""

import math

import pytest

from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.operators.incremental_merge import IncrementalMerge, WeightedInput
from repro.operators.memory import ExecutionContext
from repro.operators.scan import SortedScan


def tp(name):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    kg.add("a", "rdf:type", "singer", score=10.0)   # normalized 1.0
    kg.add("b", "rdf:type", "singer", score=5.0)    # 0.5
    kg.add("c", "rdf:type", "vocalist", score=8.0)  # 1.0 -> weighted 0.8
    kg.add("a", "rdf:type", "vocalist", score=4.0)  # 0.5 -> weighted 0.4
    return kg


def merge_of(graph, specs, context=None):
    context = context or ExecutionContext()
    inputs = [
        WeightedInput(
            scan=SortedScan(graph, pattern, 0, context, weight=weight),
            weight=weight,
        )
        for pattern, weight in specs
    ]
    return IncrementalMerge(inputs, context), context


class TestMergedOrder:
    def test_globally_sorted(self, graph):
        merge, _ = merge_of(graph, [(tp("singer"), 1.0), (tp("vocalist"), 0.8)])
        scores = [item.score for item in merge]
        assert scores == sorted(scores, reverse=True)

    def test_exact_merge_sequence(self, graph):
        merge, _ = merge_of(graph, [(tp("singer"), 1.0), (tp("vocalist"), 0.8)])
        items = merge.drain()
        # singer a@1.0, vocalist c@0.8, singer b@0.5; vocalist a@0.4 is a
        # duplicate binding of a@1.0 and must be dropped.
        assert [(i.bindings["s"], pytest.approx(i.score)) for i in items] == [
            ("a", pytest.approx(1.0)),
            ("c", pytest.approx(0.8)),
            ("b", pytest.approx(0.5)),
        ]

    def test_duplicate_keeps_max(self, graph):
        merge, _ = merge_of(graph, [(tp("singer"), 1.0), (tp("vocalist"), 0.8)])
        by_binding = {i.bindings["s"]: i.score for i in merge.drain()}
        assert by_binding["a"] == pytest.approx(1.0)  # not 0.4

    def test_single_input_passthrough(self, graph):
        merge, _ = merge_of(graph, [(tp("singer"), 1.0)])
        assert [i.bindings["s"] for i in merge.drain()] == ["a", "b"]


class TestBounds:
    def test_initial_upper_bound(self, graph):
        merge, _ = merge_of(graph, [(tp("singer"), 1.0), (tp("vocalist"), 0.8)])
        assert merge.upper_bound() == pytest.approx(1.0)

    def test_bound_never_below_next_emitted(self, graph):
        merge, _ = merge_of(graph, [(tp("singer"), 1.0), (tp("vocalist"), 0.8)])
        while True:
            bound = merge.upper_bound()
            item = merge.next()
            if item is None:
                break
            assert item.score <= bound + 1e-9

    def test_exhausted_bound(self, graph):
        merge, _ = merge_of(graph, [(tp("singer"), 1.0)])
        merge.drain()
        assert merge.next() is None
        assert merge.upper_bound() == -math.inf


class TestValidation:
    def test_empty_inputs_rejected(self):
        with pytest.raises(ExecutionError):
            IncrementalMerge([], ExecutionContext())

    def test_mismatched_coverage_rejected(self, graph):
        context = ExecutionContext()
        a = WeightedInput(SortedScan(graph, tp("singer"), 0, context), 1.0)
        b = WeightedInput(SortedScan(graph, tp("vocalist"), 1, context), 0.8)
        with pytest.raises(ExecutionError):
            IncrementalMerge([a, b], context)


class TestLaziness:
    def test_priming_reads_one_tuple_per_input(self, graph):
        merge, context = merge_of(
            graph, [(tp("singer"), 1.0), (tp("vocalist"), 0.8)]
        )
        merge.next()  # first output
        # One prime pull per input, plus one refill after the pop.
        assert context.tuples_pulled <= 3

    def test_empty_relaxation_lists_ok(self, graph):
        merge, _ = merge_of(
            graph, [(tp("singer"), 1.0), (tp("nonexistent"), 0.9)]
        )
        assert [i.bindings["s"] for i in merge.drain()] == ["a", "b"]
