"""Unit tests for the Top-K sink."""

import pytest

from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.operators.base import EXHAUSTED_BOUND, Operator
from repro.operators.memory import ExecutionContext
from repro.operators.scan import SortedScan
from repro.operators.topk import TopK
from repro.query.answer import PartialAnswer


def tp(name="t"):
    return TriplePattern(var("s"), "rdf:type", name)


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    for i, score in enumerate((10.0, 8.0, 6.0, 4.0, 2.0)):
        kg.add(f"e{i}", "rdf:type", "t", score=score)
    return kg


class _StubOperator(Operator):
    """Emits a fixed list of partial answers."""

    def __init__(self, items):
        self._items = list(items)
        self._pos = 0

    def next(self):
        if self._pos >= len(self._items):
            return None
        item = self._items[self._pos]
        self._pos += 1
        return item

    def upper_bound(self):
        if self._pos >= len(self._items):
            return EXHAUSTED_BOUND
        return self._items[self._pos].score

    @property
    def patterns_covered(self):
        return frozenset({0})


def pa(binding, score):
    return PartialAnswer({"s": binding}, score, frozenset({0}))


class TestTopK:
    def test_collects_k(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        answers = TopK(scan, 3).run()
        assert len(answers) == 3
        assert [a.as_dict()["s"] for a in answers] == ["e0", "e1", "e2"]

    def test_fewer_than_k_available(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        answers = TopK(scan, 100).run()
        assert len(answers) == 5

    def test_k_must_be_positive(self, graph):
        scan = SortedScan(graph, tp(), 0, ExecutionContext())
        with pytest.raises(ExecutionError):
            TopK(scan, 0)

    def test_duplicate_bindings_deduped_keeping_first(self):
        source = _StubOperator([pa("x", 1.0), pa("x", 0.8), pa("y", 0.5)])
        answers = TopK(source, 10).run()
        assert len(answers) == 2
        assert answers[0].score == 1.0

    def test_projection_dedups_on_projected_vars(self):
        items = [
            PartialAnswer({"s": "x", "o": "1"}, 1.0, frozenset({0})),
            PartialAnswer({"s": "x", "o": "2"}, 0.9, frozenset({0})),
        ]
        answers = TopK(_StubOperator(items), 10, projection=("s",)).run()
        assert len(answers) == 1
        assert answers[0].as_dict() == {"s": "x"}

    def test_out_of_order_input_detected(self):
        source = _StubOperator([pa("a", 0.5), pa("b", 0.9)])
        with pytest.raises(ExecutionError):
            TopK(source, 10).run()

    def test_empty_input(self):
        assert TopK(_StubOperator([]), 5).run() == []
