"""Unit tests for the HRJN-style Rank Join operator."""

import math

import pytest

from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.operators.memory import ExecutionContext
from repro.operators.rank_join import RankJoin
from repro.operators.scan import SortedScan


def tp(name, v="s"):
    return TriplePattern(var(v), "rdf:type", name)


@pytest.fixture
def graph():
    kg = KnowledgeGraph()
    for e, score in (("a", 10.0), ("b", 8.0), ("c", 2.0)):
        kg.add(e, "rdf:type", "t1", score=score)
    for e, score in (("b", 9.0), ("c", 6.0), ("d", 3.0)):
        kg.add(e, "rdf:type", "t2", score=score)
    return kg


def join_of(graph, p1, p2, context=None):
    context = context or ExecutionContext()
    left = SortedScan(graph, p1, 0, context)
    right = SortedScan(graph, p2, 1, context)
    return RankJoin(left, right, context), context


class TestJoinCorrectness:
    def test_join_results(self, graph):
        join, _ = join_of(graph, tp("t1"), tp("t2"))
        results = {i.bindings["s"]: i.score for i in join.drain()}
        # t1 normalized: a=1.0 b=0.8 c=0.2 ; t2 normalized: b=1.0 c=2/3 d=1/3
        assert set(results) == {"b", "c"}
        assert results["b"] == pytest.approx(1.8)
        assert results["c"] == pytest.approx(0.2 + 2 / 3)

    def test_descending_output_order(self, graph):
        join, _ = join_of(graph, tp("t1"), tp("t2"))
        scores = [i.score for i in join.drain()]
        assert scores == sorted(scores, reverse=True)

    def test_coverage_union(self, graph):
        join, _ = join_of(graph, tp("t1"), tp("t2"))
        assert join.patterns_covered == frozenset({0, 1})
        item = join.next()
        assert item is not None
        assert item.patterns_covered == frozenset({0, 1})

    def test_empty_side_yields_nothing(self, graph):
        join, _ = join_of(graph, tp("t1"), tp("missing"))
        assert join.next() is None

    def test_no_shared_variables_cartesian(self, graph):
        join, _ = join_of(graph, tp("t1", "s"), tp("t2", "other"))
        results = join.drain()
        assert len(results) == 9
        scores = [i.score for i in results]
        assert scores == sorted(scores, reverse=True)


class TestEarlyTermination:
    def test_top1_does_not_exhaust_inputs(self):
        kg = KnowledgeGraph()
        # Large lists where the top join partner pairs up immediately.
        for i in range(100):
            kg.add(f"e{i}", "rdf:type", "L", score=1000 - i)
            kg.add(f"e{i}", "rdf:type", "R", score=1000 - i)
        context = ExecutionContext()
        left = SortedScan(kg, tp("L"), 0, context)
        right = SortedScan(kg, tp("R"), 1, context)
        join = RankJoin(left, right, context)
        top = join.next()
        assert top is not None
        assert top.bindings["s"] == "e0"
        assert context.tuples_pulled < 50  # far from the full 200

    def test_threshold_upper_bound_sound(self, graph):
        join, _ = join_of(graph, tp("t1"), tp("t2"))
        while True:
            bound = join.upper_bound()
            item = join.next()
            if item is None:
                break
            assert item.score <= bound + 1e-9

    def test_exhausted_bound(self, graph):
        join, _ = join_of(graph, tp("t1"), tp("t2"))
        join.drain()
        assert join.next() is None
        assert join.upper_bound() == -math.inf


class TestValidation:
    def test_overlapping_coverage_rejected(self, graph):
        context = ExecutionContext()
        left = SortedScan(graph, tp("t1"), 0, context)
        right = SortedScan(graph, tp("t2"), 0, context)
        with pytest.raises(ExecutionError):
            RankJoin(left, right, context)


class TestNestedJoins:
    def test_three_way_join(self, graph):
        graph.add("b", "rdf:type", "t3", score=5.0)
        graph.add("d", "rdf:type", "t3", score=4.0)
        context = ExecutionContext()
        s1 = SortedScan(graph, tp("t1"), 0, context)
        s2 = SortedScan(graph, tp("t2"), 1, context)
        s3 = SortedScan(graph, tp("t3"), 2, context)
        tree = RankJoin(RankJoin(s1, s2, context), s3, context)
        results = tree.drain()
        assert [i.bindings["s"] for i in results] == ["b"]
        assert results[0].score == pytest.approx(1.8 + 1.0)

    def test_join_accounting(self, graph):
        join, context = join_of(graph, tp("t1"), tp("t2"))
        join.drain()
        assert context.joins_attempted > 0
        assert context.joins_matched > 0
        assert context.joins_matched <= context.joins_attempted
