"""Unit tests for the ChainScan operator and chain-enabled execution."""

import math

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import SpecQPEngine
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, var
from repro.operators.chain_scan import ChainScan
from repro.operators.memory import ExecutionContext
from repro.query.query import TriplePatternQuery
from repro.relax.chains import ChainRelaxationRule, ChainRuleSet
from repro.relax.rules import RuleSet


@pytest.fixture
def geo_graph():
    kg = KnowledgeGraph()
    # Direct facts.
    kg.add("alice", "bornIn", "paris", score=10.0)
    # Chain facts: bob born in a suburb located in paris.
    kg.add("bob", "bornIn", "montreuil", score=8.0)
    kg.add("montreuil", "locatedIn", "paris", score=4.0)
    kg.add("carol", "bornIn", "lyon", score=6.0)
    kg.add("lyon", "locatedIn", "france", score=9.0)
    return kg


@pytest.fixture
def chain():
    return ChainRelaxationRule(
        domain=TriplePattern(var("s"), "bornIn", "paris"),
        chain=(
            TriplePattern(var("s"), "bornIn", var("m")),
            TriplePattern(var("m"), "locatedIn", "paris"),
        ),
        weight=0.6,
    )


class TestChainScan:
    def test_matches_projected_to_outer_vars(self, geo_graph, chain):
        scan = ChainScan(geo_graph, chain, 0, ExecutionContext())
        items = scan.drain()
        assert [i.bindings for i in items] == [{"s": "bob"}]  # no ?m leak

    def test_score_is_weighted_mean(self, geo_graph, chain):
        scan = ChainScan(geo_graph, chain, 0, ExecutionContext())
        item = scan.next()
        # bornIn list: alice 10 (1.0), bob 8 (0.8), carol 6 (0.6);
        # locatedIn-paris list: montreuil 4 -> normalized 1.0.
        expected = 0.6 * (0.8 + 1.0) / 2
        assert item.score == pytest.approx(expected)

    def test_sorted_output_and_bounds(self, geo_graph, chain):
        geo_graph.add("dave", "bornIn", "saintdenis", score=2.0)
        geo_graph.add("saintdenis", "locatedIn", "paris", score=3.0)
        scan = ChainScan(geo_graph, chain, 0, ExecutionContext())
        previous = math.inf
        while True:
            bound = scan.upper_bound()
            item = scan.next()
            if item is None:
                assert scan.upper_bound() == -math.inf
                break
            assert item.score <= bound + 1e-9
            assert item.score <= previous + 1e-9
            previous = item.score

    def test_duplicate_outer_bindings_keep_max(self, geo_graph, chain):
        # bob also born in a second paris suburb with higher rank.
        geo_graph.add("bob", "bornIn", "vincennes", score=9.0)
        geo_graph.add("vincennes", "locatedIn", "paris", score=4.0)
        scan = ChainScan(geo_graph, chain, 0, ExecutionContext())
        items = scan.drain()
        bobs = [i for i in items if i.bindings["s"] == "bob"]
        assert len(bobs) == 1

    def test_empty_chain_join(self, chain):
        kg = KnowledgeGraph()
        kg.add("x", "bornIn", "nowhere", score=1.0)
        scan = ChainScan(kg, chain, 0, ExecutionContext())
        assert scan.next() is None

    def test_coverage(self, geo_graph, chain):
        scan = ChainScan(geo_graph, chain, 2, ExecutionContext())
        assert scan.patterns_covered == frozenset({2})


class TestEngineWithChains:
    def test_chain_answers_reach_topk(self, geo_graph, chain):
        """bornIn-paris query: alice matches directly; bob only through
        the chain relaxation."""
        query = TriplePatternQuery(
            (TriplePattern(var("s"), "bornIn", "paris"),),
            projection=(var("s"),),
        )
        engine = SpecQPEngine(
            geo_graph,
            RuleSet(),
            EngineConfig(),
            chain_rules=ChainRuleSet([chain]),
        )
        result = engine.query_trinit(query, k=5)
        names = [a.as_dict()["s"] for a in result.answers]
        assert names[0] == "alice"
        assert "bob" in names
        assert "carol" not in names  # lyon is not in paris

    def test_chain_scores_discounted(self, geo_graph, chain):
        query = TriplePatternQuery(
            (TriplePattern(var("s"), "bornIn", "paris"),),
            projection=(var("s"),),
        )
        engine = SpecQPEngine(
            geo_graph, RuleSet(), chain_rules=ChainRuleSet([chain])
        )
        result = engine.query_trinit(query, k=5)
        scores = {a.as_dict()["s"]: a.score for a in result.answers}
        assert scores["alice"] == pytest.approx(1.0)
        assert scores["bob"] < 0.6 + 1e-9  # bounded by the chain weight

    def test_without_chains_no_bob(self, geo_graph):
        query = TriplePatternQuery(
            (TriplePattern(var("s"), "bornIn", "paris"),),
            projection=(var("s"),),
        )
        engine = SpecQPEngine(geo_graph, RuleSet())
        result = engine.query_trinit(query, k=5)
        assert [a.as_dict()["s"] for a in result.answers] == ["alice"]
