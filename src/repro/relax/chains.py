"""Chain relaxations — the paper's §6 future-work extension.

"As future work, we would like to generate and use more complicated
relaxations for the queries like replacing a triple pattern with a chain
of triple patterns."

A :class:`ChainRelaxationRule` relaxes one triple pattern into a
*connected chain* of patterns sharing the original's variables, e.g.

    ⟨?s bornIn  city⟩   ~>   ⟨?s bornIn ?m⟩ . ⟨?m locatedIn city⟩

with a weight discount, introducing fresh intermediate variables (``?m``)
that are projected away from answers.  Chains participate in execution as
additional Incremental Merge inputs (see
:class:`repro.operators.chain_scan.ChainScan`); the speculative planner
treats a pattern with chain rules like any other relaxable pattern in
that the chains are processed only when the pattern is relaxed.

Chain-match scores are the *average* of the member triples' normalised
scores, times the rule weight — keeping every chain match in ``[0, w]``
so the §3.2.1 invariant ("the top score of a relaxation equals its
weight") continues to hold approximately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import RelaxationError
from repro.kg.pattern import TriplePattern, Variable


@dataclass(frozen=True)
class ChainRelaxationRule:
    """``(domain, chain, weight)`` with structural validation.

    The chain must (a) have ≥ 2 patterns, (b) collectively use every
    variable of the domain, (c) be connected through shared variables,
    and (d) introduce at least one fresh intermediate variable (otherwise
    it is just a conjunction rewrite, not a chain).
    """

    domain: TriplePattern
    chain: tuple[TriplePattern, ...]
    weight: float

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise RelaxationError(
                f"chain relaxation weight must be in (0, 1], got {self.weight}"
            )
        if len(self.chain) < 2:
            raise RelaxationError("a chain needs at least two patterns")
        domain_vars = set(self.domain.variable_names)
        chain_vars: set[str] = set()
        for pattern in self.chain:
            chain_vars.update(pattern.variable_names)
        if not domain_vars <= chain_vars:
            missing = ", ".join(sorted(domain_vars - chain_vars))
            raise RelaxationError(
                f"chain must bind all domain variables; missing: {missing}"
            )
        if not chain_vars - domain_vars:
            raise RelaxationError(
                "chain must introduce at least one intermediate variable"
            )
        if not self._is_connected():
            raise RelaxationError("chain patterns must be variable-connected")

    def _is_connected(self) -> bool:
        remaining = set(range(len(self.chain)))
        frontier = {remaining.pop()}
        while frontier:
            current = frontier.pop()
            for other in list(remaining):
                if self.chain[current].shares_variable_with(self.chain[other]):
                    remaining.discard(other)
                    frontier.add(other)
        return not remaining

    @property
    def intermediate_variables(self) -> tuple[str, ...]:
        """Fresh variables the chain introduces (projected from answers)."""
        domain_vars = set(self.domain.variable_names)
        seen: dict[str, None] = {}
        for pattern in self.chain:
            for name in pattern.variable_names:
                if name not in domain_vars:
                    seen.setdefault(name)
        return tuple(seen)

    def rename_to(self, domain: TriplePattern) -> "ChainRelaxationRule":
        """Re-express the rule with *domain*'s variable names (positional),
        keeping intermediate variables untouched."""
        if domain.key() != self.domain.key():
            raise RelaxationError(
                f"cannot retarget chain rule for key {self.domain.key()} "
                f"onto pattern with key {domain.key()}"
            )
        mapping: dict[str, str] = {}
        for stored_term, new_term in zip(self.domain.terms, domain.terms):
            if isinstance(stored_term, Variable) and isinstance(new_term, Variable):
                mapping[stored_term.name] = new_term.name
        renamed_chain = tuple(p.rename(mapping) for p in self.chain)
        return ChainRelaxationRule(domain, renamed_chain, self.weight)

    def __str__(self) -> str:
        chain_text = " . ".join(str(p) for p in self.chain)
        return f"({self.domain}  ~>  {chain_text}, w={self.weight:.3f})"


class ChainRuleSet:
    """Chain rules indexed by domain-pattern key (variable-name agnostic)."""

    def __init__(self, rules: Iterable[ChainRelaxationRule] | None = None) -> None:
        self._by_key: dict[
            tuple[str | None, str | None, str | None], list[ChainRelaxationRule]
        ] = {}
        self._count = 0
        if rules is not None:
            for rule in rules:
                self.add(rule)

    def add(self, rule: ChainRelaxationRule) -> None:
        bucket = self._by_key.setdefault(rule.domain.key(), [])
        for i, existing in enumerate(bucket):
            if tuple(p.key() for p in existing.chain) == tuple(
                p.key() for p in rule.chain
            ):
                bucket[i] = rule
                return
        bucket.append(rule)
        bucket.sort(key=lambda r: (-r.weight, tuple(p.key() for p in r.chain)))
        self._count += 1

    def for_pattern(self, pattern: TriplePattern) -> list[ChainRelaxationRule]:
        stored = self._by_key.get(pattern.key(), [])
        return [rule.rename_to(pattern) for rule in stored]

    def has_rules_for(self, pattern: TriplePattern) -> bool:
        return bool(self._by_key.get(pattern.key()))

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[ChainRelaxationRule]:
        for bucket in self._by_key.values():
            yield from bucket

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChainRuleSet({self._count} rules)"
