"""Weighted query relaxation (Definitions 7–8 and §4.2's mining schemes).

* :class:`~repro.relax.rules.RelaxationRule` / :class:`~repro.relax.rules.RuleSet`
  — weighted relaxation rules keyed by their domain pattern.
* :mod:`~repro.relax.mining` — mines rules from a KG via shared-instance
  overlap between type/term predicates (the style of rules TriniT mines).
* :mod:`~repro.relax.cooccurrence` — the Twitter scheme:
  ``w = #tweets(T1 ∧ T2) / #tweets(T1)``.
* :mod:`~repro.relax.space` — statistics over a query's relaxation space.
"""

from repro.relax.chains import ChainRelaxationRule, ChainRuleSet
from repro.relax.rules import RelaxationRule, RuleSet

__all__ = ["ChainRelaxationRule", "ChainRuleSet", "RelaxationRule", "RuleSet"]
