"""Co-occurrence based relaxation mining — the paper's Twitter scheme.

§4.2: for the Twitter dataset the relaxation ``r = (T1, T2, w)`` gets

    w = #tweets_having_T1_and_T2 / #tweets_having_T1

This module computes those weights from any KG whose triples have the
shape ``⟨group, predicate, item⟩`` — for tweets, ``⟨tID, hasTag, term⟩``:
two items co-occur when they appear under the same group (tweet).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.errors import RelaxationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.relax.rules import RelaxationRule, RuleSet


class CooccurrenceIndex:
    """Counts item occurrences and pairwise co-occurrences under groups.

    Built from a KG restricted to one predicate (``hasTag`` for Twitter).
    Memory grows with the number of distinct co-occurring pairs, which is
    fine at reproduction scale; a production system would sketch this.
    """

    def __init__(self, graph: KnowledgeGraph, predicate: str) -> None:
        self.predicate = predicate
        groups: dict[str, set[str]] = defaultdict(set)
        for triple in graph.triples():
            if triple.predicate == predicate:
                groups[triple.subject].add(triple.object)
        self._item_counts: dict[str, int] = defaultdict(int)
        self._pair_counts: dict[tuple[str, str], int] = defaultdict(int)
        for items in groups.values():
            ordered = sorted(items)
            for i, item in enumerate(ordered):
                self._item_counts[item] += 1
                for other in ordered[i + 1:]:
                    self._pair_counts[(item, other)] += 1
        self.n_groups = len(groups)

    def count(self, item: str) -> int:
        """#groups containing *item*."""
        return self._item_counts.get(item, 0)

    def pair_count(self, item_a: str, item_b: str) -> int:
        """#groups containing both items (order-insensitive)."""
        if item_a == item_b:
            return self.count(item_a)
        key = (item_a, item_b) if item_a < item_b else (item_b, item_a)
        return self._pair_counts.get(key, 0)

    def weight(self, from_item: str, to_item: str) -> float:
        """``#groups(T1 ∧ T2) / #groups(T1)`` — note the asymmetry."""
        denominator = self.count(from_item)
        if denominator == 0:
            return 0.0
        return self.pair_count(from_item, to_item) / denominator

    def neighbours(self, item: str) -> list[tuple[str, float]]:
        """Items co-occurring with *item*, with weights, best first."""
        results: list[tuple[str, float]] = []
        count = self.count(item)
        if count == 0:
            return results
        for (a, b), pair_count in self._pair_counts.items():
            if a == item:
                results.append((b, pair_count / count))
            elif b == item:
                results.append((a, pair_count / count))
        results.sort(key=lambda pair: (-pair[1], pair[0]))
        return results

    def items(self) -> list[str]:
        return sorted(self._item_counts)


def mine_cooccurrence_rules(
    graph: KnowledgeGraph,
    predicate: str,
    min_weight: float = 0.05,
    max_rules_per_item: int = 20,
    items: Iterable[str] | None = None,
    subject_var: str = "s",
) -> RuleSet:
    """Mine Twitter-style relaxation rules for object constants.

    For every item ``T1`` (all objects of *predicate*, or just *items*),
    emit rules relaxing ``⟨?s predicate T1⟩`` to ``⟨?s predicate T2⟩``
    with weight ``#groups(T1∧T2)/#groups(T1)``, keeping weights in
    ``[min_weight, 1)`` and at most *max_rules_per_item* best rules.
    """
    if not 0.0 <= min_weight < 1.0:
        raise RelaxationError(f"min_weight must be in [0, 1), got {min_weight}")
    index = CooccurrenceIndex(graph, predicate)
    targets = sorted(items) if items is not None else index.items()
    variable = Variable(subject_var)
    rules = RuleSet()
    for item in targets:
        domain = TriplePattern(variable, predicate, item)
        kept = 0
        for other, weight in index.neighbours(item):
            if kept >= max_rules_per_item:
                break
            if weight < min_weight or weight >= 1.0 or other == item:
                continue
            rules.add(
                RelaxationRule(
                    domain=domain,
                    range=TriplePattern(variable, predicate, other),
                    weight=weight,
                )
            )
            kept += 1
    return rules
