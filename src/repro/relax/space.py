"""Relaxation-space introspection.

Utilities the planner, datasets and reports use to reason about how big a
query's relaxation space is and which patterns are relaxable at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.pattern import TriplePattern
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RuleSet


@dataclass(frozen=True)
class PatternRelaxability:
    """Per-pattern relaxation-space summary."""

    pattern: TriplePattern
    n_rules: int
    best_weight: float  # 0.0 when no rules exist

    @property
    def relaxable(self) -> bool:
        return self.n_rules > 0


@dataclass(frozen=True)
class SpaceSummary:
    """Summary of a query's full relaxation space."""

    per_pattern: tuple[PatternRelaxability, ...]
    total_variants: int  # includes the original query

    @property
    def n_relaxable_patterns(self) -> int:
        return sum(1 for p in self.per_pattern if p.relaxable)

    @property
    def max_weight_product(self) -> float:
        """Weight of the single best fully-relaxed variant (product of the
        best weights of the relaxable patterns)."""
        product = 1.0
        for p in self.per_pattern:
            if p.relaxable:
                product *= p.best_weight
        return product


def summarize(query: TriplePatternQuery, rules: RuleSet) -> SpaceSummary:
    """Compute the :class:`SpaceSummary` for *query* under *rules*."""
    per_pattern: list[PatternRelaxability] = []
    total = 1
    for pattern in query.patterns:
        applicable = rules.for_pattern(pattern)
        n_rules = len(applicable)
        best = applicable[0].weight if applicable else 0.0
        per_pattern.append(PatternRelaxability(pattern, n_rules, best))
        total *= 1 + n_rules
    return SpaceSummary(tuple(per_pattern), total)
