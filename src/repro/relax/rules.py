"""Weighted relaxation rules (Definition 7).

A rule ``r = (q, q', w)`` relaxes the *domain* pattern ``q`` into the
*range* pattern ``q'``; ``w ∈ (0, 1]`` is the score discount applied to
answers obtained through the relaxation.  A :class:`RuleSet` indexes rules
by the domain pattern's key so lookup is independent of variable naming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import RelaxationError
from repro.kg.pattern import TriplePattern, Variable


@dataclass(frozen=True)
class RelaxationRule:
    """``(domain, range, weight)`` with structural validation.

    The range must bind the same variables as the domain (otherwise the
    relaxed query would change its answer schema), and the weight must lie
    in ``(0, 1]`` — a zero-weight rule can never contribute to any top-k
    and is rejected outright.
    """

    domain: TriplePattern
    range: TriplePattern
    weight: float

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise RelaxationError(
                f"relaxation weight must be in (0, 1], got {self.weight}"
            )
        if set(self.domain.variable_names) != set(self.range.variable_names):
            raise RelaxationError(
                f"relaxation must preserve variables: domain uses "
                f"{sorted(self.domain.variable_names)}, range uses "
                f"{sorted(self.range.variable_names)}"
            )
        if self.domain == self.range:
            raise RelaxationError("a rule must change the pattern")

    def rename_to(self, domain: TriplePattern) -> "RelaxationRule":
        """Re-express this rule with *domain*'s variable names.

        Rules are stored keyed by pattern structure; when a query uses
        different variable names than the stored rule, the range pattern's
        variables are renamed positionally to match.
        """
        if domain.key() != self.domain.key():
            raise RelaxationError(
                f"cannot retarget rule for key {self.domain.key()} onto "
                f"pattern with key {domain.key()}"
            )
        mapping: dict[str, str] = {}
        for stored_term, new_term in zip(self.domain.terms, domain.terms):
            if isinstance(stored_term, Variable) and isinstance(new_term, Variable):
                mapping[stored_term.name] = new_term.name
        return RelaxationRule(domain, self.range.rename(mapping), self.weight)

    def __str__(self) -> str:
        return f"({self.domain}  ~>  {self.range}, w={self.weight:.3f})"


class RuleSet:
    """A collection of relaxation rules indexed by domain-pattern key.

    Lookups are variable-name agnostic: a rule stored for
    ``?x rdf:type singer`` applies to ``?s rdf:type singer`` (with its
    range renamed accordingly).
    """

    def __init__(self, rules: Iterable[RelaxationRule] | None = None) -> None:
        self._by_key: dict[tuple[str | None, str | None, str | None], list[RelaxationRule]] = {}
        self._count = 0
        if rules is not None:
            for rule in rules:
                self.add(rule)

    def add(self, rule: RelaxationRule) -> None:
        """Add *rule*; replaces an existing rule with the same domain/range."""
        bucket = self._by_key.setdefault(rule.domain.key(), [])
        for i, existing in enumerate(bucket):
            if existing.range.key() == rule.range.key():
                bucket[i] = rule
                return
        bucket.append(rule)
        bucket.sort(key=lambda r: (-r.weight, r.range.key()))
        self._count += 1

    def add_all(self, rules: Iterable[RelaxationRule]) -> None:
        for rule in rules:
            self.add(rule)

    def for_pattern(self, pattern: TriplePattern) -> list[RelaxationRule]:
        """Rules applicable to *pattern*, best weight first, retargeted to
        *pattern*'s variable names."""
        stored = self._by_key.get(pattern.key(), [])
        return [rule.rename_to(pattern) for rule in stored]

    def has_rules_for(self, pattern: TriplePattern) -> bool:
        return bool(self._by_key.get(pattern.key()))

    def n_rules_for(self, pattern: TriplePattern) -> int:
        return len(self._by_key.get(pattern.key(), []))

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[RelaxationRule]:
        for bucket in self._by_key.values():
            yield from bucket

    def domains(self) -> list[tuple[str | None, str | None, str | None]]:
        """All domain keys with at least one rule."""
        return sorted(self._by_key, key=lambda k: tuple(t or "" for t in k))

    def merged_with(self, other: "RuleSet") -> "RuleSet":
        merged = RuleSet(self)
        merged.add_all(other)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuleSet({self._count} rules over {len(self._by_key)} domains)"
