"""Relaxation mining from a KG via shared-instance overlap.

The XKG relaxations in the paper were mined with the TriniT scheme
(rewritings whose weights reflect how interchangeable two terms are).  We
reproduce the spirit with an instance-overlap miner: a constant ``c`` in a
pattern position can be relaxed to ``c'`` with weight proportional to how
many of ``c``'s instances are shared with ``c'`` — a directed Jaccard-style
containment.

For a type pattern ``⟨?x rdf:type singer⟩`` this yields exactly the
taxonomy-flavoured relaxations of Table 1 (``vocalist``, ``artist``, …)
when the KG contains co-typed entities.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.errors import RelaxationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.relax.rules import RelaxationRule, RuleSet


def _instance_sets(
    graph: KnowledgeGraph, predicate: str, by: str
) -> dict[str, set[str]]:
    """Map each constant to its instance set under *predicate*.

    ``by='object'`` maps object constants to their subject sets (types to
    entities); ``by='subject'`` is the mirror image.
    """
    if by not in ("object", "subject"):
        raise RelaxationError(f"by must be 'object' or 'subject', got {by!r}")
    sets: dict[str, set[str]] = defaultdict(set)
    for triple in graph.triples():
        if triple.predicate != predicate:
            continue
        if by == "object":
            sets[triple.object].add(triple.subject)
        else:
            sets[triple.subject].add(triple.object)
    return sets


def containment_weight(instances_a: set[str], instances_b: set[str]) -> float:
    """Directed containment ``|A ∩ B| / |A|`` — how much of A's meaning
    is preserved by relaxing to B.  Returns 0.0 when A is empty."""
    if not instances_a:
        return 0.0
    return len(instances_a & instances_b) / len(instances_a)


def mine_object_relaxations(
    graph: KnowledgeGraph,
    predicate: str,
    min_weight: float = 0.05,
    max_rules_per_constant: int = 20,
    constants: Iterable[str] | None = None,
    subject_var: str = "s",
) -> RuleSet:
    """Mine relaxations of the object constant under a fixed predicate.

    Emits ``(⟨?s p c⟩, ⟨?s p c'⟩, w)`` with
    ``w = |inst(c) ∩ inst(c')| / |inst(c)|``, for all ``c'`` with non-zero
    overlap, weights clipped to ``[min_weight, 1)`` and at most
    *max_rules_per_constant* best rules per constant.
    """
    if not 0.0 <= min_weight < 1.0:
        raise RelaxationError(f"min_weight must be in [0, 1), got {min_weight}")
    sets = _instance_sets(graph, predicate, by="object")
    targets = sorted(constants) if constants is not None else sorted(sets)
    variable = Variable(subject_var)
    rules = RuleSet()
    for constant in targets:
        instances = sets.get(constant, set())
        if not instances:
            continue
        scored: list[tuple[float, str]] = []
        for other, other_instances in sets.items():
            if other == constant:
                continue
            weight = containment_weight(instances, other_instances)
            if min_weight <= weight < 1.0:
                scored.append((weight, other))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        for weight, other in scored[:max_rules_per_constant]:
            rules.add(
                RelaxationRule(
                    domain=TriplePattern(variable, predicate, constant),
                    range=TriplePattern(variable, predicate, other),
                    weight=weight,
                )
            )
    return rules


def mine_predicate_relaxations(
    graph: KnowledgeGraph,
    min_weight: float = 0.05,
    max_rules_per_predicate: int = 10,
    subject_var: str = "s",
    object_var: str = "o",
) -> RuleSet:
    """Mine predicate-to-predicate relaxations from subject-pair overlap.

    Two predicates are interchangeable to the degree that they connect the
    same (subject, object) pairs' subjects: weight is the containment of
    subject sets.  Emits ``(⟨?s p ?o⟩, ⟨?s p' ?o⟩, w)``.
    """
    sets: dict[str, set[str]] = defaultdict(set)
    for triple in graph.triples():
        sets[triple.predicate].add(triple.subject)
    s_var, o_var = Variable(subject_var), Variable(object_var)
    rules = RuleSet()
    for predicate in sorted(sets):
        instances = sets[predicate]
        scored: list[tuple[float, str]] = []
        for other in sorted(sets):
            if other == predicate:
                continue
            weight = containment_weight(instances, sets[other])
            if min_weight <= weight < 1.0:
                scored.append((weight, other))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        for weight, other in scored[:max_rules_per_predicate]:
            rules.add(
                RelaxationRule(
                    domain=TriplePattern(s_var, predicate, o_var),
                    range=TriplePattern(s_var, other, o_var),
                    weight=weight,
                )
            )
    return rules


def rules_from_taxonomy(
    taxonomy: dict[str, list[tuple[str, float]]],
    predicate: str = "rdf:type",
    subject_var: str = "s",
) -> RuleSet:
    """Build a rule set from an explicit taxonomy mapping.

    ``taxonomy`` maps each type to ``[(relaxed_type, weight), ...]`` —
    the shape of Table 1 in the paper.  Useful for datasets generated with
    a known ground-truth taxonomy.
    """
    variable = Variable(subject_var)
    rules = RuleSet()
    for type_name, alternatives in taxonomy.items():
        for relaxed_type, weight in alternatives:
            rules.add(
                RelaxationRule(
                    domain=TriplePattern(variable, predicate, type_name),
                    range=TriplePattern(variable, predicate, relaxed_type),
                    weight=weight,
                )
            )
    return rules
