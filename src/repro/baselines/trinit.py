"""The TriniT baseline engine (§2.1).

TriniT processes every triple pattern through an Incremental Merge over
the pattern and *all* its relaxations, then rank-joins the merged streams
(Figure 2).  It produces the exact top-k under the relaxation scoring
semantics and is therefore the ground truth for the quality metrics.

This class is a thin convenience wrapper over the shared plan/executor
machinery — the TriniT plan is :meth:`QueryPlan.trinit` — so both engines
run through identical operator code, keeping the comparison fair.
"""

from __future__ import annotations

from repro.core.executor import ExecutionResult, PlanExecutor
from repro.core.plan import QueryPlan
from repro.kg.graph import KnowledgeGraph
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RuleSet


class TriniTEngine:
    """Non-speculative top-k engine: all relaxations, always."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        rules: RuleSet,
        max_relaxations_per_pattern: int | None = None,
    ) -> None:
        self.graph = graph
        self.rules = rules
        self._executor = PlanExecutor(graph, rules, max_relaxations_per_pattern)

    def plan(self, query: TriplePatternQuery) -> QueryPlan:
        """The TriniT plan: every pattern is a singleton."""
        return QueryPlan.trinit(query)

    def query(self, query: TriplePatternQuery, k: int) -> ExecutionResult:
        """Evaluate *query* to its true top-k."""
        return self._executor.execute(self.plan(query), k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TriniTEngine(graph={self.graph.name!r}, rules={len(self.rules)})"
