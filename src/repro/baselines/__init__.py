"""Baseline engines the paper compares against.

* :class:`~repro.baselines.trinit.TriniTEngine` — the non-speculative
  engine of §2.1 (Incremental Merge per pattern + Rank Joins); produces
  the *true* top-k and is the reference for all quality metrics.
* :class:`~repro.baselines.naive.NaiveEngine` — the §1 strawman: evaluate
  every relaxed query in the cross-product space, merge, sort, cut.
"""

from repro.baselines.naive import NaiveEngine
from repro.baselines.trinit import TriniTEngine

__all__ = ["NaiveEngine", "TriniTEngine"]
