"""The naive all-relaxed-queries baseline (§1).

"A naive method would compute the results to each query, sort the results
by score and return the top-k": enumerate the full cross-product
relaxation space (48 queries for the running example), evaluate each
relaxed query completely with hash joins, apply the weight product to
every answer, keep the maximum score per distinct binding, sort, cut.

This engine exists for the motivation ablation — it shares no operator
machinery because its whole point is the absence of incremental top-k
processing.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery
from repro.query.rewrite import enumerate_space
from repro.relax.rules import RuleSet


@dataclass(frozen=True)
class NaiveResult:
    answers: tuple[Answer, ...]
    execution_seconds: float
    queries_evaluated: int
    answers_materialized: int


class NaiveEngine:
    """Evaluate every relaxed query fully, then merge/sort/cut."""

    def __init__(self, graph: KnowledgeGraph, rules: RuleSet) -> None:
        self.graph = graph
        self.rules = rules

    # ------------------------------------------------------------------
    def _evaluate_slots(
        self,
        slot_patterns: tuple[TriplePattern, ...],
        slot_weights: tuple[float, ...],
    ) -> list[tuple[dict[str, str], float]]:
        """All answers of a variant with per-slot weighted scores.

        Each slot contributes ``w_slot · S(t | pattern_slot)`` to the
        answer score — the same semantics the weighted Incremental Merge
        plus Rank Join pipeline computes, so the naive engine's ground
        truth matches the operator engines exactly.
        """
        rows: list[tuple[dict[str, str], float]] | None = None
        for pattern, weight in zip(slot_patterns, slot_weights):
            match_list = self.graph.match_list(pattern)
            pattern_rows: list[tuple[dict[str, str], float]] = []
            for position, triple in enumerate(match_list.triples):
                bindings = pattern.bind(triple)
                if bindings is not None:
                    pattern_rows.append(
                        (bindings, weight * match_list.normalized(position))
                    )
            if rows is None:
                rows = pattern_rows
                continue
            seen_vars: set[str] = set()
            for bindings, _ in rows:
                seen_vars.update(bindings)
                break  # all rows share the same variable set
            shared = sorted(seen_vars & set(pattern.variable_names))
            index: dict[tuple[str, ...], list[tuple[dict[str, str], float]]] = defaultdict(list)
            for bindings, score in pattern_rows:
                index[tuple(bindings.get(v, "") for v in shared)].append(
                    (bindings, score)
                )
            merged: list[tuple[dict[str, str], float]] = []
            for bindings, score in rows:
                key = tuple(bindings.get(v, "") for v in shared)
                for other_bindings, other_score in index.get(key, ()):
                    conflict = False
                    for name, value in other_bindings.items():
                        if bindings.get(name, value) != value:
                            conflict = True
                            break
                    if not conflict:
                        combined = dict(bindings)
                        combined.update(other_bindings)
                        merged.append((combined, score + other_score))
            rows = merged
            if not rows:
                break
        return rows or []

    # ------------------------------------------------------------------
    def query(
        self,
        query: TriplePatternQuery,
        k: int,
        max_variants: int | None = None,
    ) -> NaiveResult:
        """Top-k by brute force over the whole relaxation space.

        ``max_variants`` optionally caps the number of relaxed queries
        evaluated (by descending weight) to keep the strawman tractable
        on large spaces; ``None`` evaluates all of them, as §1 describes.
        """
        started = time.perf_counter()
        variants = enumerate_space(query, self.rules, max_variants=max_variants)
        projection = tuple(v.name for v in query.projection)
        best: dict[tuple[tuple[str, str], ...], float] = {}
        materialized = 0
        for variant in variants:
            slot_weights = tuple(
                rule.weight if rule is not None else 1.0 for rule in variant.applied
            )
            for bindings, score in self._evaluate_slots(
                variant.slot_patterns, slot_weights
            ):
                materialized += 1
                projected = tuple(
                    (name, bindings[name]) for name in sorted(projection)
                    if name in bindings
                )
                current = best.get(projected)
                if current is None or score > current:
                    best[projected] = score
        ranked = sorted(best.items(), key=lambda item: (-item[1], item[0]))[:k]
        answers = tuple(Answer(bindings, score) for bindings, score in ranked)
        return NaiveResult(
            answers=answers,
            execution_seconds=time.perf_counter() - started,
            queries_evaluated=len(variants),
            answers_materialized=materialized,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NaiveEngine(graph={self.graph.name!r}, rules={len(self.rules)})"
