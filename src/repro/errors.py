"""Exception hierarchy for the Spec-QP reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause while the
library still reports precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class KnowledgeGraphError(ReproError):
    """A problem with the knowledge-graph substrate (bad triple, bad score)."""


class PatternError(ReproError):
    """A triple pattern is malformed (e.g. no variables and no constants)."""


class QueryError(ReproError):
    """A triple-pattern query is malformed (empty, disconnected, unbound)."""


class SparqlSyntaxError(QueryError):
    """The mini-SPARQL parser rejected the query text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class RelaxationError(ReproError):
    """A relaxation rule is invalid or cannot be applied to a query."""


class StatisticsError(ReproError):
    """Statistics catalog problems: missing stats, invalid histogram."""


class HistogramError(StatisticsError):
    """A histogram was constructed with inconsistent buckets or masses."""


class EstimationError(StatisticsError):
    """The expected-score estimator received inconsistent inputs."""


class PlanError(ReproError):
    """A query plan is structurally invalid (not a partition of the query)."""


class ExecutionError(ReproError):
    """An operator tree failed during evaluation."""


class DatasetError(ReproError):
    """Synthetic dataset generation failed or produced an invalid workload."""


class ExperimentError(ReproError):
    """The experiment harness was configured inconsistently."""
