"""Query plans (§3.2) and operator-tree construction (§3.2.2).

A plan is a partition of the query's patterns into one *join group*
(patterns whose relaxations were pruned) and *singletons* (patterns whose
relaxations are kept).  Execution:

1. the join group becomes left-deep rank joins over plain sorted scans;
2. each singleton becomes an Incremental Merge over the pattern's scan
   plus one weighted scan per relaxation;
3. further left-deep rank joins combine the group with the singletons;
4. a dedup Top-K sink materialises the answers.

The TriniT baseline plan is the special case where *every* pattern is a
singleton (§2.1, Figure 2), so both engines share this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Callable

from repro.errors import PlanError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern
from repro.operators.base import Operator
from repro.operators.block import (
    DEFAULT_BLOCK_SIZE,
    BlockOperator,
    EncodedMatchList,
    TermCodec,
    build_encoded_match_list,
)
from repro.operators.chain_scan import ChainScan
from repro.operators.incremental_merge import IncrementalMerge, WeightedInput
from repro.operators.memory import ExecutionContext
from repro.operators.rank_join import RankJoin
from repro.operators.shard_merge import build_leaf_scan
from repro.operators.vector_join import VectorRankJoin
from repro.operators.vector_scan import VectorIncrementalMerge, VectorScan
from repro.query.query import TriplePatternQuery
from repro.relax.chains import ChainRuleSet
from repro.relax.rules import RuleSet


@dataclass(frozen=True)
class QueryPlan:
    """A partition ``{join_group} ∪ singletons`` of a query's patterns.

    ``join_group`` and ``singletons`` store indexes into
    ``query.patterns``.  The paper's plan notation ``{{q1,q3},{q2}}`` maps
    to ``join_group=(0, 2), singletons=(1,)``.
    """

    query: TriplePatternQuery
    join_group: tuple[int, ...]
    singletons: tuple[int, ...]

    def __post_init__(self) -> None:
        indexes = sorted(self.join_group) + sorted(self.singletons)
        expected = list(range(len(self.query)))
        if sorted(indexes) != expected:
            raise PlanError(
                f"plan is not a partition of the query: join_group="
                f"{self.join_group}, singletons={self.singletons}, "
                f"query has {len(self.query)} patterns"
            )

    # ------------------------------------------------------------------
    @classmethod
    def speculative(
        cls, query: TriplePatternQuery, relaxed_indexes: tuple[int, ...]
    ) -> "QueryPlan":
        """Plan relaxing exactly *relaxed_indexes* (PLANGEN's output)."""
        join_group = tuple(
            i for i in range(len(query)) if i not in set(relaxed_indexes)
        )
        return cls(query, join_group, tuple(sorted(relaxed_indexes)))

    @classmethod
    def trinit(cls, query: TriplePatternQuery) -> "QueryPlan":
        """The TriniT plan: all patterns are singletons (Figure 2)."""
        return cls(query, (), tuple(range(len(query))))

    @classmethod
    def exact(cls, query: TriplePatternQuery) -> "QueryPlan":
        """No relaxations anywhere: pure rank joins (the no-relaxation
        fast path §3 opens with)."""
        return cls(query, tuple(range(len(query))), ())

    # ------------------------------------------------------------------
    @property
    def n_relaxed(self) -> int:
        return len(self.singletons)

    @property
    def relaxed_patterns(self) -> tuple[TriplePattern, ...]:
        return tuple(self.query.patterns[i] for i in self.singletons)

    def describe(self) -> str:
        """The paper's set notation, e.g. ``{{q1, q3}, {q2}}``."""
        parts = []
        if self.join_group:
            parts.append(
                "{" + ", ".join(f"q{i + 1}" for i in sorted(self.join_group)) + "}"
            )
        for index in self.singletons:
            parts.append(f"{{q{index + 1}}}")
        return "{" + ", ".join(parts) + "}"

    # ------------------------------------------------------------------
    # Operator-tree construction (§3.2.2)
    # ------------------------------------------------------------------
    def build_operator_tree(
        self,
        graph: KnowledgeGraph,
        rules: RuleSet,
        context: ExecutionContext,
        max_relaxations_per_pattern: int | None = None,
        chain_rules: ChainRuleSet | None = None,
    ) -> Operator:
        """Materialise the plan as a pull-based operator tree.

        Join order is left-deep following pattern order, but join-group
        patterns are joined first (they are the cheap, non-relaxed side),
        then each singleton's Incremental Merge is joined in.  Within each
        stage, variable-connected operands are preferred to avoid
        accidental cartesian products.

        ``chain_rules`` optionally adds chain relaxations (§6 future work)
        as extra Incremental Merge inputs for relaxed patterns.
        """
        group_ops: list[Operator] = [
            build_leaf_scan(graph, self.query.patterns[i], i, context)
            for i in sorted(self.join_group)
        ]
        merge_ops: list[Operator] = [
            self._build_incremental_merge(
                graph, rules, context, i, max_relaxations_per_pattern,
                chain_rules,
            )
            for i in self.singletons
        ]
        operands = group_ops + merge_ops
        if not operands:
            raise PlanError("plan has no operands")
        tree = operands.pop(0)
        while operands:
            pick = self._pick_connected(tree, operands)
            tree = RankJoin(tree, operands.pop(pick), context)
        return tree

    # ------------------------------------------------------------------
    # Block operator-tree construction (the vectorized executor)
    # ------------------------------------------------------------------
    def build_block_operator_tree(
        self,
        graph: KnowledgeGraph,
        rules: RuleSet,
        context: ExecutionContext,
        codec: TermCodec,
        max_relaxations_per_pattern: int | None = None,
        encoded_lists: "Callable[[TriplePattern], EncodedMatchList] | None" = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> BlockOperator:
        """Materialise the plan as a block-at-a-time operator tree.

        The vectorized twin of :meth:`build_operator_tree`: the same plan
        partition, the same join order (join-group patterns first, then
        singleton Incremental Merges, variable-connected operands
        preferred) — so answer scores accumulate through the identical
        left-deep additions — but every node exchanges
        :class:`~repro.operators.block.Block` batches of encoded id
        columns instead of :class:`~repro.query.answer.PartialAnswer`
        objects.

        *encoded_lists* optionally serves (cached) encoded match lists;
        by default each leaf builds its own from *graph* via *codec*.
        Chain relaxations have no block implementation — the executor
        falls back to the tuple tree when chain rules are configured.
        """
        provider = encoded_lists or (
            lambda pattern: build_encoded_match_list(graph, pattern, codec)
        )
        group_ops: list[BlockOperator] = [
            VectorScan(
                provider(self.query.patterns[i]), i, context, block_size=block_size
            )
            for i in sorted(self.join_group)
        ]
        merge_ops: list[BlockOperator] = []
        for i in self.singletons:
            pattern = self.query.patterns[i]
            inputs: list[tuple[EncodedMatchList, float]] = [(provider(pattern), 1.0)]
            applicable = rules.for_pattern(pattern)
            if max_relaxations_per_pattern is not None:
                applicable = applicable[:max_relaxations_per_pattern]
            inputs.extend(
                (provider(rule.range), rule.weight) for rule in applicable
            )
            merge_ops.append(
                VectorIncrementalMerge(
                    inputs, i, context, codec, block_size=block_size
                )
            )
        operands: list[BlockOperator] = group_ops + merge_ops
        if not operands:
            raise PlanError("plan has no operands")
        tree = operands.pop(0)
        while operands:
            pick = self._pick_connected(tree, operands)
            tree = VectorRankJoin(
                tree, operands.pop(pick), context, codec, block_size=block_size
            )
        return tree

    def _pick_connected(
        self, tree: "Operator | BlockOperator", operands: list
    ) -> int:
        """Index of the first operand sharing a variable with *tree*."""
        tree_vars: set[str] = set()
        for index in tree.patterns_covered:
            tree_vars.update(self.query.patterns[index].variable_names)
        for position, operand in enumerate(operands):
            operand_vars: set[str] = set()
            for index in operand.patterns_covered:
                operand_vars.update(self.query.patterns[index].variable_names)
            if tree_vars & operand_vars:
                return position
        return 0

    def _build_incremental_merge(
        self,
        graph: KnowledgeGraph,
        rules: RuleSet,
        context: ExecutionContext,
        pattern_index: int,
        max_relaxations: int | None,
        chain_rules: ChainRuleSet | None = None,
    ) -> Operator:
        pattern = self.query.patterns[pattern_index]
        inputs = [
            WeightedInput(
                scan=build_leaf_scan(graph, pattern, pattern_index, context),
                weight=1.0,
                label="original",
            )
        ]
        applicable = rules.for_pattern(pattern)
        if max_relaxations is not None:
            applicable = applicable[:max_relaxations]
        for rule in applicable:
            inputs.append(
                WeightedInput(
                    scan=build_leaf_scan(
                        graph, rule.range, pattern_index, context, weight=rule.weight
                    ),
                    weight=rule.weight,
                    label=str(rule.range),
                )
            )
        if chain_rules is not None:
            for chain_rule in chain_rules.for_pattern(pattern):
                inputs.append(
                    WeightedInput(
                        scan=ChainScan(graph, chain_rule, pattern_index, context),
                        weight=chain_rule.weight,
                        label=str(chain_rule),
                    )
                )
        return IncrementalMerge(inputs, context)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryPlan({self.describe()})"
