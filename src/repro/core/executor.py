"""Plan execution (§3.2.2) with timing and memory accounting.

The executor materialises a plan's operator tree and drains it through a
dedup Top-K sink, recording wall-clock time, the answer-object count (the
paper's memory metric), and operator pull statistics.

Two interchangeable execution strategies produce byte-identical answers:

``"tuple"``
    The paper's pipeline: pull-based operators exchanging one
    :class:`~repro.query.answer.PartialAnswer` per call.

``"block"``
    The vectorized pipeline (:mod:`repro.operators.block`): operators
    exchange score-sorted blocks of dictionary-encoded id arrays and
    decode to strings only at the top-k sink.  Available whenever the
    graph is backed by encoded columns — columnar, sharded, or a live
    overlay over either — and no chain relaxations are configured; other
    configurations silently fall back to the tuple pipeline (the
    object-graph backend has no id columns to slice).

For the block path the executor reads encoded match lists (and the term
codec) from an :class:`~repro.operators.block.EncodedListStore` — a
private one by default, or a shared one injected by the service layer so
every worker engine of a batch encodes each pattern at most once.  The
store is version- and store-identity-aware, so stale ids can never leak
across mutations or compactions; a graph that changes *mid-query* makes
the affected query raise :class:`~repro.errors.ExecutionError` instead
of silently decoding wrong terms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal

from repro.core.plan import QueryPlan
from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.operators.block import BlockTopK, EncodedListStore
from repro.operators.memory import ExecutionContext
from repro.operators.topk import TopK
from repro.query.answer import Answer
from repro.relax.chains import ChainRuleSet
from repro.relax.rules import RuleSet

#: The two concrete execution strategies.
ExecutorKind = Literal["tuple", "block"]

EXECUTOR_KINDS: tuple[str, ...] = ("tuple", "block")

#: What callers may *request*: a concrete strategy, or ``"auto"`` — the
#: cost-based mode where the engine picks tuple vs block per query from
#: the statistics catalog (see :func:`repro.core.planner.choose_executor`).
ExecutorMode = Literal["tuple", "block", "auto"]

EXECUTOR_MODES: tuple[str, ...] = EXECUTOR_KINDS + ("auto",)

#: Entry bound of the per-executor encoded match-list cache.
DEFAULT_ENCODED_CACHE_CAPACITY = 512


@dataclass(frozen=True)
class ExecutionResult:
    """Top-k answers plus the efficiency measurements the paper reports."""

    answers: tuple[Answer, ...]
    execution_seconds: float
    answer_objects_created: int
    tuples_pulled: int
    joins_attempted: int
    joins_matched: int

    @property
    def scores(self) -> tuple[float, ...]:
        return tuple(answer.score for answer in self.answers)


def supports_block_execution(graph: KnowledgeGraph) -> bool:
    """Whether the block pipeline can run over *graph*.

    True for every backend with encoded columns in reach — columnar,
    sharded, and live overlays (even over an object base: the codec then
    interns every term into its side table).  False only for the plain
    object graph, which the block planner has nothing to slice from.
    """
    return (
        getattr(graph, "store", None) is not None
        or getattr(graph, "base", None) is not None
    )


class PlanExecutor:
    """Executes :class:`~repro.core.plan.QueryPlan` objects to top-k."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        rules: RuleSet,
        max_relaxations_per_pattern: int | None = None,
        chain_rules: ChainRuleSet | None = None,
        executor: ExecutorKind = "tuple",
        encoded_cache_capacity: int = DEFAULT_ENCODED_CACHE_CAPACITY,
        encoded_store: EncodedListStore | None = None,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ExecutionError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
            )
        if encoded_cache_capacity < 1:
            raise ExecutionError(
                f"encoded cache capacity must be >= 1, got {encoded_cache_capacity}"
            )
        self._graph = graph
        self._rules = rules
        self._max_relaxations = max_relaxations_per_pattern
        self._chain_rules = chain_rules
        self._executor: ExecutorKind = executor
        self._encoded_store = encoded_store or EncodedListStore(
            encoded_cache_capacity
        )

    @property
    def executor(self) -> ExecutorKind:
        return self._executor

    def can_execute_block(self) -> bool:
        """Whether the block pipeline is available at all on this executor
        (columnar-backed graph, no chain relaxations) — independent of the
        configured strategy.  The cost-based ``"auto"`` mode consults this
        before it even scores a query."""
        return self._chain_rules is None and supports_block_execution(self._graph)

    def uses_block_path(self, executor: ExecutorKind | None = None) -> bool:
        """Whether :meth:`execute` will take the vectorized pipeline
        (for the configured strategy, or for the *executor* override)."""
        kind = executor if executor is not None else self._executor
        return kind == "block" and self.can_execute_block()

    def execute(
        self, plan: QueryPlan, k: int, executor: ExecutorKind | None = None
    ) -> ExecutionResult:
        """Run *plan*, returning the top-k distinct answers by score.

        *executor* overrides the configured strategy for this call only —
        the hook the cost-based ``"auto"`` mode uses to route individual
        queries through either pipeline without rebuilding executors.
        Answers are byte-identical either way.
        """
        if executor is not None and executor not in EXECUTOR_KINDS:
            raise ExecutionError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_KINDS}"
            )
        if self.uses_block_path(executor):
            return self._execute_block(plan, k)
        return self._execute_tuple(plan, k)

    # ------------------------------------------------------------------
    def _execute_tuple(self, plan: QueryPlan, k: int) -> ExecutionResult:
        context = ExecutionContext()
        started = time.perf_counter()
        tree = plan.build_operator_tree(
            self._graph,
            self._rules,
            context,
            max_relaxations_per_pattern=self._max_relaxations,
            chain_rules=self._chain_rules,
        )
        projection = tuple(v.name for v in plan.query.projection)
        answers = TopK(tree, k, projection).run()
        return self._result(answers, context, started)

    def _execute_block(self, plan: QueryPlan, k: int) -> ExecutionResult:
        context = ExecutionContext()
        started = time.perf_counter()
        codec = self._encoded_store.codec(self._graph)
        tree = plan.build_block_operator_tree(
            self._graph,
            self._rules,
            context,
            codec,
            max_relaxations_per_pattern=self._max_relaxations,
            # Pin every leaf to the codec captured above: the sink decodes
            # with it, so a leaf encoded under a refreshed codec (graph
            # mutated mid-query) must fail loudly instead of binding wrong
            # terms.
            encoded_lists=lambda pattern: self._encoded_store.get_or_build(
                self._graph, pattern, expect_codec=codec
            ),
        )
        projection = tuple(v.name for v in plan.query.projection)
        answers = BlockTopK(tree, k, codec, projection).run()
        return self._result(answers, context, started)

    def _result(
        self, answers: list[Answer], context: ExecutionContext, started: float
    ) -> ExecutionResult:
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            answers=tuple(answers),
            execution_seconds=elapsed,
            answer_objects_created=context.answer_objects_created,
            tuples_pulled=context.tuples_pulled,
            joins_attempted=context.joins_attempted,
            joins_matched=context.joins_matched,
        )

    # ------------------------------------------------------------------
    # Encoded match-list store (block path only)
    # ------------------------------------------------------------------
    @property
    def encoded_store(self) -> EncodedListStore:
        """The encoded match-list store serving the block path."""
        return self._encoded_store

    def encoded_cache_stats(self) -> dict[str, int]:
        """Diagnostics from the encoded match-list store."""
        stats = self._encoded_store.stats()
        stats["encoded_lists"] = stats["size"]
        return stats
