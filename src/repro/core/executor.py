"""Plan execution (§3.2.2) with timing and memory accounting.

The executor materialises a plan's operator tree and drains it through a
dedup Top-K sink, recording wall-clock time, the answer-object count (the
paper's memory metric), and operator pull statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.plan import QueryPlan
from repro.kg.graph import KnowledgeGraph
from repro.operators.memory import ExecutionContext
from repro.operators.topk import TopK
from repro.query.answer import Answer
from repro.relax.chains import ChainRuleSet
from repro.relax.rules import RuleSet


@dataclass(frozen=True)
class ExecutionResult:
    """Top-k answers plus the efficiency measurements the paper reports."""

    answers: tuple[Answer, ...]
    execution_seconds: float
    answer_objects_created: int
    tuples_pulled: int
    joins_attempted: int
    joins_matched: int

    @property
    def scores(self) -> tuple[float, ...]:
        return tuple(answer.score for answer in self.answers)


class PlanExecutor:
    """Executes :class:`~repro.core.plan.QueryPlan` objects to top-k."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        rules: RuleSet,
        max_relaxations_per_pattern: int | None = None,
        chain_rules: ChainRuleSet | None = None,
    ) -> None:
        self._graph = graph
        self._rules = rules
        self._max_relaxations = max_relaxations_per_pattern
        self._chain_rules = chain_rules

    def execute(self, plan: QueryPlan, k: int) -> ExecutionResult:
        """Run *plan*, returning the top-k distinct answers by score."""
        context = ExecutionContext()
        started = time.perf_counter()
        tree = plan.build_operator_tree(
            self._graph,
            self._rules,
            context,
            max_relaxations_per_pattern=self._max_relaxations,
            chain_rules=self._chain_rules,
        )
        projection = tuple(v.name for v in plan.query.projection)
        answers = TopK(tree, k, projection).run()
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            answers=tuple(answers),
            execution_seconds=elapsed,
            answer_objects_created=context.answer_objects_created,
            tuples_pulled=context.tuples_pulled,
            joins_attempted=context.joins_attempted,
            joins_matched=context.joins_matched,
        )
