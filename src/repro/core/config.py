"""Engine configuration.

One frozen dataclass collects every knob the planner/executor pair
exposes, with the paper's settings as defaults so a bare
``EngineConfig()`` reproduces the published system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError


@dataclass(frozen=True)
class EngineConfig:
    """Configuration for :class:`~repro.core.engine.SpecQPEngine`.

    Attributes
    ----------
    k:
        Number of answers to return (the paper evaluates 10, 15, 20).
    mass_fraction:
        The score-mass fraction defining the histogram bucket boundary
        (the 80/20 rule → 0.8).
    histogram_kind / n_buckets:
        ``"two-bucket"`` is the paper's model; ``"n-bucket"`` enables the
        §4.5.2 multi-bucket ablation with *n_buckets* buckets.
    selectivity_mode:
        ``"exact"`` join cardinalities (footnote 3) or ``"independence"``
        estimates (ablation).
    max_relaxations_per_pattern:
        Cap on how many relaxation lists an Incremental Merge consumes
        (``None`` = all mined rules, the paper's behaviour).
    relax_all_when_insufficient:
        Extension beyond the paper (default off).  Algorithm 1 tests one
        relaxation at a time; when a query's top-k can only be reached by
        relaxing *several* patterns simultaneously (every single-relaxed
        query is empty), PLANGEN prunes everything and under-delivers.
        With this flag, whenever the original query cannot fill the top-k
        (``E_Q(k) == 0``) every relaxable pattern is kept instead.
    """

    k: int = 10
    mass_fraction: float = 0.8
    histogram_kind: str = "two-bucket"
    n_buckets: int = 4
    selectivity_mode: str = "exact"
    max_relaxations_per_pattern: int | None = None
    relax_all_when_insufficient: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ExperimentError(f"k must be >= 1, got {self.k}")
        if not 0.0 < self.mass_fraction < 1.0:
            raise ExperimentError(
                f"mass_fraction must be in (0,1), got {self.mass_fraction}"
            )
        if self.histogram_kind not in ("two-bucket", "n-bucket"):
            raise ExperimentError(
                f"histogram_kind must be 'two-bucket' or 'n-bucket', "
                f"got {self.histogram_kind!r}"
            )
        if self.n_buckets < 2:
            raise ExperimentError(f"n_buckets must be >= 2, got {self.n_buckets}")
        if self.selectivity_mode not in ("exact", "independence"):
            raise ExperimentError(
                f"selectivity_mode must be 'exact' or 'independence', "
                f"got {self.selectivity_mode!r}"
            )
        if (
            self.max_relaxations_per_pattern is not None
            and self.max_relaxations_per_pattern < 1
        ):
            raise ExperimentError(
                "max_relaxations_per_pattern must be >= 1 or None, got "
                f"{self.max_relaxations_per_pattern}"
            )

    def with_k(self, k: int) -> "EngineConfig":
        """A copy with a different *k* (the common sweep axis)."""
        return EngineConfig(
            k=k,
            mass_fraction=self.mass_fraction,
            histogram_kind=self.histogram_kind,
            n_buckets=self.n_buckets,
            selectivity_mode=self.selectivity_mode,
            max_relaxations_per_pattern=self.max_relaxations_per_pattern,
            relax_all_when_insufficient=self.relax_all_when_insufficient,
        )
