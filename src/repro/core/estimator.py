"""The expected-score estimator (§3.1).

Given the statistics catalog, the estimator builds the score distribution
of a query's answers by repeatedly convolving per-pattern densities
(§3.1.2) and refitting a two-bucket histogram after each step, then reads
expected scores at ranks off the final distribution using the
order-statistics rule (§3.1.3).

Relaxations enter through :meth:`query_distribution`'s ``replace``
argument: the planner substitutes one pattern's histogram with the
top-weighted relaxation's histogram scaled by its weight (the relaxed
scores are ``w · S(t|q')``, so the support contracts by ``w``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError
from repro.kg.pattern import TriplePattern
from repro.query.query import TriplePatternQuery
from repro.stats.catalog import StatisticsCatalog
from repro.stats.histogram import NBucketHistogram, TwoBucketHistogram
from repro.stats.order_statistics import expected_kth_score, expected_top_score
from repro.stats.piecewise import PiecewiseConstantDensity, convolve


@dataclass(frozen=True)
class QueryDistribution:
    """The estimated score distribution of a query's answer set.

    ``density`` is normalised (total mass 1); ``count`` is the estimated
    number of answers.  ``count == 0`` means the estimator believes the
    query has no answers at all, and every expected score is 0.
    """

    density: PiecewiseConstantDensity | None
    count: int

    def expected_score_at(self, rank: int) -> float:
        """Expected score of the answer at *rank* (1 = best)."""
        if self.count <= 0 or self.density is None:
            return 0.0
        return expected_kth_score(self.density, rank, self.count)

    def expected_top(self) -> float:
        if self.count <= 0 or self.density is None:
            return 0.0
        return expected_top_score(self.density, self.count)


class ExpectedScoreEstimator:
    """Builds query-level score distributions from catalog statistics."""

    def __init__(self, catalog: StatisticsCatalog) -> None:
        self._catalog = catalog

    @property
    def catalog(self) -> StatisticsCatalog:
        return self._catalog

    # ------------------------------------------------------------------
    def pattern_histogram(
        self, pattern: TriplePattern, weight: float = 1.0
    ) -> TwoBucketHistogram | NBucketHistogram:
        """The (possibly weight-scaled) histogram of one pattern."""
        histogram = self._catalog.histogram(pattern)
        if weight != 1.0:
            histogram = histogram.scaled(weight)
        return histogram

    def query_distribution(
        self,
        query: TriplePatternQuery,
        replace: dict[TriplePattern, tuple[TriplePattern, float]] | None = None,
    ) -> QueryDistribution:
        """Estimate the distribution of the answer scores of *query*.

        ``replace`` maps an original pattern to ``(relaxed_pattern, w)``;
        the relaxed pattern's histogram (scaled by ``w``) and match count
        stand in for the original's, and the cardinality is computed for
        the substituted query — this is how PLANGEN evaluates ``E_Q'(1)``.
        """
        replace = replace or {}
        for original in replace:
            if original not in query.patterns:
                raise EstimationError(
                    f"replacement target {original} not in query"
                )

        effective_patterns: list[TriplePattern] = []
        histograms: list[TwoBucketHistogram | NBucketHistogram] = []
        for pattern in query.patterns:
            if pattern in replace:
                relaxed, weight = replace[pattern]
                effective_patterns.append(relaxed)
                histograms.append(self.pattern_histogram(relaxed, weight))
            else:
                effective_patterns.append(pattern)
                histograms.append(self.pattern_histogram(pattern))

        if any(h.is_degenerate for h in histograms):
            # Some pattern has no matches: the whole query is empty.
            return QueryDistribution(density=None, count=0)

        # Cardinality of each slot prefix.  Two slots may hold the same
        # pattern (a relaxation may collide with another slot's pattern);
        # duplicates do not change the answer set, so they are dropped for
        # counting while still contributing their histogram to the sum.
        prefix_counts: list[int] = []
        for end in range(1, len(effective_patterns) + 1):
            distinct: list[TriplePattern] = []
            for candidate in effective_patterns[:end]:
                if candidate not in distinct:
                    distinct.append(candidate)
            prefix_counts.append(
                self._catalog.cardinalities.cardinality(
                    TriplePatternQuery(tuple(distinct))
                )
            )
        if prefix_counts[-1] <= 0:
            return QueryDistribution(density=None, count=0)

        current = histograms[0].to_density().normalized()
        for histogram, count in zip(histograms[1:], prefix_counts[1:]):
            convolved = convolve(current, histogram.to_density().normalized())
            refit = TwoBucketHistogram.refit(
                convolved,
                count=max(count, 1),
                mass_fraction=self._catalog.mass_fraction,
            )
            current = refit.to_density().normalized()
        return QueryDistribution(density=current, count=prefix_counts[-1])

    # ------------------------------------------------------------------
    def expected_kth(self, query: TriplePatternQuery, k: int) -> float:
        """``E_Q(k)``: expected k-th best answer score of *query*."""
        if k < 1:
            raise EstimationError(f"k must be >= 1, got {k}")
        return self.query_distribution(query).expected_score_at(k)

    def expected_top_of_relaxed(
        self,
        query: TriplePatternQuery,
        pattern: TriplePattern,
        relaxed: TriplePattern,
        weight: float,
    ) -> float:
        """``E_Q'(1)`` where ``Q' = Q \\ {pattern} ∪ {relaxed}``."""
        distribution = self.query_distribution(
            query, replace={pattern: (relaxed, weight)}
        )
        return distribution.expected_top()
