"""The public engine facade.

:class:`SpecQPEngine` wires the statistics catalog, the estimator, PLANGEN
and the executor together behind a two-call API::

    engine = SpecQPEngine(graph, rules)
    result = engine.query(query, k=10)

It also exposes :meth:`query_trinit` (the non-speculative baseline run
through the same operators) so experiments compare like with like.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import EngineConfig
from repro.core.estimator import ExpectedScoreEstimator
from repro.core.executor import (
    EXECUTOR_MODES,
    ExecutionResult,
    ExecutorMode,
    PlanExecutor,
)
from repro.core.plan import QueryPlan
from repro.core.planner import (
    ExecutorChoice,
    PlannerDecision,
    SpecQPPlanner,
    choose_executor,
)
from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.index import MatchListCacheHook
from repro.kg.sharding import ShardedGraph, ShardStrategy
from repro.operators.block import EncodedListStore
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery
from repro.query.sparql import parse_sparql
from repro.relax.chains import ChainRuleSet
from repro.relax.rules import RuleSet
from repro.stats.catalog import StatisticsCatalog


@dataclass(frozen=True)
class QueryResult:
    """Everything one engine run produced.

    ``planning_seconds`` is 0.0 for non-speculative plans (TriniT spends
    no time planning); ``total_seconds`` is the paper's "time taken to
    plan and execute each query".
    """

    answers: tuple[Answer, ...]
    plan: QueryPlan
    decision: PlannerDecision | None
    planning_seconds: float
    execution_seconds: float
    answer_objects_created: int
    tuples_pulled: int

    @property
    def total_seconds(self) -> float:
        return self.planning_seconds + self.execution_seconds

    @property
    def scores(self) -> tuple[float, ...]:
        return tuple(answer.score for answer in self.answers)

    @property
    def n_relaxed(self) -> int:
        return self.plan.n_relaxed


class SpecQPEngine:
    """Speculative top-k query engine over a scored KG with relaxations.

    Parameters
    ----------
    graph:
        The knowledge graph.
    rules:
        The mined weighted relaxation rules.
    config:
        Engine knobs; ``EngineConfig()`` reproduces the paper's setup.
    catalog:
        Optionally share a prebuilt :class:`StatisticsCatalog` (e.g. one
        warmed offline for a whole workload); by default the engine builds
        its own from *config*.
    chain_rules:
        Optional chain relaxations (§6 future-work extension); processed
        as extra Incremental Merge inputs whenever a pattern is relaxed.
    match_list_cache:
        Optionally route the graph's match-list lookups through a shared
        external cache (see :class:`repro.service.MatchListCache`); the
        engine attaches it to *graph* on construction.  Several engines
        over the same graph may share one cache — that is how
        :class:`repro.service.WorkloadRunner` amortises sorting across a
        batch of queries.  Attaching a *different* cache than the one
        already on the graph raises, because it would silently reroute
        every other engine's lookups; engines built without this
        argument simply use whatever the graph already has attached.
    shards:
        When >= 2, partition the graph into that many shards (see
        :class:`repro.kg.sharding.ShardedGraph`) and execute every leaf
        scan as a lazy per-shard merge with threshold early termination.
        Answers and scores are identical to unsharded execution; what
        changes is that cold shards' match lists are often never built.
        Graphs that are already sharded are used as-is.
    shard_strategy:
        ``"hash-subject"`` or ``"score-range"`` (only read when *shards*
        triggers partitioning).
    executor:
        ``"tuple"`` (the paper's pull-based object pipeline, default),
        ``"block"`` — the vectorized block-at-a-time engine that
        exchanges batches of dictionary-encoded id arrays and decodes
        only at the top-k sink — or ``"auto"``, which picks tuple vs
        block *per query* with the catalog-driven cost rule
        (:func:`~repro.core.planner.choose_executor`: cache-resident
        short lists → tuple, cold or long rebuilds → block).  Answers
        and scores are byte-identical under all three; ``"block"`` is
        the warm-throughput choice on columnar, sharded and live
        backends and silently falls back to the tuple pipeline where it
        cannot run (object-graph backend, chain relaxations), while
        ``"auto"`` keeps the better pipeline everywhere.  See
        :mod:`repro.operators.block`.
    encoded_cache_capacity:
        Entry bound of the block executor's encoded match-list store
        (``None`` = the executor default).  The service layer passes its
        match-list cache capacity so both executors hold comparable
        list budgets.
    encoded_store:
        Optionally share one :class:`~repro.operators.block.EncodedListStore`
        across engines (the block twin of *match_list_cache*); overrides
        *encoded_cache_capacity*.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        rules: RuleSet,
        config: EngineConfig | None = None,
        catalog: StatisticsCatalog | None = None,
        chain_rules: "ChainRuleSet | None" = None,
        match_list_cache: MatchListCacheHook | None = None,
        shards: int | None = None,
        shard_strategy: ShardStrategy = "hash-subject",
        executor: ExecutorMode = "tuple",
        encoded_cache_capacity: int | None = None,
        encoded_store: "EncodedListStore | None" = None,
    ) -> None:
        if executor not in EXECUTOR_MODES:
            raise ExecutionError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_MODES}"
            )
        self.config = config or EngineConfig()
        if shards is not None and shards > 1 and not isinstance(graph, ShardedGraph):
            graph = ShardedGraph.from_graph(graph, shards, strategy=shard_strategy)
        self.graph = graph
        self.rules = rules
        self.match_list_cache = match_list_cache
        if match_list_cache is not None:
            attached = graph.match_list_cache
            if attached is not None and attached is not match_list_cache:
                raise ValueError(
                    "graph already has a different match-list cache attached; "
                    "share one cache across engines or detach the old one first"
                )
            graph.attach_match_list_cache(match_list_cache)
        self.catalog = catalog or StatisticsCatalog(
            graph,
            mass_fraction=self.config.mass_fraction,
            histogram_kind=self.config.histogram_kind,  # type: ignore[arg-type]
            n_buckets=self.config.n_buckets,
            selectivity_mode=self.config.selectivity_mode,  # type: ignore[arg-type]
        )
        self.estimator = ExpectedScoreEstimator(self.catalog)
        self.planner = SpecQPPlanner(
            self.estimator,
            rules,
            relax_all_when_insufficient=self.config.relax_all_when_insufficient,
        )
        self.chain_rules = chain_rules
        self._executor_mode: ExecutorMode = executor
        executor_kwargs: dict[str, object] = {}
        if encoded_cache_capacity is not None:
            executor_kwargs["encoded_cache_capacity"] = encoded_cache_capacity
        if encoded_store is not None:
            executor_kwargs["encoded_store"] = encoded_store
        self.executor = PlanExecutor(
            graph,
            rules,
            self.config.max_relaxations_per_pattern,
            chain_rules=chain_rules,
            # "auto" resolves per query; the underlying executor carries
            # both pipelines, so its configured kind only names the
            # default when no per-call override is passed.
            executor="block" if executor == "auto" else executor,
            **executor_kwargs,  # type: ignore[arg-type]
        )

    @property
    def executor_kind(self) -> ExecutorMode:
        """The configured execution mode (``"tuple"``/``"block"``/``"auto"``)."""
        return self._executor_mode

    def resolve_executor(self, query: TriplePatternQuery) -> ExecutorChoice:
        """The concrete pipeline that will serve *query* right now.

        In ``"auto"`` mode this runs the catalog cost rule
        (:func:`~repro.core.planner.choose_executor`) against the graph's
        attached match-list cache; pinned modes return a trivial choice.
        """
        if self._executor_mode != "auto":
            kind = self._executor_mode
            if kind == "block" and not self.executor.can_execute_block():
                kind = "tuple"
            return ExecutorChoice(
                executor=kind,  # type: ignore[arg-type]
                reason="pinned",
                resident_patterns=0,
                total_patterns=len(query.patterns),
                missing_rows=None,
            )
        return choose_executor(
            query,
            self.catalog,
            cache=self.graph.match_list_cache,
            block_available=self.executor.can_execute_block(),
        )

    # ------------------------------------------------------------------
    def parse(self, text: str) -> TriplePatternQuery:
        """Parse mini-SPARQL text (convenience passthrough)."""
        return parse_sparql(text)

    def plan(self, query: TriplePatternQuery, k: int | None = None) -> PlannerDecision:
        """Run PLANGEN only (no execution)."""
        return self.planner.plan(query, k or self.config.k)

    def query(
        self, query: TriplePatternQuery | str, k: int | None = None
    ) -> QueryResult:
        """Speculatively plan and execute *query*, returning top-k."""
        if isinstance(query, str):
            query = self.parse(query)
        k = k or self.config.k
        decision = self.planner.plan(query, k)
        execution = self.executor.execute(
            decision.plan, k, executor=self.resolve_executor(query).executor
        )
        return self._result(decision.plan, decision, decision.planning_seconds, execution)

    def query_trinit(
        self, query: TriplePatternQuery | str, k: int | None = None
    ) -> QueryResult:
        """Run the TriniT baseline plan (all patterns relaxed; true top-k)."""
        if isinstance(query, str):
            query = self.parse(query)
        k = k or self.config.k
        plan = QueryPlan.trinit(query)
        execution = self.executor.execute(
            plan, k, executor=self.resolve_executor(query).executor
        )
        return self._result(plan, None, 0.0, execution)

    def query_exact(
        self, query: TriplePatternQuery | str, k: int | None = None
    ) -> QueryResult:
        """Run without any relaxations (plain rank joins)."""
        if isinstance(query, str):
            query = self.parse(query)
        k = k or self.config.k
        plan = QueryPlan.exact(query)
        execution = self.executor.execute(
            plan, k, executor=self.resolve_executor(query).executor
        )
        return self._result(plan, None, 0.0, execution)

    # ------------------------------------------------------------------
    def _result(
        self,
        plan: QueryPlan,
        decision: PlannerDecision | None,
        planning_seconds: float,
        execution: ExecutionResult,
    ) -> QueryResult:
        return QueryResult(
            answers=execution.answers,
            plan=plan,
            decision=decision,
            planning_seconds=planning_seconds,
            execution_seconds=execution.execution_seconds,
            answer_objects_created=execution.answer_objects_created,
            tuples_pulled=execution.tuples_pulled,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpecQPEngine(graph={self.graph.name!r}, k={self.config.k}, "
            f"rules={len(self.rules)})"
        )
