"""Spec-QP core: the speculative planner and its execution engine (§3).

* :class:`~repro.core.estimator.ExpectedScoreEstimator` — convolves the
  per-pattern score histograms into a query-level distribution and reads
  expected scores at ranks off it (§3.1).
* :class:`~repro.core.planner.SpecQPPlanner` — PLANGEN (Algorithm 1).
* :class:`~repro.core.plan.QueryPlan` — the partition {join group} ∪
  singletons, plus operator-tree construction (§3.2.2).
* :class:`~repro.core.executor.PlanExecutor` — runs a plan to top-k.
* :class:`~repro.core.engine.SpecQPEngine` — the public facade.
"""

from repro.core.config import EngineConfig
from repro.core.engine import QueryResult, SpecQPEngine
from repro.core.estimator import ExpectedScoreEstimator
from repro.core.plan import QueryPlan
from repro.core.planner import PlannerDecision, SpecQPPlanner

__all__ = [
    "EngineConfig",
    "ExpectedScoreEstimator",
    "PlannerDecision",
    "QueryPlan",
    "QueryResult",
    "SpecQPEngine",
    "SpecQPPlanner",
]
