"""PLANGEN — the speculative query planner (Algorithm 1, §3.2.1).

For each triple pattern ``q_i`` of the query, the planner tests whether
the *top-weighted* relaxation of ``q_i`` could place an answer in the
top-k: it compares the expected best score of the relaxed query,
``E_Q'(1)``, against the expected k-th best score of the original query,
``E_Q(k)``.  Only the top-weighted rule needs testing because per-list
normalisation makes each relaxation's best achievable score equal its
weight, so the top-weighted relaxation dominates all others for the
pattern.

Patterns whose test succeeds become singletons (their relaxations will be
processed by Incremental Merge); the rest form the join group.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Container

from repro.core.estimator import ExpectedScoreEstimator
from repro.core.executor import ExecutorKind
from repro.core.plan import QueryPlan
from repro.errors import PlanError
from repro.kg.pattern import TriplePattern
from repro.query.query import TriplePatternQuery
from repro.query.rewrite import top_weighted_relaxation
from repro.relax.rules import RelaxationRule, RuleSet
from repro.stats.catalog import StatisticsCatalog


@dataclass(frozen=True)
class PatternDecision:
    """Why one pattern was (not) marked for relaxation."""

    pattern: TriplePattern
    pattern_index: int
    tested_rule: RelaxationRule | None
    expected_relaxed_top: float
    relax: bool


@dataclass(frozen=True)
class PlannerDecision:
    """The full outcome of one PLANGEN run, for reports and debugging."""

    plan: QueryPlan
    expected_kth_original: float
    per_pattern: tuple[PatternDecision, ...]
    planning_seconds: float

    @property
    def relaxed_indexes(self) -> tuple[int, ...]:
        return self.plan.singletons


class SpecQPPlanner:
    """Algorithm 1 (PLANGEN) over an expected-score estimator.

    ``relax_all_when_insufficient`` enables an extension beyond the paper:
    Algorithm 1 tests one relaxation at a time, so when the true top-k is
    only reachable through *simultaneous* relaxations of several patterns
    (every single-relaxed query is empty), it prunes everything.  The
    extension keeps every relaxable pattern whenever the original query
    cannot fill the top-k at all (``E_Q(k) == 0``).
    """

    def __init__(
        self,
        estimator: ExpectedScoreEstimator,
        rules: RuleSet,
        relax_all_when_insufficient: bool = False,
    ) -> None:
        self._estimator = estimator
        self._rules = rules
        self._relax_all_when_insufficient = relax_all_when_insufficient

    @property
    def estimator(self) -> ExpectedScoreEstimator:
        return self._estimator

    def plan(self, query: TriplePatternQuery, k: int) -> PlannerDecision:
        """Generate the speculative plan for *query* at the given *k*.

        A pattern with no applicable relaxation rules can never be a
        singleton (there is nothing to merge), matching the paper's
        Twitter observation that predicates without relaxations stay
        unrelaxed by construction.
        """
        if k < 1:
            raise PlanError(f"k must be >= 1, got {k}")
        started = time.perf_counter()

        expected_kth = self._estimator.expected_kth(query, k)
        force_relax_all = (
            self._relax_all_when_insufficient and expected_kth <= 0.0
        )

        decisions: list[PatternDecision] = []
        relaxed_indexes: list[int] = []
        for index, pattern in enumerate(query.patterns):
            rule = top_weighted_relaxation(query, pattern, self._rules)
            if rule is None:
                decisions.append(
                    PatternDecision(
                        pattern=pattern,
                        pattern_index=index,
                        tested_rule=None,
                        expected_relaxed_top=0.0,
                        relax=False,
                    )
                )
                continue
            expected_top = self._estimator.expected_top_of_relaxed(
                query, pattern, rule.range, rule.weight
            )
            relax = expected_top > expected_kth or force_relax_all
            if relax:
                relaxed_indexes.append(index)
            decisions.append(
                PatternDecision(
                    pattern=pattern,
                    pattern_index=index,
                    tested_rule=rule,
                    expected_relaxed_top=expected_top,
                    relax=relax,
                )
            )

        plan = QueryPlan.speculative(query, tuple(relaxed_indexes))
        elapsed = time.perf_counter() - started
        return PlannerDecision(
            plan=plan,
            expected_kth_original=expected_kth,
            per_pattern=tuple(decisions),
            planning_seconds=elapsed,
        )


# ----------------------------------------------------------------------
# Cost-based executor selection (the ``executor="auto"`` mode)
# ----------------------------------------------------------------------

#: When the match lists a query still has to (re)build total at most this
#: many rows, the tuple pipeline's rebuild is cheaper than the block
#: pipeline's per-query setup (encoded-store lookups, codec pinning,
#: block assembly).  Beyond it, vectorized sorting wins.
DEFAULT_TUPLE_REBUILD_ROWS = 256


@dataclass(frozen=True)
class ExecutorChoice:
    """One cost-rule decision: which pipeline serves this query, and why."""

    executor: ExecutorKind
    reason: str
    resident_patterns: int
    total_patterns: int
    missing_rows: int | None

    @property
    def cache_resident(self) -> bool:
        return self.resident_patterns == self.total_patterns


def choose_executor(
    query: TriplePatternQuery,
    catalog: StatisticsCatalog,
    cache: Container | None = None,
    block_available: bool = True,
    tuple_rebuild_rows: int = DEFAULT_TUPLE_REBUILD_ROWS,
) -> ExecutorChoice:
    """Pick tuple vs block for one query from catalog statistics.

    The rule mirrors where each pipeline's cost actually goes:

    * every match list the query needs is **resident** in the shared
      string-list cache (*cache*, keyed by
      :meth:`~repro.kg.pattern.TriplePattern.key`) → ``"tuple"``: the
      pull-based pipeline streams straight off the cached sorted lists
      with top-k early termination and pays no per-query block setup;
    * some list is cold but the catalog's estimated lengths say the
      rebuild totals at most *tuple_rebuild_rows* rows → ``"tuple"``:
      sorting a handful of rows is cheaper than assembling blocks;
    * otherwise → ``"block"``: the rebuild dominates and the vectorized
      mask + lexsort over encoded id columns wins by a multiple.  A
      pattern with **no** catalog statistics counts as an unbounded
      rebuild (unmeasured means nothing about it is warm).

    ``block_available=False`` (object-graph backend, chain relaxations)
    forces ``"tuple"`` regardless.  Answers are byte-identical either
    way, so the rule only ever trades speed, never correctness.
    """
    total = len(query.patterns)
    if not block_available:
        return ExecutorChoice(
            executor="tuple",
            reason="block-unavailable",
            resident_patterns=0,
            total_patterns=total,
            missing_rows=None,
        )
    resident = 0
    missing_rows: int | None = 0
    for pattern in query.patterns:
        if cache is not None and pattern.key() in cache:
            resident += 1
            continue
        length = catalog.cached_match_count(pattern)
        if length is None:
            missing_rows = None  # unmeasured: assume the worst
        elif missing_rows is not None:
            missing_rows += length
    if resident == total:
        return ExecutorChoice(
            executor="tuple",
            reason="cache-resident",
            resident_patterns=resident,
            total_patterns=total,
            missing_rows=0,
        )
    if missing_rows is not None and missing_rows <= tuple_rebuild_rows:
        return ExecutorChoice(
            executor="tuple",
            reason="short-rebuild",
            resident_patterns=resident,
            total_patterns=total,
            missing_rows=missing_rows,
        )
    return ExecutorChoice(
        executor="block",
        reason="unmeasured-lists" if missing_rows is None else "long-rebuild",
        resident_patterns=resident,
        total_patterns=total,
        missing_rows=missing_rows,
    )
