"""ASCII bar charts for the efficiency figures.

The paper's Figures 6–9 are grouped bar charts (T vs S per group).  This
module renders the same series as terminal-friendly horizontal bars so
``spec-qp fig7 --chart`` gives an immediate visual read without any
plotting dependency.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments.figures import FigureGroup
from repro.metrics.report import fmt_seconds

#: Width of the widest bar, in characters.
BAR_WIDTH = 46


def _bar(value: float, maximum: float, fill: str) -> str:
    if maximum <= 0:
        return ""
    length = int(round(BAR_WIDTH * value / maximum))
    return fill * max(length, 1 if value > 0 else 0)


def render_chart(
    groups: Sequence[FigureGroup],
    metric: str = "runtime",
    title: str = "",
) -> str:
    """Render grouped T/S bars, one panel per k.

    ``metric`` is ``"runtime"`` (seconds) or ``"memory"`` (answer objects).
    """
    if metric == "runtime":
        t_of: Callable[[FigureGroup], float] = lambda g: g.trinit_seconds
        s_of: Callable[[FigureGroup], float] = lambda g: g.spec_seconds
        fmt: Callable[[float], str] = fmt_seconds
    elif metric == "memory":
        t_of = lambda g: g.trinit_objects
        s_of = lambda g: g.spec_objects
        fmt = lambda v: f"{v:,.0f}"
    else:
        raise ExperimentError(
            f"metric must be 'runtime' or 'memory', got {metric!r}"
        )
    if not groups:
        raise ExperimentError("no figure groups to chart")

    maximum = max(max(t_of(g), s_of(g)) for g in groups)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for k in sorted({g.k for g in groups}):
        lines.append(f"k={k}")
        for group in sorted(
            (g for g in groups if g.k == k), key=lambda g: g.group
        ):
            t_value, s_value = t_of(group), s_of(group)
            lines.append(
                f"  group {group.group} "
                f"({group.n_queries} queries)"
            )
            lines.append(
                f"    T {_bar(t_value, maximum, '█'):<{BAR_WIDTH}} {fmt(t_value)}"
            )
            lines.append(
                f"    S {_bar(s_value, maximum, '▒'):<{BAR_WIDTH}} {fmt(s_value)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
