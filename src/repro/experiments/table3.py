"""Table 3 — Prediction accuracy grouped by required relaxation count.

For each (dataset, k), queries are grouped by how many of their triple
patterns *required* relaxation to produce the true top-k; within each
group the paper counts how many queries Spec-QP predicted *exactly* the
right relaxation set, shown as ``correct(total)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.session import ExperimentSession
from repro.metrics.report import render_table


@dataclass(frozen=True)
class Table3Cell:
    k: int
    n_required: int
    correct: int
    total: int

    def format(self) -> str:
        if self.total == 0:
            return "-(-)"
        return f"{self.correct}({self.total})"


def table3_prediction_accuracy(session: ExperimentSession) -> list[Table3Cell]:
    """One cell per (k, required-relaxation-count) group."""
    cells: list[Table3Cell] = []
    max_patterns = max(len(q) for q in session.workload.queries)
    for k in session.ks:
        records = session.records(k)
        for n_required in range(0, max_patterns + 1):
            group = [r for r in records if r.n_required_relaxations == n_required]
            cells.append(
                Table3Cell(
                    k=k,
                    n_required=n_required,
                    correct=sum(1 for r in group if r.prediction_correct),
                    total=len(group),
                )
            )
    return cells


def render(session: ExperimentSession) -> str:
    cells = table3_prediction_accuracy(session)
    max_patterns = max(len(q) for q in session.workload.queries)
    headers = ["queries requiring"] + [f"k={k}" for k in session.ks]
    rows = []
    for n_required in range(0, max_patterns + 1):
        row: list[object] = [f"{n_required} relaxation(s)"]
        for k in session.ks:
            cell = next(
                c for c in cells if c.k == k and c.n_required == n_required
            )
            row.append(cell.format())
        rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            f"Table 3 — prediction accuracy over {session.workload.name} "
            "(correct(total))"
        ),
    )
