"""Command-line entry point: ``spec-qp`` / ``python -m repro.experiments``.

Examples::

    spec-qp table2 --dataset xkg
    spec-qp all --dataset twitter --scale small
    spec-qp fig7 --dataset xkg --ks 10 20
    spec-qp workload --min-queries 200 --workers 4 --mode both
    spec-qp workload --shards 4 --shard-strategy score-range
    spec-qp workload --scenario adversarial-ties --executor auto
    spec-qp convert --input graph.tsv --output graph.npz
    spec-qp update --input graph.npz --updates edits.tsv --output graph2.npz
    spec-qp update --scenario social-update-heavy
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.datasets import (
    TwitterConfig,
    Workload,
    XKGConfig,
    build_scenario,
    generate_twitter,
    generate_xkg,
    scenario_names,
)
from repro.errors import ExperimentError
from repro.experiments import table2, table3, table4
from repro.experiments.figures import render as render_figure
from repro.experiments.session import ExperimentSession
from repro.metrics.efficiency import TimingProtocol

EXPERIMENTS = (
    "table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "all",
    "workload", "convert", "update",
)

#: Scales for quick runs vs full reproduction.
SCALES = {
    "small": dict(
        xkg=XKGConfig(n_entities=800, n_queries=24, n_topics=60),
        twitter=TwitterConfig(n_tweets=1500, n_queries=20),
    ),
    "default": dict(xkg=XKGConfig(), twitter=TwitterConfig()),
    "large": dict(
        xkg=XKGConfig(n_entities=8000, n_topics=300),
        twitter=TwitterConfig(n_tweets=20000, n_trends=50),
    ),
}


def build_workload(dataset: str, scale: str, seed: int | None) -> Workload:
    configs = SCALES.get(scale)
    if configs is None:
        raise ExperimentError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    if dataset == "xkg":
        config = configs["xkg"]
        if seed is not None:
            config = XKGConfig(**{**config.__dict__, "seed": seed})
        return generate_xkg(config)  # type: ignore[arg-type]
    if dataset == "twitter":
        config = configs["twitter"]
        if seed is not None:
            config = TwitterConfig(**{**config.__dict__, "seed": seed})
        return generate_twitter(config)  # type: ignore[arg-type]
    raise ExperimentError(f"unknown dataset {dataset!r}; choose 'xkg' or 'twitter'")


def _figures_for(dataset: str) -> dict[str, tuple[str, str]]:
    """experiment name -> (axis, figure label) valid for *dataset*."""
    if dataset == "xkg":
        return {"fig6": ("patterns", "Figure 6"), "fig7": ("relaxed", "Figure 7")}
    return {"fig8": ("patterns", "Figure 8"), "fig9": ("relaxed", "Figure 9")}


def run_experiment(
    name: str, session: ExperimentSession, chart: bool = False
) -> str:
    dataset = session.workload.name
    figures = _figures_for(dataset)
    if name == "table2":
        return table2.render(session)
    if name == "table3":
        return table3.render(session)
    if name == "table4":
        return table4.render(session)
    if name in figures:
        axis, label = figures[name]
        text = render_figure(session, axis, label)  # type: ignore[arg-type]
        if chart:
            from repro.experiments.figures import _figure
            from repro.experiments.plotting import render_chart

            groups = _figure(session, axis)  # type: ignore[arg-type]
            text += "\n\n" + render_chart(
                groups, "runtime", f"{label} — runtimes"
            )
            text += "\n\n" + render_chart(
                groups, "memory", f"{label} — answer objects"
            )
        return text
    if name in ("fig6", "fig7", "fig8", "fig9"):
        raise ExperimentError(
            f"{name} is reported on the "
            f"{'XKG' if name in ('fig6', 'fig7') else 'Twitter'} dataset; "
            f"current dataset is {dataset!r}"
        )
    raise ExperimentError(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")


def _storage_format(path: str) -> str:
    """``'snapshot'``, ``'snapshot-v2'`` or ``'tsv'`` from a file name, or raise."""
    lowered = path.lower()
    if lowered.endswith(".npz"):
        return "snapshot"
    if lowered.endswith(".kg2"):
        return "snapshot-v2"
    if lowered.endswith((".tsv", ".tsv.gz")):
        return "tsv"
    raise ExperimentError(
        f"cannot infer storage format of {path!r}: "
        "use .tsv / .tsv.gz (scored TSV), .npz (v1 snapshot) or "
        ".kg2 (v2 packed snapshot, mmap-attachable)"
    )


def run_convert(args: "argparse.Namespace") -> int:
    """The ``convert`` subcommand: TSV ⇄ binary snapshot (v1 ⇄ v2).

    Formats are inferred from the file suffixes: ``.tsv``/``.tsv.gz``
    (scored TSV), ``.npz`` (v1 snapshot), ``.kg2`` (v2 packed snapshot —
    mmap-attachable in O(ms)).  Any input format converts to any output
    format.  TSV input streams straight into the columnar backend
    (interned once, never an object-per-triple dict), so converting a
    large graph to a snapshot is a one-time cost that every later load
    skips.
    """
    import time

    from repro.errors import KnowledgeGraphError
    from repro.kg import storage

    if not args.input or not args.output:
        raise ExperimentError("convert requires --input and --output")
    in_format = _storage_format(args.input)
    out_format = _storage_format(args.output)
    started = time.perf_counter()
    try:
        graph = _load_graph(args.input, args.graph_name)
        if out_format == "snapshot":
            count = storage.save_snapshot(graph, args.output)
        elif out_format == "snapshot-v2":
            count = storage.save_snapshot_v2(graph, args.output)
        else:
            count = storage.save_tsv(graph, args.output)
    except (KnowledgeGraphError, OSError) as error:
        raise ExperimentError(f"convert failed: {error}") from None
    seconds = time.perf_counter() - started
    print(
        f"converted {args.input} ({in_format}) -> {args.output} ({out_format}): "
        f"{count} triples, {graph.store.n_terms} terms, {seconds:.2f}s"
    )
    return 0


def _load_graph(path: str, name: str | None):
    """Load a TSV or snapshot graph straight into the columnar backend."""
    from pathlib import Path

    from repro.kg import storage
    from repro.kg.columnar import ColumnarGraph

    fmt = _storage_format(path)
    if fmt == "snapshot-v2":
        return storage.load_snapshot_v2(path, name=name)
    if fmt == "snapshot":
        # content-dispatches, so a v2 file renamed .npz still loads
        return storage.load_snapshot(path, name=name)
    return ColumnarGraph.from_triples(
        storage.iter_tsv(path), name=name or Path(path).stem
    )


def run_update(args: "argparse.Namespace") -> int:
    """The ``update`` subcommand: apply a mutation TSV through the delta path.

    Loads the base graph (TSV or snapshot), overlays a
    :class:`~repro.kg.delta.LiveGraph` with the requested
    ``--compact-threshold``, streams the ``+``/``-`` mutations through
    it, compacts whatever delta remains (the written graph is always a
    plain columnar store) and saves the result — never a full
    object-graph rebuild.
    """
    import time

    from repro.errors import KnowledgeGraphError
    from repro.kg import storage
    from repro.kg.delta import LiveGraph

    if args.scenario:
        return _run_scenario_update(args)
    if not args.input or not args.updates or not args.output:
        raise ExperimentError(
            "update requires --input, --updates and --output (or --scenario)"
        )
    out_format = _storage_format(args.output)
    started = time.perf_counter()
    try:
        base = _load_graph(args.input, args.graph_name)
        live = LiveGraph(base, compact_threshold=args.compact_threshold)
        counts = live.apply_updates(storage.iter_update_tsv(args.updates))
        live.compact()
        result = live.base  # the folded columnar graph, snapshot-ready
        if out_format == "snapshot":
            storage.save_snapshot(result, args.output)
        elif out_format == "snapshot-v2":
            storage.save_snapshot_v2(result, args.output)
        else:
            storage.save_tsv(result, args.output)
    except (KnowledgeGraphError, OSError) as error:
        raise ExperimentError(f"update failed: {error}") from None
    seconds = time.perf_counter() - started
    print(
        f"applied {counts['adds']} adds / {counts['removes']} removes "
        f"({counts['absent_removes']} absent) from {args.updates} to {args.input}: "
        f"{result.size} triples, {live.compactions} compactions, "
        f"wrote {args.output} ({out_format}), {seconds:.2f}s"
    )
    return 0


def _run_scenario_update(args: "argparse.Namespace") -> int:
    """``update --scenario NAME``: drive the pack's own update stream.

    Streams the pack's generated mutations over its graph through the
    same :class:`~repro.kg.delta.LiveGraph` path the file-based update
    command uses, then compacts; ``--output`` optionally persists the
    post-update graph.  The pack's graph and stream are seed-deterministic,
    so this is a reproducible end-to-end smoke of the write path.
    """
    import time

    from repro.errors import KnowledgeGraphError
    from repro.kg import storage
    from repro.kg.delta import LiveGraph

    pack = build_scenario(args.scenario, seed=args.seed)
    if not pack.updates:
        raise ExperimentError(
            f"scenario {pack.name!r} ships no update stream; "
            "choose an update-carrying pack (e.g. social-update-heavy)"
        )
    started = time.perf_counter()
    try:
        live = LiveGraph(
            pack.workload.graph, compact_threshold=args.compact_threshold
        )
        counts = live.apply_updates(pack.updates)
        live.compact()
        result = live.base
        if args.output:
            fmt = _storage_format(args.output)
            if fmt == "snapshot":
                storage.save_snapshot(result, args.output)
            elif fmt == "snapshot-v2":
                storage.save_snapshot_v2(result, args.output)
            else:
                storage.save_tsv(result, args.output)
    except (KnowledgeGraphError, OSError) as error:
        raise ExperimentError(f"update failed: {error}") from None
    seconds = time.perf_counter() - started
    wrote = f", wrote {args.output}" if args.output else ""
    print(
        f"scenario {pack.name} (seed {pack.seed}): applied {counts['adds']} adds "
        f"/ {counts['removes']} removes ({counts['absent_removes']} absent): "
        f"{result.size} triples, {live.compactions} compactions{wrote}, "
        f"{seconds:.2f}s"
    )
    return 0


def run_workload(args: "argparse.Namespace") -> int:
    """The ``workload`` subcommand: batch serving through the service layer."""
    from repro.service import WorkloadRunner

    pack = None
    if args.scenario:
        pack = build_scenario(args.scenario, seed=args.seed)
        workload = pack.workload
        print(f"# scenario: {pack.name} (seed {pack.seed}) — {pack.description}")
    else:
        workload = build_workload(args.dataset, args.scale, args.seed)
    if args.k is None:
        args.k = pack.k if pack else 10
    queries = workload.stretched(max(args.min_queries, len(workload.queries)))
    runner_kwargs: dict = {}
    if args.result_cache is not None:
        runner_kwargs["result_cache_capacity"] = args.result_cache
    runner = WorkloadRunner(
        workload,
        n_workers=args.workers,
        worker_model=args.worker_model,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
        executor=args.executor,
        **runner_kwargs,
    )
    print(f"# workload: {workload.summary()}")
    print(
        f"# batch: {len(queries)} queries, k={args.k}, mode={args.mode}, "
        f"executor={args.executor}, worker-model={args.worker_model}"
    )
    if args.executor in ("block", "auto") and args.shards == 1 and not hasattr(
        runner.graph, "store"
    ):
        print(
            "# note: the workload graph is object-backed; the block "
            "executor falls back to the tuple pipeline (convert to the "
            "columnar backend or pass --shards >= 2 to vectorize)"
        )
    if args.shards > 1:
        sizes = runner.graph.shard_sizes()
        print(
            f"# sharding: {args.shards} shards ({args.shard_strategy}), "
            f"sizes={list(sizes)}"
        )

    try:
        if args.mode == "both":
            comparison = runner.compare(queries, k=args.k)
            print()
            print(comparison["cold"].render())  # type: ignore[union-attr]
            print()
            print(comparison["warm"].render())  # type: ignore[union-attr]
            print()
            print(f"warm-over-cold speed-up: {comparison['speedup']:.2f}x")
            if args.workers > 1:
                print(
                    f"# note: warm ran on {args.workers} workers, cold is always "
                    "sequential; use --workers 1 to attribute the speed-up to "
                    "caching alone"
                )
        else:
            report = runner.run(queries, k=args.k, mode=args.mode)
            print()
            print(report.render())
        if pack is not None and pack.updates and args.mode != "cold":
            # Update-carrying packs smoke the full serve → write → re-serve
            # loop: the second warm batch runs on the post-update version.
            counts = runner.apply_updates(list(pack.updates))
            print()
            print(
                f"# scenario update stream: {counts['adds']} adds / "
                f"{counts['removes']} removes ({counts['absent_removes']} absent), "
                f"graph version {counts['graph_version']}"
            )
            post = runner.run(queries, k=args.k, mode="warm")
            print()
            print(post.render())
    finally:
        runner.close()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="spec-qp",
        description="Reproduce Spec-QP's tables and figures on synthetic workloads.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--dataset", choices=("xkg", "twitter"), default="xkg")
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--ks", type=int, nargs="+", default=[10, 15, 20], metavar="K"
    )
    parser.add_argument(
        "--runs", type=int, default=5,
        help="timing runs per query (paper: 5, average of last 3)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="append ASCII bar charts to figure outputs",
    )
    service = parser.add_argument_group(
        "workload", "options for the batch-serving 'workload' experiment"
    )
    service.add_argument(
        "--min-queries", type=int, default=100,
        help="stretch the query set to at least this many queries (default 100)",
    )
    service.add_argument(
        "--workers", type=int, default=1,
        help="workers for warm batches (default 1)",
    )
    service.add_argument(
        "--worker-model", choices=("thread", "process"), default="thread",
        help="warm-batch worker pool: GIL-sharing threads (default), or "
        "processes that each mmap-attach one shared v2 snapshot of the "
        "graph (true multi-core; answers identical)",
    )
    service.add_argument(
        "--k", type=int, default=None,
        help="top-k per query (default 10, or the scenario pack's k)",
    )
    service.add_argument(
        "--scenario", choices=scenario_names(), default=None, metavar="NAME",
        help="serve a named scenario pack instead of --dataset/--scale "
        "(seed-deterministic coverage workloads; --seed overrides the "
        "pack's frozen seed; update-carrying packs replay their update "
        "stream after the batch).  One of: " + ", ".join(scenario_names()),
    )
    service.add_argument(
        "--mode", choices=("warm", "cold", "both"), default="warm",
        help="shared caches (warm), per-query rebuild (cold), or both",
    )
    service.add_argument(
        "--shards", type=int, default=1,
        help="partition the graph into N shards with lazy per-shard "
        "top-k merging (default 1 = unsharded)",
    )
    service.add_argument(
        "--shard-strategy", choices=("hash-subject", "score-range"),
        default="score-range",
        help="row partitioning: stable subject hash, or contiguous "
        "score ranges (default; hottest triples in shard 0)",
    )
    service.add_argument(
        "--executor", choices=("tuple", "block", "auto"), default="tuple",
        help="execution strategy: tuple-at-a-time operators (default), "
        "the vectorized block-at-a-time engine over encoded columns, or "
        "'auto' to pick per query with the catalog cost rule (identical "
        "answers under all three)",
    )
    service.add_argument(
        "--result-cache", type=int, default=None, metavar="N",
        help="capacity of the versioned whole-answer result cache "
        "(0 disables it; default: the runner's built-in capacity)",
    )
    convert = parser.add_argument_group(
        "convert", "options for the 'convert' storage subcommand (TSV ⇄ snapshot)"
    )
    convert.add_argument(
        "--input", default=None, metavar="PATH",
        help="source graph: .tsv / .tsv.gz (scored TSV), .npz (v1 snapshot) "
        "or .kg2 (v2 packed snapshot)",
    )
    convert.add_argument(
        "--output", default=None, metavar="PATH",
        help="destination graph; format inferred from the suffix",
    )
    convert.add_argument(
        "--graph-name", default=None,
        help="name for the converted graph (default: input stem / stored name)",
    )
    update = parser.add_argument_group(
        "update", "options for the 'update' live-mutation subcommand"
    )
    update.add_argument(
        "--updates", default=None, metavar="PATH",
        help="mutation TSV: '+<TAB>s<TAB>p<TAB>o[<TAB>score]' adds or "
        "overwrites, '-<TAB>s<TAB>p<TAB>o' removes (applied in order to "
        "the --input graph, result written to --output)",
    )
    update.add_argument(
        "--compact-threshold", type=int, default=None, metavar="N",
        help="fold the delta into a fresh columnar base every N pending "
        "mutations while applying (default: one compaction at the end)",
    )
    args = parser.parse_args(argv)

    try:
        return _dispatch(args)
    except ExperimentError as error:
        print(f"spec-qp: error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: "argparse.Namespace") -> int:
    if args.experiment == "convert":
        return run_convert(args)
    if args.experiment == "update":
        return run_update(args)
    if args.experiment == "workload":
        return run_workload(args)

    workload = build_workload(args.dataset, args.scale, args.seed)
    # Paper protocol: discard warm-up runs.  Keep the last 3 runs when
    # possible, and never keep the cold first run unless it is the only one.
    n_keep = min(3, max(args.runs - 2, 1))
    protocol = TimingProtocol(n_runs=args.runs, n_keep=n_keep)
    session = ExperimentSession(
        workload, ks=tuple(args.ks), protocol=protocol
    )

    if args.experiment == "all":
        names = ["table2", "table3", "table4", *sorted(_figures_for(args.dataset))]
    else:
        names = [args.experiment]

    print(f"# workload: {workload.summary()}")
    for name in names:
        print()
        print(run_experiment(name, session, chart=args.chart))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
