"""Per-query evaluation records shared by all tables and figures.

An :class:`ExperimentSession` evaluates every workload query at every
``k`` with both engines — Spec-QP and TriniT — under the paper's warm-
cache timing protocol, and derives all quality metrics once.  Table and
figure runners then only aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EngineConfig
from repro.core.engine import QueryResult, SpecQPEngine
from repro.datasets.workload import Workload
from repro.errors import ExperimentError
from repro.metrics.efficiency import TimingProtocol
from repro.metrics.quality import (
    ScoreError,
    precision_at_k,
    prediction_is_exact,
    required_relaxations,
    score_error,
)
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery


@dataclass(frozen=True)
class QueryRecord:
    """Everything measured for one (query, k) pair."""

    dataset: str
    query_name: str
    k: int
    n_patterns: int

    # Spec-QP
    spec_answers: tuple[Answer, ...]
    spec_plan: str
    predicted_relaxed: frozenset[int]
    spec_planning_seconds: float
    spec_total_seconds: float
    spec_answer_objects: int

    # TriniT (true top-k)
    trinit_answers: tuple[Answer, ...]
    trinit_total_seconds: float
    trinit_answer_objects: int

    # Quality
    required_relaxed: frozenset[int]
    precision: float
    error: ScoreError

    @property
    def n_relaxed_by_spec(self) -> int:
        return len(self.predicted_relaxed)

    @property
    def n_required_relaxations(self) -> int:
        return len(self.required_relaxed)

    @property
    def prediction_correct(self) -> bool:
        return prediction_is_exact(self.predicted_relaxed, self.required_relaxed)


@dataclass
class ExperimentSession:
    """Evaluates a workload and caches :class:`QueryRecord` objects.

    Parameters
    ----------
    workload:
        The dataset bundle to evaluate.
    ks:
        The k values to sweep (the paper uses 10, 15, 20).
    protocol:
        Timing protocol; the default is the paper's 5-runs-keep-3.
    config:
        Engine configuration template (``k`` is overridden per sweep).
    """

    workload: Workload
    ks: tuple[int, ...] = (10, 15, 20)
    protocol: TimingProtocol = field(default_factory=TimingProtocol)
    config: EngineConfig = field(default_factory=EngineConfig)
    _records: dict[tuple[str, int], QueryRecord] = field(default_factory=dict)
    _engine: SpecQPEngine | None = None

    def __post_init__(self) -> None:
        if not self.ks:
            raise ExperimentError("ks must be non-empty")
        if any(k < 1 for k in self.ks):
            raise ExperimentError(f"all ks must be >= 1, got {self.ks}")

    # ------------------------------------------------------------------
    @property
    def engine(self) -> SpecQPEngine:
        """One engine (and statistics catalog) shared across the session,
        mirroring the paper's single warm system under test."""
        if self._engine is None:
            self._engine = SpecQPEngine(
                self.workload.graph, self.workload.rules, self.config
            )
        return self._engine

    def record(self, query: TriplePatternQuery, k: int) -> QueryRecord:
        """The cached record for (query, k), computing it on first use."""
        key = (query.name, k)
        cached = self._records.get(key)
        if cached is None:
            cached = self._evaluate(query, k)
            self._records[key] = cached
        return cached

    def records(self, k: int) -> list[QueryRecord]:
        """Records for every workload query at *k* (computing as needed)."""
        return [self.record(query, k) for query in self.workload.queries]

    def all_records(self) -> list[QueryRecord]:
        return [record for k in self.ks for record in self.records(k)]

    # ------------------------------------------------------------------
    def _evaluate(self, query: TriplePatternQuery, k: int) -> QueryRecord:
        engine = self.engine

        spec_outcome = self.protocol.measure(
            lambda: engine.query(query, k),
            lambda result: result.total_seconds,
        )
        trinit_outcome = self.protocol.measure(
            lambda: engine.query_trinit(query, k),
            lambda result: result.total_seconds,
        )
        spec: QueryResult = spec_outcome.result  # type: ignore[assignment]
        trinit: QueryResult = trinit_outcome.result  # type: ignore[assignment]

        required = required_relaxations(
            self.workload.graph, query, trinit.answers
        )
        return QueryRecord(
            dataset=self.workload.name,
            query_name=query.name,
            k=k,
            n_patterns=len(query),
            spec_answers=spec.answers,
            spec_plan=spec.plan.describe(),
            predicted_relaxed=frozenset(spec.plan.singletons),
            spec_planning_seconds=spec.planning_seconds,
            spec_total_seconds=spec_outcome.mean_seconds,
            spec_answer_objects=spec.answer_objects_created,
            trinit_answers=trinit.answers,
            trinit_total_seconds=trinit_outcome.mean_seconds,
            trinit_answer_objects=trinit.answer_objects_created,
            required_relaxed=required,
            precision=precision_at_k(spec.answers, trinit.answers),
            error=score_error(spec.answers, trinit.answers, len(query)),
        )
