"""Table 4 — Average score error grouped by query size.

For each (dataset, k, #triple-patterns) group: the mean over queries of
the rank-wise absolute deviation between Spec-QP's and TriniT's top-k
scores, with standard deviation and the percentage of the maximum
possible answer score (= #patterns).  The paper's numbers are small
(0.01–0.5) and shrink as k grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.session import ExperimentSession
from repro.metrics.report import render_table


@dataclass(frozen=True)
class Table4Cell:
    k: int
    n_patterns: int
    mean_error: float
    std_error: float
    mean_percent: float
    total: int

    def format(self) -> str:
        if self.total == 0:
            return "-"
        return (
            f"{self.mean_error:.2f}({self.mean_percent:.0f}%)"
            f"±{self.std_error:.2f}"
        )


def table4_score_error(session: ExperimentSession) -> list[Table4Cell]:
    """One cell per (k, query-size) group."""
    sizes = sorted({len(q) for q in session.workload.queries})
    cells: list[Table4Cell] = []
    for k in session.ks:
        records = session.records(k)
        for size in sizes:
            group = [r for r in records if r.n_patterns == size]
            if not group:
                cells.append(Table4Cell(k, size, 0.0, 0.0, 0.0, 0))
                continue
            means = [r.error.mean for r in group]
            mean = sum(means) / len(means)
            variance = sum((m - mean) ** 2 for m in means) / len(means)
            percent = sum(r.error.percent for r in group) / len(group)
            cells.append(
                Table4Cell(
                    k=k,
                    n_patterns=size,
                    mean_error=mean,
                    std_error=math.sqrt(variance),
                    mean_percent=percent,
                    total=len(group),
                )
            )
    return cells


def render(session: ExperimentSession) -> str:
    cells = table4_score_error(session)
    sizes = sorted({len(q) for q in session.workload.queries})
    headers = ["k"] + [f"#TP={size}" for size in sizes]
    rows = []
    for k in session.ks:
        row: list[object] = [k]
        for size in sizes:
            cell = next(
                c for c in cells if c.k == k and c.n_patterns == size
            )
            row.append(cell.format())
        rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            f"Table 4 — score deviation over {session.workload.name} "
            "(mean(percent)±std)"
        ),
    )
