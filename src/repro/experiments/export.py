"""Machine-readable export of experiment records.

The table/figure renderers print paper-shaped text; this module dumps the
underlying per-query records as CSV or JSON so downstream analysis
(pandas, spreadsheets, plotting) can consume a session without re-running
the engines.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.errors import ExperimentError
from repro.experiments.session import ExperimentSession, QueryRecord

#: Column order for the flat record table.
FIELDS = (
    "dataset",
    "query_name",
    "k",
    "n_patterns",
    "n_relaxed_by_spec",
    "n_required_relaxations",
    "prediction_correct",
    "precision",
    "score_error_mean",
    "score_error_std",
    "score_error_percent",
    "spec_plan",
    "spec_planning_seconds",
    "spec_total_seconds",
    "spec_answer_objects",
    "trinit_total_seconds",
    "trinit_answer_objects",
    "n_spec_answers",
    "n_trinit_answers",
)


def record_to_row(record: QueryRecord) -> dict[str, object]:
    """Flatten one :class:`QueryRecord` into a plain dict."""
    return {
        "dataset": record.dataset,
        "query_name": record.query_name,
        "k": record.k,
        "n_patterns": record.n_patterns,
        "n_relaxed_by_spec": record.n_relaxed_by_spec,
        "n_required_relaxations": record.n_required_relaxations,
        "prediction_correct": record.prediction_correct,
        "precision": record.precision,
        "score_error_mean": record.error.mean,
        "score_error_std": record.error.std,
        "score_error_percent": record.error.percent,
        "spec_plan": record.spec_plan,
        "spec_planning_seconds": record.spec_planning_seconds,
        "spec_total_seconds": record.spec_total_seconds,
        "spec_answer_objects": record.spec_answer_objects,
        "trinit_total_seconds": record.trinit_total_seconds,
        "trinit_answer_objects": record.trinit_answer_objects,
        "n_spec_answers": len(record.spec_answers),
        "n_trinit_answers": len(record.trinit_answers),
    }


def _rows_of(
    session: ExperimentSession, ks: Sequence[int] | None = None
) -> list[dict[str, object]]:
    selected = tuple(ks) if ks is not None else session.ks
    unknown = [k for k in selected if k not in session.ks]
    if unknown:
        raise ExperimentError(
            f"ks {unknown} not in session sweep {session.ks}"
        )
    return [
        record_to_row(record)
        for k in selected
        for record in session.records(k)
    ]


def export_csv(
    session: ExperimentSession,
    path: str | Path,
    ks: Sequence[int] | None = None,
) -> int:
    """Write one CSV row per (query, k); returns the number of rows."""
    rows = _rows_of(session, ks)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def export_json(
    session: ExperimentSession,
    path: str | Path,
    ks: Sequence[int] | None = None,
    include_answers: bool = False,
) -> int:
    """Write the records as a JSON document.

    ``include_answers`` additionally embeds the Spec-QP and TriniT answer
    lists (bindings + scores) per record — larger, but enough to recompute
    any quality metric offline.
    """
    rows = _rows_of(session, ks)
    if include_answers:
        by_key = {
            (record.query_name, record.k): record
            for k in (ks or session.ks)
            for record in session.records(k)
        }
        for row in rows:
            record = by_key[(row["query_name"], row["k"])]  # type: ignore[index]
            row["spec_answers"] = [
                {"bindings": dict(a.bindings), "score": a.score}
                for a in record.spec_answers
            ]
            row["trinit_answers"] = [
                {"bindings": dict(a.bindings), "score": a.score}
                for a in record.trinit_answers
            ]
    document = {
        "workload": session.workload.summary(),
        "ks": list(ks or session.ks),
        "records": rows,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return len(rows)
