"""Figures 6–9 — runtime and memory comparisons, T vs S.

All four figures share one shape: for each k ∈ {10, 15, 20}, bar groups
of TriniT ('T') vs Spec-QP ('S') average runtimes and average answer-
object counts.  They differ only in dataset and grouping axis:

* Fig. 6 — XKG, grouped by number of triple patterns (2/3/4);
* Fig. 7 — XKG, grouped by number of patterns *relaxed by Spec-QP*;
* Fig. 8 — Twitter, grouped by number of triple patterns (2/3);
* Fig. 9 — Twitter, grouped by number of patterns relaxed by Spec-QP.

One runner serves all four; the dataset comes from the session and the
axis is a parameter.  Expected shape: S ≤ T everywhere, the gap widest at
0 relaxed patterns and closing (slightly inverting on runtime, due to
planning overhead) when every pattern is relaxed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

from repro.experiments.session import ExperimentSession, QueryRecord
from repro.metrics.report import fmt_seconds, render_table

GroupAxis = Literal["patterns", "relaxed"]


@dataclass(frozen=True)
class FigureGroup:
    """One bar pair of one panel: a (k, group) cell with T and S values."""

    k: int
    group: int               # #patterns or #patterns-relaxed
    n_queries: int
    trinit_seconds: float    # mean runtime
    spec_seconds: float
    trinit_objects: float    # mean answer objects
    spec_objects: float

    @property
    def runtime_gain(self) -> float:
        """T/S runtime ratio (> 1 means Spec-QP is faster)."""
        if self.spec_seconds <= 0:
            return float("inf")
        return self.trinit_seconds / self.spec_seconds


def _axis_value(record: QueryRecord, axis: GroupAxis) -> int:
    if axis == "patterns":
        return record.n_patterns
    return record.n_relaxed_by_spec


def _figure(session: ExperimentSession, axis: GroupAxis) -> list[FigureGroup]:
    groups: list[FigureGroup] = []
    for k in session.ks:
        records = session.records(k)
        values = sorted({_axis_value(record, axis) for record in records})
        for value in values:
            bucket = [r for r in records if _axis_value(r, axis) == value]
            n = len(bucket)
            groups.append(
                FigureGroup(
                    k=k,
                    group=value,
                    n_queries=n,
                    trinit_seconds=sum(r.trinit_total_seconds for r in bucket) / n,
                    spec_seconds=sum(r.spec_total_seconds for r in bucket) / n,
                    trinit_objects=sum(r.trinit_answer_objects for r in bucket) / n,
                    spec_objects=sum(r.spec_answer_objects for r in bucket) / n,
                )
            )
    return groups


def figure_efficiency_by_patterns(session: ExperimentSession) -> list[FigureGroup]:
    """Figures 6 (XKG) and 8 (Twitter): grouped by query size."""
    return _figure(session, "patterns")


def figure_efficiency_by_relaxed(session: ExperimentSession) -> list[FigureGroup]:
    """Figures 7 (XKG) and 9 (Twitter): grouped by #patterns relaxed."""
    return _figure(session, "relaxed")


def render(
    session: ExperimentSession,
    axis: GroupAxis,
    figure_name: str,
) -> str:
    groups = _figure(session, axis)
    axis_label = "#TP" if axis == "patterns" else "#TP relaxed"
    rows = [
        (
            group.k,
            group.group,
            group.n_queries,
            fmt_seconds(group.trinit_seconds),
            fmt_seconds(group.spec_seconds),
            f"{group.runtime_gain:.2f}x",
            f"{group.trinit_objects:,.0f}",
            f"{group.spec_objects:,.0f}",
        )
        for group in groups
    ]
    return render_table(
        headers=(
            "k",
            axis_label,
            "#q",
            "T runtime",
            "S runtime",
            "T/S",
            "T objects",
            "S objects",
        ),
        rows=rows,
        title=f"{figure_name} — efficiency over {session.workload.name} by {axis_label}",
    )
