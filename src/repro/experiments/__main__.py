"""``python -m repro.experiments`` — module entry point for the CLI.

Delegates straight to :func:`repro.experiments.cli.main`, so these are
equivalent::

    PYTHONPATH=src python -m repro.experiments table2 --dataset xkg
    PYTHONPATH=src python -m repro.experiments workload --mode both

Run ``python -m repro.experiments --help`` for every experiment name
(paper tables and figures plus the batch-serving ``workload`` command)
and their options.  Exit status is 0 on success, non-zero on argument or
experiment errors.
"""

import sys

from repro.experiments.cli import main

sys.exit(main())
