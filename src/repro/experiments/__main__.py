"""``python -m repro.experiments`` — delegate to the CLI."""

import sys

from repro.experiments.cli import main

sys.exit(main())
