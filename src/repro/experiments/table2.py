"""Table 2 — Precision (= recall) per dataset and k.

The paper reports the average over all queries of the fraction of true
top-k answers that Spec-QP returned, for k ∈ {10, 15, 20}:
0.7 / 0.88 / 0.91 on XKG and 0.72 / 0.78 / 0.8 on Twitter.  The shape to
reproduce: precision in the ~0.7–0.95 band, rising with k.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.session import ExperimentSession
from repro.metrics.report import render_table


@dataclass(frozen=True)
class Table2Row:
    k: int
    precision: float
    n_queries: int


def table2_precision(session: ExperimentSession) -> list[Table2Row]:
    """Average precision per k over the session's workload."""
    rows: list[Table2Row] = []
    for k in session.ks:
        records = session.records(k)
        mean = sum(record.precision for record in records) / len(records)
        rows.append(Table2Row(k=k, precision=mean, n_queries=len(records)))
    return rows


def render(session: ExperimentSession) -> str:
    rows = table2_precision(session)
    return render_table(
        headers=("k", "precision (=recall)", "#queries"),
        rows=[(row.k, f"{row.precision:.2f}", row.n_queries) for row in rows],
        title=f"Table 2 — precision over {session.workload.name}",
    )
