"""Experiment harness: one runner per table/figure of §4.

:class:`~repro.experiments.session.ExperimentSession` evaluates a
workload once per ``k`` under both engines (paper timing protocol) and
caches per-query records; the table/figure modules aggregate those
records into the paper's exact groupings.
"""

from repro.experiments.session import ExperimentSession, QueryRecord
from repro.experiments.table2 import table2_precision
from repro.experiments.table3 import table3_prediction_accuracy
from repro.experiments.table4 import table4_score_error
from repro.experiments.figures import (
    figure_efficiency_by_patterns,
    figure_efficiency_by_relaxed,
)

__all__ = [
    "ExperimentSession",
    "QueryRecord",
    "figure_efficiency_by_patterns",
    "figure_efficiency_by_relaxed",
    "table2_precision",
    "table3_prediction_accuracy",
    "table4_score_error",
]
