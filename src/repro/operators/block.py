"""The block-at-a-time execution substrate: batches of encoded id columns.

The tuple operators (:mod:`repro.operators.base`) move one Python
:class:`~repro.query.answer.PartialAnswer` per pull — a dict of strings, a
float, a frozenset — and probe string-keyed hash tables.  At serving
scale that object churn is the dominant constant factor on the warm read
path.  This module defines the vectorized counterpart the block operators
(:mod:`repro.operators.vector_scan`, :mod:`repro.operators.vector_join`)
exchange instead:

* a :class:`Block` — a fixed-capacity batch of answers as parallel NumPy
  arrays: one int64 **term-id column per variable** plus one float64
  score column, rows in non-increasing score order;
* a :class:`BlockOperator` protocol mirroring
  :class:`~repro.operators.base.Operator` at block granularity (same
  upper-bound contract, so the HRJN threshold argument carries over
  unchanged — see :mod:`repro.operators.vector_join`);
* a :class:`TermCodec` mapping terms to ids: dictionary-encoded backends
  reuse their store ids verbatim, terms outside the store dictionary
  (live-delta adds, object-graph terms) are interned into a side table —
  the mapping is injective, so id equality *is* term equality and joins
  never decode;
* an :class:`EncodedMatchList` — a pattern's Definition-5 match list as
  id columns + normalized scores, sliced straight out of a
  :class:`~repro.kg.columnar.ColumnarStore` without materialising one
  Triple or string (the fast path), or encoded from an ordinary
  :class:`~repro.kg.index.MatchList` for overlay/object backends;
* the :class:`BlockTopK` sink, the only place ids are decoded back to
  strings — and only for the ≤ k (+ boundary ties) winning rows.

Scores are computed with exactly the same float operations as the tuple
engine (elementwise ``weight * normalized`` and left-deep ``+``), and
both sinks share :func:`~repro.operators.topk.finalize_canonical`, so the
two executors return byte-identical answer sequences.
"""

from __future__ import annotations

import abc
import threading
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.operators.topk import finalize_canonical
from repro.query.answer import Answer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.columnar import ColumnarStore
    from repro.kg.index import MatchList
    from repro.kg.pattern import TriplePattern

#: Rows per emitted block.  Large enough to amortise per-block Python
#: overhead, small enough that top-k early termination rarely touches a
#: second block on selective queries.
DEFAULT_BLOCK_SIZE = 1024


class TermCodec:
    """Injective term ↔ int64 id mapping over an optional store dictionary.

    Ids below ``n_base`` are the backing
    :class:`~repro.kg.columnar.ColumnarStore` dictionary ids (so columns
    sliced from the store need no re-encoding); terms the store does not
    know — live-delta adds, or every term when there is no store — get
    side-table ids ``n_base, n_base + 1, ...`` in first-seen order.

    A codec is only valid for one store object: compaction swaps the
    store (and may renumber its dictionary), so the executor rebuilds the
    codec whenever the backing store identity changes.

    Interning is thread-safe: one codec is shared by every worker engine
    of a :class:`~repro.service.WorkloadRunner`, and
    :meth:`EncodedListStore.get_or_build` deliberately builds match
    lists outside the store lock, so concurrent :meth:`encode` calls on
    the overlay/object path must not hand the same side id to two
    distinct terms (injectivity is what lets joins and the top-k sink
    compare ids instead of strings).
    """

    __slots__ = ("store", "n_base", "_side_ids", "_side_terms", "_side_lock")

    def __init__(self, store: "ColumnarStore | None" = None) -> None:
        self.store = store
        self.n_base = store.n_terms if store is not None else 0
        self._side_ids: dict[str, int] = {}
        self._side_terms: list[str] = []
        self._side_lock = threading.Lock()

    @property
    def n_ids(self) -> int:
        """Exclusive upper bound on every id handed out so far."""
        return self.n_base + len(self._side_terms)

    def encode(self, term: str) -> int:
        """The id of *term*, interning into the side table when new."""
        if self.store is not None:
            term_id = self.store.term_id(term)
            if term_id is not None:
                return term_id
        side = self._side_ids.get(term)
        if side is None:
            with self._side_lock:
                side = self._side_ids.get(term)
                if side is None:
                    side = self.n_base + len(self._side_terms)
                    # Append before publishing in the dict: any id another
                    # thread can observe must already decode.
                    self._side_terms.append(term)
                    self._side_ids[term] = side
        return side

    def decode(self, term_id: int) -> str:
        """The term of *term_id* (store dictionary or side table)."""
        if term_id < self.n_base:
            assert self.store is not None
            return self.store.term_list()[term_id]
        return self._side_terms[term_id - self.n_base]


def pack_columns(
    columns: Sequence[np.ndarray], n_ids: int, n_rows: int | None = None
) -> np.ndarray | None:
    """One collision-free int64 key per row of the parallel id *columns*.

    Zero columns (a variable-disjoint join's key) pack to zeros — every
    row matches every row, exactly the tuple engine's empty-tuple key.
    Returns ``None`` when ``n_ids ** n_columns`` overflows int64; callers
    fall back to :func:`joint_group_ids`, which is slower but exact.
    """
    if not columns:
        if n_rows is None:
            raise ExecutionError("packing zero columns requires n_rows")
        return np.zeros(n_rows, dtype=np.int64)
    if len(columns) == 1:
        return columns[0].astype(np.int64, copy=False)
    base = max(int(n_ids), 1)
    if base ** len(columns) >= 2**63:
        return None
    packed = columns[0].astype(np.int64, copy=True)
    for column in columns[1:]:
        packed *= base
        packed += column
    return packed


def joint_group_ids(
    a_columns: Sequence[np.ndarray], b_columns: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Consistent group ids for two row sets keyed on the same columns.

    The exact fallback when :func:`pack_columns` cannot pack: rows with
    equal key tuples — within or across the two sets — receive equal
    group ids (via one ``np.unique`` over the stacked columns), so the
    ids are safe to ``searchsorted`` against each other.
    """
    n_a = len(a_columns[0])
    stacked = np.stack(
        [np.concatenate([a, b]) for a, b in zip(a_columns, b_columns)], axis=1
    )
    view = np.ascontiguousarray(stacked).view(
        [("", stacked.dtype)] * stacked.shape[1]
    ).ravel()
    _, inverse = np.unique(view, return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False)
    return inverse[:n_a], inverse[n_a:]


def first_occurrence_keep(packed: np.ndarray) -> np.ndarray:
    """Indices of the first occurrence of every distinct value, ascending.

    Dedup-max over a score-descending array: keeping each key's first
    occurrence keeps its maximum score (Definition 8), and re-sorting the
    kept indices preserves the global score order.
    """
    _, first = np.unique(packed, return_index=True)
    return np.sort(first)


class EncodedMatchList:
    """A pattern's Definition-5 match list as id columns + scores.

    ``columns[i]`` holds the int64 ids bound to ``var_names[i]`` (the
    pattern's distinct variables in S-P-O position order); ``scores``
    are the *normalized* scores, non-increasing.  Rows are in exactly
    the order the string :class:`~repro.kg.index.MatchList` would hold
    them (raw score descending, ties by ``spo``), so a scan over this
    list emits the same stream as a
    :class:`~repro.operators.scan.SortedScan` minus the objects.
    """

    __slots__ = ("var_names", "columns", "scores", "max_score")

    def __init__(
        self,
        var_names: tuple[str, ...],
        columns: tuple[np.ndarray, ...],
        scores: np.ndarray,
        max_score: float,
    ) -> None:
        self.var_names = var_names
        self.columns = columns
        self.scores = scores
        self.max_score = max_score

    def __len__(self) -> int:
        return len(self.scores)

    def nbytes(self) -> int:
        """Approximate memory footprint (cache budget accounting)."""
        return int(self.scores.nbytes + sum(c.nbytes for c in self.columns))

    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls, store: "ColumnarStore", pattern: "TriplePattern"
    ) -> "EncodedMatchList":
        """Slice the list straight out of dictionary-encoded columns.

        No row is ever decoded to strings: candidate rows come from the
        store's id masks, the order from ``score_order`` (the same
        lexsort the string match list uses), and the variable columns
        are plain slices.  Ids are store dictionary ids, which is what a
        store-backed :class:`TermCodec` hands out for the same terms.
        """
        from repro.kg.columnar import ColumnarPatternIndex
        from repro.kg.pattern import Variable

        rows = store.rows_matching(pattern.key())
        rows = ColumnarPatternIndex._filter_repeated_variables(pattern, rows, store)
        rows = store.score_order(rows)
        store_columns = (store.subjects, store.predicates, store.objects)
        first_position: dict[str, int] = {}
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                first_position.setdefault(term.name, position)
        var_names = tuple(v.name for v in pattern.variables)
        columns = tuple(
            store_columns[first_position[name]][rows].astype(np.int64)
            for name in var_names
        )
        if len(rows) == 0:
            return cls(var_names, columns, np.empty(0, dtype=np.float64), 0.0)
        raw = store.scores[rows]
        max_score = float(raw[0])
        if max_score > 0:
            normalized = raw / max_score
        else:
            normalized = np.zeros(len(rows), dtype=np.float64)
        return cls(var_names, columns, normalized, max_score)

    @classmethod
    def from_match_list(
        cls,
        match_list: "MatchList",
        pattern: "TriplePattern",
        codec: TermCodec,
    ) -> "EncodedMatchList":
        """Encode an already-built string match list through *codec*.

        The overlay/object-backend path: live graphs serve merged
        base∪delta lists whose delta terms may be outside the store
        dictionary, so each binding is interned (store id when known,
        side id otherwise).  Order and normalized scores are taken from
        the list verbatim.

        Patterns with repeated variables re-check each row's binding
        consistency: match lists are cached by *key*, which conflates
        ``(?x, p, ?x)`` with ``(?x, p, ?y)``, so a cache-served list may
        hold off-diagonal rows.  The tuple scan defends with a per-row
        ``pattern.bind`` check (:class:`~repro.operators.scan.SortedScan`);
        this is the same defense — inconsistent rows are dropped, scores
        of the surviving rows kept verbatim.
        """
        from repro.kg.pattern import Variable

        positions_by_name: dict[str, list[int]] = {}
        for position, term in enumerate(pattern.terms):
            if isinstance(term, Variable):
                positions_by_name.setdefault(term.name, []).append(position)
        var_names = tuple(v.name for v in pattern.variables)
        positions = [positions_by_name[name][0] for name in var_names]
        repeated = [p for p in positions_by_name.values() if len(p) > 1]
        triples = match_list.triples
        normalized = match_list.normalized_scores
        if repeated:
            keep = [
                row
                for row, triple in enumerate(triples)
                if all(
                    len({triple.spo[p] for p in group}) == 1 for group in repeated
                )
            ]
            triples = tuple(triples[row] for row in keep)
            normalized = tuple(normalized[row] for row in keep)
        n = len(triples)
        columns = tuple(np.empty(n, dtype=np.int64) for _ in var_names)
        encode = codec.encode
        for row, triple in enumerate(triples):
            spo = triple.spo
            for column, position in zip(columns, positions):
                column[row] = encode(spo[position])
        scores = np.asarray(normalized, dtype=np.float64)
        return cls(var_names, columns, scores, match_list.max_score)


def build_encoded_match_list(
    graph, pattern: "TriplePattern", codec: TermCodec
) -> EncodedMatchList:
    """The encoded match list of *pattern* over *graph*.

    Backends exposing a :class:`~repro.kg.columnar.ColumnarStore` that
    matches the codec's dictionary (columnar and sharded graphs — a
    sharded graph's full store produces exactly the merged Definition-5
    list) are sliced without decoding; everything else (live overlays,
    object graphs) goes through the graph's ordinary — and cached —
    string match list plus the codec.
    """
    store = getattr(graph, "store", None)
    if store is not None and codec.store is store:
        return EncodedMatchList.from_store(store, pattern)
    return EncodedMatchList.from_match_list(graph.match_list(pattern), pattern, codec)


class EncodedListStore:
    """Shared, bounded, thread-safe store of encoded match lists.

    The block executor's twin of :class:`repro.service.MatchListCache`:
    one store per engine — or one shared across every worker engine of a
    :class:`~repro.service.WorkloadRunner`, so a pattern is encoded once
    per graph version no matter which thread first needs it.  The store
    owns the :class:`TermCodec` too, because cached id columns are only
    meaningful under the codec that produced them: whenever the graph
    version or its backing store identity changes (mutations,
    compaction), codec and cache are dropped together.

    Like :class:`~repro.service.MatchListCache`, a store serves exactly
    **one graph**: the single codec/version slot cannot express two
    graphs' id spaces, and letting a second graph swap the codec
    mid-query would silently mix side-table id generations inside one
    operator tree.  The first graph seen binds the store (weakly);
    serving a different graph raises — call :meth:`release` first when
    the served graph is legitimately replaced (the runner does on its
    frozen → live wrap).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ExecutionError(f"store capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._owner: "object | None" = None  # weakref.ref to the bound graph
        self._codec: TermCodec | None = None
        self._version = -1
        self._lists: "OrderedDict[object, EncodedMatchList]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @staticmethod
    def _backing_store(graph) -> "ColumnarStore | None":
        store = getattr(graph, "store", None)
        if store is not None:
            return store
        base = getattr(graph, "base", None)
        if base is not None:
            return getattr(base, "store", None)
        return None

    def _refresh_locked(self, graph) -> TermCodec:
        owner = self._owner() if self._owner is not None else None
        if owner is None:
            self._owner = weakref.ref(graph)
            self._codec = None  # a fresh binding starts from scratch
        elif owner is not graph:
            raise ExecutionError(
                "EncodedListStore is already bound to graph "
                f"{getattr(owner, 'name', owner)!r}; one store serves one "
                "graph — release() it first or give each graph its own store"
            )
        store = self._backing_store(graph)
        version = graph.version
        if (
            self._codec is None
            or self._codec.store is not store
            or self._version != version
        ):
            self._codec = TermCodec(store)
            self._version = version
            self._lists.clear()
        return self._codec

    def codec(self, graph) -> TermCodec:
        """The codec valid for *graph* right now (refreshing on staleness)."""
        with self._lock:
            return self._refresh_locked(graph)

    def get_or_build(
        self,
        graph,
        pattern: "TriplePattern",
        expect_codec: TermCodec | None = None,
    ) -> EncodedMatchList:
        """The encoded match list of *pattern*, built at most once per
        graph version.  The cache key is the (hashable) pattern itself,
        not its index key: two patterns with one index key can differ in
        variable structure (repeated variables, repeated names).

        *expect_codec* pins the call to one codec generation: a query
        captures the codec once at its start and decodes with it at the
        sink, so a leaf served under any *other* codec (the graph
        version or backing store moved between query start and this
        build) would silently bind wrong ids.  Passing the captured
        codec turns that into a clean :class:`~repro.errors.ExecutionError`.

        Building happens **outside** the lock (it may sort a cold match
        list), so concurrent workers miss-build in parallel instead of
        serializing on the store — the same discipline as the string
        match-list cache.  Two threads may race to build the same
        pattern; the first insert wins and the loser's copy is dropped.
        """
        with self._lock:
            codec = self._refresh_locked(graph)
            if expect_codec is not None and codec is not expect_codec:
                raise ExecutionError(
                    "graph changed during block execution: the encoded "
                    "match-list store refreshed its codec after this query "
                    "captured one — do not mutate the graph (or swap its "
                    "backing store) while a query is in flight"
                )
            cached = self._lists.get(pattern)
            if cached is not None:
                self._lists.move_to_end(pattern)
                self._hits += 1
                return cached
            version = self._version
        built = build_encoded_match_list(graph, pattern, codec)
        with self._lock:
            if self._codec is not codec or self._version != version:
                # The store moved on (mutation between batches, another
                # graph generation): our build used a stale codec, so it
                # must not be cached — hand it back for this query only,
                # where its ids are consistent with the codec captured
                # by the caller.
                self._misses += 1
                return built
            cached = self._lists.get(pattern)
            if cached is not None:
                self._hits += 1
                return cached
            self._misses += 1
            self._lists[pattern] = built
            while len(self._lists) > self._capacity:
                self._lists.popitem(last=False)
                self._evictions += 1
            return built

    def release(self, graph) -> None:
        """Unbind *graph* and drop every cached list.

        Call when the served graph object is legitimately replaced (the
        runner's frozen → live wrap); a no-op if *graph* is not the
        bound owner.
        """
        with self._lock:
            owner = self._owner() if self._owner is not None else None
            if owner is None or owner is graph:
                self._owner = None
                self._codec = None
                self._version = -1
                self._lists.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current shape."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._lists),
                "capacity": self._capacity,
                "version": self._version,
            }

    def clear(self) -> None:
        """Drop every cached list (codec is rebuilt on next use)."""
        with self._lock:
            self._lists.clear()
            self._codec = None
            self._version = -1

    def __len__(self) -> int:
        with self._lock:
            return len(self._lists)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EncodedListStore(size={len(self)}, capacity={self._capacity})"


class Block:
    """One batch of answers: parallel id columns + non-increasing scores."""

    __slots__ = ("var_names", "columns", "scores")

    def __init__(
        self,
        var_names: tuple[str, ...],
        columns: tuple[np.ndarray, ...],
        scores: np.ndarray,
    ) -> None:
        if len(var_names) != len(columns):
            raise ExecutionError(
                f"block has {len(var_names)} variables but {len(columns)} columns"
            )
        self.var_names = var_names
        self.columns = columns
        self.scores = scores

    def __len__(self) -> int:
        return len(self.scores)

    def column(self, name: str) -> np.ndarray:
        """The id column bound to variable *name*."""
        try:
            return self.columns[self.var_names.index(name)]
        except ValueError:
            raise ExecutionError(f"block has no column for variable {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(vars={self.var_names}, rows={len(self)})"


class BlockOperator(abc.ABC):
    """Pull-based operator exchanging :class:`Block` batches.

    Contract (the :class:`~repro.operators.base.Operator` contract lifted
    to batches):

    * :meth:`next_block` returns the next batch or ``None`` (exhausted);
      once ``None`` is returned, all later calls return ``None``.
    * Concatenating the emitted blocks yields a stream in non-increasing
      score order.
    * :meth:`upper_bound` bounds every future row's score; ``-inf`` once
      exhausted, never increases.
    * :attr:`var_names` is static — every emitted block binds exactly
      these variables — which is what lets joins fix their key columns
      before the first pull (the tuple engine must discover them from
      the first item).
    """

    @abc.abstractmethod
    def next_block(self) -> Block | None:
        """Produce the next batch, or ``None`` when exhausted."""

    @abc.abstractmethod
    def upper_bound(self) -> float:
        """Best score any not-yet-emitted row can have."""

    @property
    @abc.abstractmethod
    def patterns_covered(self) -> frozenset[int]:
        """Indexes (into the query) of the patterns this operator covers."""

    @property
    @abc.abstractmethod
    def var_names(self) -> tuple[str, ...]:
        """The variables every emitted block binds."""

    def __iter__(self) -> Iterator[Block]:
        while True:
            block = self.next_block()
            if block is None:
                return
            yield block


class BlockTopK:
    """Drain a :class:`BlockOperator` into the top-k distinct answers.

    The only decode point of the block pipeline: rows are deduplicated
    on their *projected id tuples* (the codec is injective, so id-tuple
    equality is binding equality), pulled until the k-th distinct score's
    tie run is exhausted, and only the surviving rows are decoded to
    strings for the shared canonical cut
    (:func:`~repro.operators.topk.finalize_canonical`).
    """

    def __init__(
        self,
        source: BlockOperator,
        k: int,
        codec: TermCodec,
        projection: tuple[str, ...] | None = None,
    ) -> None:
        if k < 1:
            raise ExecutionError(f"k must be >= 1, got {k}")
        self._source = source
        self._k = k
        self._codec = codec
        self._projection = projection

    def run(self) -> list[Answer]:
        source = self._source
        names = (
            tuple(sorted(source.var_names))
            if self._projection is None
            else tuple(
                name for name in sorted(self._projection) if name in source.var_names
            )
        )
        k = self._k
        # The sink usually needs only ~k of a block's rows, so columns
        # are materialised to Python lists chunk by chunk — converting a
        # whole 1024-row block to visit 10 rows would dominate warm
        # single-pattern queries.
        chunk = max(32, 2 * k)
        collected: list[tuple[float, tuple[int, ...]]] = []
        seen: set[tuple[int, ...]] = set()
        last_score = float("inf")
        boundary: float | None = None
        done = False
        while not done:
            block = source.next_block()
            if block is None:
                break
            block_columns = [block.column(name) for name in names]
            n_rows = len(block)
            for start in range(0, n_rows, chunk):
                stop = min(start + chunk, n_rows)
                window = slice(start, stop)
                columns = [column[window].tolist() for column in block_columns]
                scores = block.scores[window].tolist()
                for row, score in enumerate(scores):
                    if score > last_score + 1e-9:
                        raise ExecutionError(
                            "block operator emitted rows out of score order: "
                            f"{score:.6f} after {last_score:.6f}"
                        )
                    last_score = score
                    if boundary is not None and score < boundary:
                        done = True
                        break
                    key = tuple(column[row] for column in columns)
                    if key in seen:
                        continue
                    seen.add(key)
                    collected.append((score, key))
                    if len(collected) == k:
                        boundary = score
                if done:
                    break
        decode = self._codec.decode
        results = [
            Answer(tuple(zip(names, (decode(i) for i in key))), score)
            for score, key in collected
        ]
        return finalize_canonical(results, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockTopK(k={self._k})"
