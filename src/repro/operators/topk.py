"""Top-k sink with duplicate elimination.

Collects the first ``k`` *distinct* answers from a sorted stream.  Because
upstream operators emit in non-increasing score order and an answer's
identity is its variable bindings, keeping the first occurrence of each
binding realises ``S(A) = max over relaxations`` (Definition 8) while a
plain counter realises the top-k cut-off.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.operators.base import Operator
from repro.query.answer import Answer, PartialAnswer


class TopK:
    """Drain an operator into the top-k distinct answers.

    Not an :class:`Operator` itself — it is the plan root that materialises
    the result list the user sees.
    """

    def __init__(self, source: Operator, k: int, projection: tuple[str, ...] | None = None) -> None:
        if k < 1:
            raise ExecutionError(f"k must be >= 1, got {k}")
        self._source = source
        self._k = k
        self._projection = projection

    def run(self) -> list[Answer]:
        """Pull until k distinct answers are collected or input ends.

        Distinctness is evaluated on the *projected* bindings when a
        projection is given — two full bindings that agree on the
        projection are the same answer to the user, and the higher-scored
        one arrives first.
        """
        results: list[Answer] = []
        seen: set[tuple[tuple[str, str], ...]] = set()
        last_score = float("inf")
        while len(results) < self._k:
            item = self._source.next()
            if item is None:
                break
            answer = item.to_answer(self._projection)
            if answer.bindings in seen:
                continue
            if answer.score > last_score + 1e-9:
                raise ExecutionError(
                    "operator emitted answers out of score order: "
                    f"{answer.score:.6f} after {last_score:.6f}"
                )
            last_score = answer.score
            seen.add(answer.bindings)
            results.append(answer)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TopK(k={self._k})"
