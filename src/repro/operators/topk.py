"""Top-k sink with duplicate elimination and canonical tie resolution.

Collects the top ``k`` *distinct* answers from a sorted stream.  Because
upstream operators emit in non-increasing score order and an answer's
identity is its variable bindings, keeping the first occurrence of each
binding realises ``S(A) = max over relaxations`` (Definition 8) while a
plain counter realises the top-k cut-off.

Tie resolution is *canonical*: operators only guarantee non-increasing
scores, so the order among equal-scored answers — and which of several
equal-scored answers straddling the ``k`` boundary survive the cut — is
otherwise an artifact of pull scheduling.  The sink therefore keeps
draining while incoming scores still equal the k-th distinct score, then
orders everything it collected by ``(-score, bindings)`` and cuts to
``k``.  The result is a pure function of the answer multiset, which is
what lets two executors with entirely different internals (the
tuple-at-a-time operators and the block-at-a-time vectorized engine, see
:mod:`repro.operators.block`) return byte-identical answer sequences.

The extra work is bounded by the boundary tie run.  On real scored data
ties are rare and the sink still stops after ~k pulls; the degenerate
worst case — every answer sharing one score, e.g. a constant-score
pattern — drains the whole stream before cutting.  That is the price of
determinism, and it is paid identically by both executors.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.operators.base import Operator
from repro.query.answer import Answer, PartialAnswer


def finalize_canonical(results: list[Answer], k: int) -> list[Answer]:
    """Order *results* by ``(-score, bindings)`` and cut to *k*.

    Callers must have collected every distinct answer whose score is at
    least the k-th distinct score (boundary ties included); the sort key
    is a total order because answer identities are distinct after dedup.
    """
    results.sort(key=lambda answer: (-answer.score, answer.bindings))
    return results[:k]


class TopK:
    """Drain an operator into the top-k distinct answers.

    Not an :class:`Operator` itself — it is the plan root that materialises
    the result list the user sees.
    """

    def __init__(self, source: Operator, k: int, projection: tuple[str, ...] | None = None) -> None:
        if k < 1:
            raise ExecutionError(f"k must be >= 1, got {k}")
        self._source = source
        self._k = k
        self._projection = projection

    def run(self) -> list[Answer]:
        """Pull until k distinct answers (plus boundary ties) are collected.

        Distinctness is evaluated on the *projected* bindings when a
        projection is given — two full bindings that agree on the
        projection are the same answer to the user, and the higher-scored
        one arrives first.  After the k-th distinct answer, pulling
        continues while scores still equal the boundary score so the
        canonical cut sees the full tie run.
        """
        results: list[Answer] = []
        seen: set[tuple[tuple[str, str], ...]] = set()
        last_score = float("inf")
        while True:
            item = self._source.next()
            if item is None:
                break
            answer = item.to_answer(self._projection)
            if answer.score > last_score + 1e-9:
                raise ExecutionError(
                    "operator emitted answers out of score order: "
                    f"{answer.score:.6f} after {last_score:.6f}"
                )
            last_score = answer.score
            if len(results) >= self._k and answer.score < results[self._k - 1].score:
                break
            if answer.bindings in seen:
                continue
            seen.add(answer.bindings)
            results.append(answer)
        return finalize_canonical(results, self._k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TopK(k={self._k})"
