"""Incremental Merge (Theobald et al., SIGIR 2005; §2.1 of the paper).

One Incremental Merge operator serves one triple pattern *and all its
relaxations*: it lazily merges the pattern's sorted match list with each
relaxation's sorted match list (scores discounted by the rule weights)
into a single stream sorted by weighted score.  Because each input is
individually sorted and its weight is constant, a heap keyed on each
input's next weighted score yields the merged order without materialising
anything.

Duplicate bindings (the same variable assignment reached through the
original pattern *and* a relaxation, or through two relaxations) are
dropped on their second appearance: the stream is globally descending, so
the first occurrence carries the maximum score — exactly Definition 8's
``S(A) = max over relaxations``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.operators.base import EXHAUSTED_BOUND, Operator
from repro.operators.memory import ExecutionContext
from repro.query.answer import PartialAnswer


@dataclass(frozen=True)
class WeightedInput:
    """One input stream of an incremental merge: a scan plus its weight.

    The scan (a :class:`~repro.operators.scan.SortedScan`, or a
    :class:`~repro.operators.chain_scan.ChainScan` for chain relaxations)
    already applies the weight to the scores it emits; the weight is kept
    here for introspection and plan explanation.
    """

    scan: Operator
    weight: float
    label: str = ""


class IncrementalMerge(Operator):
    """Merge a pattern's original and relaxed match lists into one sorted
    stream with duplicate-binding elimination."""

    def __init__(
        self,
        inputs: list[WeightedInput],
        context: ExecutionContext,
    ) -> None:
        if not inputs:
            raise ExecutionError("incremental merge needs at least one input")
        covered = inputs[0].scan.patterns_covered
        for weighted in inputs[1:]:
            if weighted.scan.patterns_covered != covered:
                raise ExecutionError(
                    "all inputs of an incremental merge must cover the same "
                    "query pattern"
                )
        self._inputs = inputs
        self._context = context
        self._covered = covered
        self._seen: set[tuple[tuple[str, str], ...]] = set()
        self._counter = itertools.count()  # heap tie-breaker
        self._heap: list[tuple[float, int, int, PartialAnswer]] = []
        self._primed = False
        self._exhausted = False

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    @property
    def n_inputs(self) -> int:
        return len(self._inputs)

    # ------------------------------------------------------------------
    def _push_from(self, input_index: int) -> None:
        item = self._inputs[input_index].scan.next()
        if item is not None:
            heapq.heappush(
                self._heap,
                (-item.score, next(self._counter), input_index, item),
            )

    def _prime(self) -> None:
        for index in range(len(self._inputs)):
            self._push_from(index)
        self._primed = True

    def next(self) -> PartialAnswer | None:
        if self._exhausted:
            return None
        if not self._primed:
            self._prime()
        while self._heap:
            _, _, input_index, item = heapq.heappop(self._heap)
            self._push_from(input_index)
            identity = item.identity()
            if identity in self._seen:
                continue
            self._seen.add(identity)
            return item
        self._exhausted = True
        return None

    def upper_bound(self) -> float:
        if self._exhausted:
            return EXHAUSTED_BOUND
        if not self._primed:
            bounds = [w.scan.upper_bound() for w in self._inputs]
            return max(bounds) if bounds else EXHAUSTED_BOUND
        candidates = []
        if self._heap:
            candidates.append(-self._heap[0][0])
        candidates.extend(w.scan.upper_bound() for w in self._inputs)
        best = max(candidates) if candidates else EXHAUSTED_BOUND
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalMerge({len(self._inputs)} inputs)"
