"""Vectorized leaf operators: block scans and the block Incremental Merge.

:class:`VectorScan` is the block twin of
:class:`~repro.operators.scan.SortedScan`: it slices fixed-size windows
out of an :class:`~repro.operators.block.EncodedMatchList` — id columns
and normalized scores that came straight off the columnar store — so a
"pull" is two array slices and one elementwise multiply instead of a
Python object per row.  Scores are ``weight * normalized`` elementwise,
bitwise-equal to the tuple scan's per-row ``weight * normalized(i)``.

:class:`VectorIncrementalMerge` is the block twin of
:class:`~repro.operators.incremental_merge.IncrementalMerge`: one
operator serving a pattern *and all its relaxations*.  Instead of a lazy
heap it concatenates the weighted inputs once on first pull, sorts by
score descending with one stable ``argsort``, and drops duplicate
bindings past their first (= maximum-score, Definition 8) occurrence
with one ``np.unique`` — the surviving ``(binding, score)`` multiset is
exactly the tuple operator's, because dedup-keep-first over a
score-descending stream is order-independent among equal keys.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.operators.base import EXHAUSTED_BOUND
from repro.operators.block import (
    DEFAULT_BLOCK_SIZE,
    Block,
    BlockOperator,
    EncodedMatchList,
    TermCodec,
    first_occurrence_keep,
    joint_group_ids,
    pack_columns,
)
from repro.operators.memory import ExecutionContext


class VectorScan(BlockOperator):
    """Stream an encoded match list as score-sorted blocks.

    Parameters mirror :class:`~repro.operators.scan.SortedScan`: the
    *weight* is the relaxation discount applied elementwise to the
    list's normalized scores, *pattern_index* the query slot this stream
    fills.  ``tuples_pulled`` and the answer-object counter advance by
    the number of rows sliced (the block engine's rows are its answer
    objects — see :mod:`repro.operators.block`).
    """

    def __init__(
        self,
        encoded: EncodedMatchList,
        pattern_index: int,
        context: ExecutionContext,
        weight: float = 1.0,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if not 0.0 < weight <= 1.0:
            raise ExecutionError(f"scan weight must be in (0,1], got {weight}")
        if block_size < 1:
            raise ExecutionError(f"block size must be >= 1, got {block_size}")
        self._encoded = encoded
        self._weight = weight
        self._context = context
        self._covered = frozenset({pattern_index})
        self._block_size = block_size
        self._position = 0

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    @property
    def var_names(self) -> tuple[str, ...]:
        return self._encoded.var_names

    @property
    def weight(self) -> float:
        return self._weight

    def next_block(self) -> Block | None:
        start = self._position
        n = len(self._encoded)
        if start >= n:
            return None
        stop = min(start + self._block_size, n)
        self._position = stop
        pulled = stop - start
        self._context.tuples_pulled += pulled
        self._context.factory.objects_created += pulled
        window = slice(start, stop)
        return Block(
            self._encoded.var_names,
            tuple(column[window] for column in self._encoded.columns),
            self._weight * self._encoded.scores[window],
        )

    def upper_bound(self) -> float:
        if self._position >= len(self._encoded):
            return EXHAUSTED_BOUND
        return self._weight * float(self._encoded.scores[self._position])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorScan(vars={self._encoded.var_names}, "
            f"rows={len(self._encoded)}, w={self._weight:.3f})"
        )


class VectorIncrementalMerge(BlockOperator):
    """Merge a pattern's original and relaxed encoded lists, deduplicated.

    *inputs* are ``(encoded_list, weight)`` pairs — the original pattern
    first (weight 1.0), then one entry per relaxation rule, exactly the
    tuple operator's input set.  All inputs must bind the same variable
    names (relaxation rules guarantee this); columns are aligned by name
    because a rule's range pattern may move a variable to a different
    position.

    The merge is built eagerly on first pull (every input list is
    already fully materialised, so unlike the tuple heap there is
    nothing to save by deferring row-by-row) and then streamed like a
    :class:`VectorScan`.
    """

    def __init__(
        self,
        inputs: Sequence[tuple[EncodedMatchList, float]],
        pattern_index: int,
        context: ExecutionContext,
        codec: TermCodec,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if not inputs:
            raise ExecutionError("incremental merge needs at least one input")
        names = set(inputs[0][0].var_names)
        for encoded, weight in inputs:
            if set(encoded.var_names) != names:
                raise ExecutionError(
                    "all inputs of an incremental merge must bind the same "
                    f"variables: {sorted(names)} vs {sorted(encoded.var_names)}"
                )
            if not 0.0 < weight <= 1.0:
                raise ExecutionError(f"merge weight must be in (0,1], got {weight}")
        self._inputs = list(inputs)
        self._var_names = inputs[0][0].var_names
        self._context = context
        self._codec = codec
        self._covered = frozenset({pattern_index})
        self._block_size = block_size
        self._columns: tuple[np.ndarray, ...] | None = None
        self._scores: np.ndarray | None = None
        self._position = 0

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    @property
    def var_names(self) -> tuple[str, ...]:
        return self._var_names

    @property
    def n_inputs(self) -> int:
        return len(self._inputs)

    # ------------------------------------------------------------------
    def _column_of(self, encoded: EncodedMatchList, name: str) -> np.ndarray:
        return encoded.columns[encoded.var_names.index(name)]

    def _prime(self) -> None:
        scores = np.concatenate(
            [weight * encoded.scores for encoded, weight in self._inputs]
        )
        columns = tuple(
            np.concatenate(
                [self._column_of(encoded, name) for encoded, _ in self._inputs]
            )
            for name in self._var_names
        )
        # Stable sort: equal scores keep input order, like the heap's
        # prime order — irrelevant for correctness (dedup-keep-first is
        # order-independent among equal keys) but deterministic.
        order = np.argsort(-scores, kind="stable")
        scores = scores[order]
        columns = tuple(column[order] for column in columns)
        if len(scores):
            packed = pack_columns(columns, self._codec.n_ids, n_rows=len(scores))
            if packed is None:
                packed, _ = joint_group_ids(
                    columns, tuple(c[:0] for c in columns)
                )
            keep = first_occurrence_keep(packed)
            scores = scores[keep]
            columns = tuple(column[keep] for column in columns)
        self._scores = scores
        self._columns = columns
        self._context.tuples_pulled += int(len(scores))
        self._context.factory.objects_created += int(len(scores))

    def next_block(self) -> Block | None:
        if self._scores is None:
            self._prime()
        assert self._scores is not None and self._columns is not None
        start = self._position
        if start >= len(self._scores):
            return None
        stop = min(start + self._block_size, len(self._scores))
        self._position = stop
        window = slice(start, stop)
        return Block(
            self._var_names,
            tuple(column[window] for column in self._columns),
            self._scores[window],
        )

    def upper_bound(self) -> float:
        if self._scores is None:
            bounds = [
                weight * float(encoded.scores[0])
                for encoded, weight in self._inputs
                if len(encoded)
            ]
            return max(bounds) if bounds else EXHAUSTED_BOUND
        if self._position >= len(self._scores):
            return EXHAUSTED_BOUND
        return float(self._scores[self._position])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorIncrementalMerge({len(self._inputs)} inputs)"
