"""Sorted scan over a triple pattern's match list.

The leaf operator: streams the (already score-sorted, score-normalised)
matches of one triple pattern as partial answers, optionally discounted by
a relaxation weight.  This is the "sorted answer-list" input the paper's
plans read from the database engine.
"""

from __future__ import annotations

import math

from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.index import MatchList
from repro.kg.pattern import TriplePattern
from repro.operators.base import EXHAUSTED_BOUND, Operator
from repro.operators.memory import ExecutionContext
from repro.query.answer import PartialAnswer


class SortedScan(Operator):
    """Stream one pattern's matches in descending (weighted) score order.

    Parameters
    ----------
    graph:
        The knowledge graph to read from.
    pattern:
        The triple pattern whose match list is streamed.  When this scan
        realises a relaxation, *pattern* is the **relaxed** pattern (the
        rule's range) and *weight* is the rule's weight.
    pattern_index:
        The position of the **original** pattern in the query — the slot
        this stream fills, used for plan well-formedness checks.
    context:
        Shared execution context (answer accounting).
    weight:
        Relaxation discount in (0, 1]; emitted scores are
        ``weight * S(t|pattern)``.
    match_list:
        Stream this list instead of asking *graph* for one.  Sharded
        leaf scans use it to feed a shard's slice of a match list whose
        normaliser is the *global* maximum (see
        :mod:`repro.operators.shard_merge`).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        pattern: TriplePattern,
        pattern_index: int,
        context: ExecutionContext,
        weight: float = 1.0,
        match_list: MatchList | None = None,
    ) -> None:
        if not 0.0 < weight <= 1.0:
            raise ExecutionError(f"scan weight must be in (0,1], got {weight}")
        self._pattern = pattern
        self._weight = weight
        self._context = context
        self._covered = frozenset({pattern_index})
        self._match_list: MatchList = (
            match_list if match_list is not None else graph.match_list(pattern)
        )
        self._position = 0

    @property
    def pattern(self) -> TriplePattern:
        return self._pattern

    @property
    def weight(self) -> float:
        return self._weight

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    def next(self) -> PartialAnswer | None:
        while self._position < len(self._match_list):
            index = self._position
            self._position += 1
            self._context.tuples_pulled += 1
            triple = self._match_list.triples[index]
            bindings = self._pattern.bind(triple)
            if bindings is None:  # repeated-variable mismatch
                continue
            score = self._weight * self._match_list.normalized(index)
            return self._context.factory.make(bindings, score, self._covered)
        return None

    def upper_bound(self) -> float:
        if self._position >= len(self._match_list):
            return EXHAUSTED_BOUND
        return self._weight * self._match_list.normalized(self._position)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SortedScan({self._pattern}, w={self._weight:.3f})"
