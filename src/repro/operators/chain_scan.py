"""ChainScan — sorted stream over a chain relaxation's matches.

A chain relaxation replaces one query slot with a small conjunction of
patterns (see :mod:`repro.relax.chains`).  To feed an Incremental Merge —
which expects a sorted stream covering exactly that slot — the chain's
join is materialised eagerly (chains are short and their member lists are
single-pattern match lists), scored, deduplicated on the *outer*
variables (intermediate variables are projected away, keeping the
max-scoring witness), sorted descending, and streamed.

Scoring: ``weight × mean(normalised member scores)`` — each chain match
stays within ``[0, weight]``, comparable with single-pattern relaxations.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.operators.base import EXHAUSTED_BOUND, Operator
from repro.operators.memory import ExecutionContext
from repro.query.answer import PartialAnswer
from repro.relax.chains import ChainRelaxationRule


class ChainScan(Operator):
    """Stream a chain relaxation's matches in descending score order."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        rule: ChainRelaxationRule,
        pattern_index: int,
        context: ExecutionContext,
    ) -> None:
        self._rule = rule
        self._context = context
        self._covered = frozenset({pattern_index})
        self._results = self._materialize(graph)
        self._position = 0

    # ------------------------------------------------------------------
    def _materialize(
        self, graph: KnowledgeGraph
    ) -> list[tuple[float, tuple[tuple[str, str], ...]]]:
        """Join the chain's match lists; returns (score, outer bindings)
        sorted by descending score."""
        rows: list[tuple[dict[str, str], float]] | None = None
        for pattern in self._rule.chain:
            match_list = graph.match_list(pattern)
            pattern_rows: list[tuple[dict[str, str], float]] = []
            for position, triple in enumerate(match_list.triples):
                self._context.tuples_pulled += 1
                bindings = pattern.bind(triple)
                if bindings is not None:
                    pattern_rows.append(
                        (bindings, match_list.normalized(position))
                    )
            if rows is None:
                rows = pattern_rows
                continue
            known_vars: set[str] = set()
            for bindings, _ in rows:
                known_vars.update(bindings)
                break
            shared = sorted(known_vars & set(pattern.variable_names))
            index: dict[tuple[str, ...], list[tuple[dict[str, str], float]]] = defaultdict(list)
            for bindings, score in pattern_rows:
                index[tuple(bindings.get(v, "") for v in shared)].append(
                    (bindings, score)
                )
            merged: list[tuple[dict[str, str], float]] = []
            for bindings, score in rows:
                key = tuple(bindings.get(v, "") for v in shared)
                for other_bindings, other_score in index.get(key, ()):
                    if any(
                        bindings.get(name, value) != value
                        for name, value in other_bindings.items()
                    ):
                        continue
                    combined = dict(bindings)
                    combined.update(other_bindings)
                    merged.append((combined, score + other_score))
            rows = merged
            if not rows:
                break

        outer_vars = tuple(sorted(self._rule.domain.variable_names))
        n_members = len(self._rule.chain)
        best: dict[tuple[tuple[str, str], ...], float] = {}
        for bindings, summed in rows or []:
            projected = tuple(
                (name, bindings[name]) for name in outer_vars if name in bindings
            )
            if len(projected) != len(outer_vars):
                raise ExecutionError(
                    f"chain match failed to bind outer variables {outer_vars}"
                )
            score = self._rule.weight * summed / n_members
            if best.get(projected, -1.0) < score:
                best[projected] = score
        return sorted(
            ((score, projected) for projected, score in best.items()),
            key=lambda item: (-item[0], item[1]),
        )

    # ------------------------------------------------------------------
    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    @property
    def rule(self) -> ChainRelaxationRule:
        return self._rule

    def next(self) -> PartialAnswer | None:
        if self._position >= len(self._results):
            return None
        score, projected = self._results[self._position]
        self._position += 1
        return self._context.factory.make(dict(projected), score, self._covered)

    def upper_bound(self) -> float:
        if self._position >= len(self._results):
            return EXHAUSTED_BOUND
        return self._results[self._position][0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChainScan({self._rule.domain}, {len(self._rule.chain)}-chain)"
