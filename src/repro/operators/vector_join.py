"""Block-at-a-time HRJN rank join over int64 id columns.

:class:`VectorRankJoin` is the block twin of
:class:`~repro.operators.rank_join.RankJoin` — the same HRJN algorithm
(Ilyas et al., VLDB 2003/04) at block granularity:

* inputs are pulled **one block at a time**, round-robin, preferring a
  non-exhausted side;
* each side accumulates its pulled rows as consolidated id/score arrays;
  a freshly pulled block probes the opposite side with two
  ``np.searchsorted`` calls over that side's join keys (packed into one
  int64 per row) and a vectorized range expansion — no per-row Python,
  no string hashing;
* join results collect in a score-sorted buffer, and a buffered row is
  released only when its score is at least the HRJN threshold

      T = max(top_left + ub_right, ub_left + top_right)

  evaluated **at block boundaries**.  The threshold bounds the score of
  any join result not yet in the buffer, whatever the pull granularity:
  it only reads the inputs' upper bounds, which are valid for every
  not-yet-pulled row regardless of whether rows arrive one at a time or
  1024 at a time.  Emitted blocks are therefore globally score-sorted,
  and the join enumerates exactly the result multiset the tuple operator
  enumerates — which is why the two executors agree byte-for-byte after
  the shared canonical top-k cut (see ``docs/architecture.md``).

When the inputs share no variable the join degrades to a ranked
cartesian product (zero key columns pack to a constant key), mirroring
the tuple operator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.operators.base import EXHAUSTED_BOUND
from repro.operators.block import (
    DEFAULT_BLOCK_SIZE,
    Block,
    BlockOperator,
    TermCodec,
    joint_group_ids,
    pack_columns,
)
from repro.operators.memory import ExecutionContext


def _weave_mask(old_keys: np.ndarray, new_keys: np.ndarray) -> np.ndarray:
    """Where the sorted run *new_keys* lands when woven into *old_keys*.

    Both runs ascending.  Returns a boolean mask over the merged length:
    True slots take new rows in order, False slots take old rows in
    order — callers scatter each payload array with :func:`_weave`.
    ``side="right"`` puts a new row after every equal old row, exactly
    the tie order of a stable concat-argsort.
    """
    slots = np.searchsorted(old_keys, new_keys, side="right")
    targets = slots + np.arange(len(new_keys), dtype=np.int64)
    new_mask = np.zeros(len(old_keys) + len(new_keys), dtype=bool)
    new_mask[targets] = True
    return new_mask


def _weave(old: np.ndarray, new: np.ndarray, new_mask: np.ndarray) -> np.ndarray:
    """Scatter two payload runs into one merged array per *new_mask*."""
    merged = np.empty(len(old) + len(new), dtype=old.dtype)
    merged[new_mask] = new
    merged[~new_mask] = old
    return merged


class _Side:
    """One join input: its pulled rows, consolidated lazily for probing."""

    __slots__ = (
        "op",
        "join_vars",
        "top",
        "_chunks",
        "_n",
        "_columns",
        "_scores",
        "_key_columns",
        "_order",
        "_packed_sorted",
        "_dirty",
    )

    def __init__(self, op: BlockOperator, join_vars: tuple[str, ...]) -> None:
        self.op = op
        self.join_vars = join_vars
        self.top: float | None = None  # first score seen (HRJN's "top")
        self._chunks: list[Block] = []
        self._n = 0
        self._columns: dict[str, np.ndarray] = {}
        self._scores = np.empty(0, dtype=np.float64)
        self._key_columns: tuple[np.ndarray, ...] = ()
        self._order = np.empty(0, dtype=np.int64)
        self._packed_sorted: np.ndarray | None = None
        self._dirty = False

    @property
    def n_rows(self) -> int:
        return self._n

    def insert(self, block: Block) -> None:
        if self.top is None and len(block):
            self.top = float(block.scores[0])
        self._chunks.append(block)
        self._n += len(block)
        self._dirty = True

    def _consolidate(self, pack_base: int) -> None:
        names = self.op.var_names
        n_old = len(self._scores)
        if self._chunks:
            self._columns = {
                name: np.concatenate(
                    ([self._columns[name]] if self._columns else [])
                    + [chunk.column(name) for chunk in self._chunks]
                )
                for name in names
            }
            self._scores = np.concatenate(
                ([self._scores] if len(self._scores) else [])
                + [chunk.scores for chunk in self._chunks]
            )
            self._chunks = []
        self._key_columns = tuple(self._columns[name] for name in self.join_vars)
        new_keys = pack_columns(
            tuple(column[n_old:] for column in self._key_columns),
            pack_base,
            n_rows=self._n - n_old,
        )
        if new_keys is None:
            self._packed_sorted = None
            self._dirty = False
            return
        # Incremental merge: sort only the freshly pulled rows and weave
        # them into the existing sorted run — O(n + B) per block instead
        # of a full O(n log n) re-argsort of everything pulled so far.
        new_order = np.argsort(new_keys, kind="stable") + n_old
        new_sorted = new_keys[new_order - n_old]
        if self._packed_sorted is None or n_old == 0:
            self._packed_sorted = new_sorted
            self._order = new_order
        else:
            new_mask = _weave_mask(self._packed_sorted, new_sorted)
            self._order = _weave(self._order, new_order, new_mask)
            self._packed_sorted = _weave(self._packed_sorted, new_sorted, new_mask)
        self._dirty = False

    def probe_arrays(
        self, pack_base: int
    ) -> tuple[dict[str, np.ndarray], np.ndarray, np.ndarray | None, np.ndarray]:
        """``(columns, scores, packed_sorted, order)`` over all pulled rows.

        ``packed_sorted`` is ``None`` when the key domain could not be
        packed into int64; the caller then uses :func:`joint_group_ids`
        per probe.
        """
        if self._dirty:
            self._consolidate(pack_base)
        return self._columns, self._scores, self._packed_sorted, self._order

    def key_columns(self) -> tuple[np.ndarray, ...]:
        return self._key_columns


class VectorRankJoin(BlockOperator):
    """HRJN-style binary rank join exchanging blocks of id columns."""

    def __init__(
        self,
        left: BlockOperator,
        right: BlockOperator,
        context: ExecutionContext,
        codec: TermCodec,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        overlap = left.patterns_covered & right.patterns_covered
        if overlap:
            raise ExecutionError(
                f"rank join inputs overlap on patterns {sorted(overlap)}"
            )
        self._context = context
        self._codec = codec
        self._block_size = block_size
        self._covered = left.patterns_covered | right.patterns_covered
        join_vars = tuple(
            sorted(set(left.var_names) & set(right.var_names))
        )
        self._join_vars = join_vars
        self._left = _Side(left, join_vars)
        self._right = _Side(right, join_vars)
        self._var_names = tuple(left.var_names) + tuple(
            name for name in right.var_names if name not in set(left.var_names)
        )
        self._pack_base: int | None = None
        # Score-sorted result buffer with a release cursor.
        self._buf_columns: tuple[np.ndarray, ...] = tuple(
            np.empty(0, dtype=np.int64) for _ in self._var_names
        )
        self._buf_scores = np.empty(0, dtype=np.float64)
        self._buf_position = 0
        self._pull_left_next = True
        self._exhausted = False

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    @property
    def var_names(self) -> tuple[str, ...]:
        return self._var_names

    @property
    def join_variables(self) -> tuple[str, ...]:
        return self._join_vars

    # ------------------------------------------------------------------
    def _probe(self, block: Block, own: _Side, other: _Side) -> None:
        """Join *block* (just pulled into *own*) against *other*'s rows."""
        self._context.joins_attempted += len(block)
        if other.n_rows == 0 or len(block) == 0:
            return
        if self._pack_base is None:
            # All encoding happened while the leaves were built, so the
            # codec's id domain is final by the first pull.
            self._pack_base = max(self._codec.n_ids, 1)
        columns, scores, packed_sorted, order = other.probe_arrays(self._pack_base)
        block_keys = tuple(block.column(name) for name in self._join_vars)
        if packed_sorted is not None:
            probe_packed = pack_columns(
                block_keys, self._pack_base, n_rows=len(block)
            )
        else:
            # Exact slow path: joint group ids over both row sets.
            stored_ids, probe_ids = joint_group_ids(
                other.key_columns(), block_keys
            )
            order = np.argsort(stored_ids, kind="stable")
            packed_sorted = stored_ids[order]
            probe_packed = probe_ids
        lo = np.searchsorted(packed_sorted, probe_packed, side="left")
        hi = np.searchsorted(packed_sorted, probe_packed, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return
        self._context.joins_matched += int(np.count_nonzero(counts))
        probe_rows = np.repeat(np.arange(len(block), dtype=np.int64), counts)
        starts = np.repeat(lo, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        stored_rows = order[starts + offsets]
        joined_scores = block.scores[probe_rows] + scores[stored_rows]
        own_names = set(own.op.var_names)
        joined_columns = tuple(
            block.column(name)[probe_rows]
            if name in own_names
            else columns[name][stored_rows]
            for name in self._var_names
        )
        self._context.factory.objects_created += total
        self._buffer_insert(joined_columns, joined_scores)

    def _buffer_insert(
        self, columns: tuple[np.ndarray, ...], scores: np.ndarray
    ) -> None:
        """Merge new results into the sorted buffer (unreleased part).

        Only the fresh results are argsorted (they are few per probe);
        the sorted run is then woven into the already-sorted unreleased
        buffer (:func:`_weave_mask`, shared with
        :meth:`_Side._consolidate`), so an unselective join that buffers
        many results before the threshold releases them pays
        O(buffer + new) per probe instead of re-sorting the whole buffer
        every time.
        """
        new_order = np.argsort(-scores, kind="stable")
        new_scores = scores[new_order]
        new_columns = tuple(column[new_order] for column in columns)
        position = self._buf_position
        kept_scores = self._buf_scores[position:]
        if len(kept_scores) == 0:
            self._buf_scores = new_scores
            self._buf_columns = new_columns
            self._buf_position = 0
            return
        # Negated scores turn the descending runs ascending for the weave.
        new_mask = _weave_mask(-kept_scores, -new_scores)
        self._buf_scores = _weave(kept_scores, new_scores, new_mask)
        self._buf_columns = tuple(
            _weave(kept[position:], new, new_mask)
            for kept, new in zip(self._buf_columns, new_columns)
        )
        self._buf_position = 0

    # ------------------------------------------------------------------
    def _pull_once(self) -> bool:
        """Pull one block, alternating sides (HRJN round-robin), preferring
        a non-exhausted side.  Returns False when both inputs are done."""
        left_bound = self._left.op.upper_bound()
        right_bound = self._right.op.upper_bound()
        if left_bound == EXHAUSTED_BOUND and right_bound == EXHAUSTED_BOUND:
            return False
        pull_left = self._pull_left_next
        if left_bound == EXHAUSTED_BOUND:
            pull_left = False
        elif right_bound == EXHAUSTED_BOUND:
            pull_left = True
        self._pull_left_next = not pull_left
        own, other = (
            (self._left, self._right) if pull_left else (self._right, self._left)
        )
        block = own.op.next_block()
        if block is None:
            return (
                self._left.op.upper_bound() != EXHAUSTED_BOUND
                or self._right.op.upper_bound() != EXHAUSTED_BOUND
            )
        self._probe(block, own, other)
        own.insert(block)
        return True

    def _threshold(self) -> float:
        """The HRJN bound on any future (not-yet-buffered) join result."""
        left_ub = self._left.op.upper_bound()
        right_ub = self._right.op.upper_bound()
        left_top = self._left.top if self._left.top is not None else left_ub
        right_top = self._right.top if self._right.top is not None else right_ub
        candidates = []
        if left_top != EXHAUSTED_BOUND and right_ub != EXHAUSTED_BOUND:
            candidates.append(left_top + right_ub)
        if right_top != EXHAUSTED_BOUND and left_ub != EXHAUSTED_BOUND:
            candidates.append(right_top + left_ub)
        if not candidates:
            return EXHAUSTED_BOUND
        return max(candidates)

    def _emit(self, stop: int) -> Block:
        start = self._buf_position
        stop = min(stop, start + self._block_size)
        self._buf_position = stop
        window = slice(start, stop)
        return Block(
            self._var_names,
            tuple(column[window] for column in self._buf_columns),
            self._buf_scores[window],
        )

    def next_block(self) -> Block | None:
        if self._exhausted:
            return None
        while True:
            threshold = self._threshold()
            position = self._buf_position
            buffered = len(self._buf_scores) - position
            if buffered and float(self._buf_scores[position]) >= threshold:
                # Rows with score >= threshold form a prefix of the
                # sorted buffer; release it (capped at the block size).
                eligible = int(
                    np.searchsorted(
                        -self._buf_scores[position:], -threshold, side="right"
                    )
                )
                return self._emit(position + eligible)
            if not self._pull_once():
                if buffered:
                    return self._emit(len(self._buf_scores))
                self._exhausted = True
                return None

    def upper_bound(self) -> float:
        if self._exhausted:
            return EXHAUSTED_BOUND
        candidates = []
        if self._buf_position < len(self._buf_scores):
            candidates.append(float(self._buf_scores[self._buf_position]))
        threshold = self._threshold()
        if threshold != EXHAUSTED_BOUND:
            candidates.append(threshold)
        return max(candidates) if candidates else EXHAUSTED_BOUND

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorRankJoin(covering={sorted(self._covered)})"
