"""The pull-based operator protocol.

Every physical operator emits :class:`~repro.query.answer.PartialAnswer`
objects in **non-increasing score order** and exposes an upper bound on
the score of anything it has not yet emitted.  That pair of guarantees is
what lets rank joins terminate early (§2.1: the operators "maintain upper
bounds to estimate scores of the answers that can be obtained by reading
further into the lists").
"""

from __future__ import annotations

import abc
import math
from typing import Iterator

from repro.query.answer import PartialAnswer


class Operator(abc.ABC):
    """Base class for all pull-based operators.

    Contract:

    * :meth:`next` returns the next output or ``None`` (exhausted); once
      ``None`` is returned, all later calls return ``None``.
    * Outputs are in non-increasing score order.
    * :meth:`upper_bound` is an upper bound on every future output's
      score; it is ``-inf`` once exhausted and never increases.
    """

    @abc.abstractmethod
    def next(self) -> PartialAnswer | None:
        """Produce the next answer, or ``None`` when exhausted."""

    @abc.abstractmethod
    def upper_bound(self) -> float:
        """Best score any not-yet-emitted output can have."""

    @property
    @abc.abstractmethod
    def patterns_covered(self) -> frozenset[int]:
        """Indexes (into the query) of the patterns this operator covers."""

    def __iter__(self) -> Iterator[PartialAnswer]:
        while True:
            item = self.next()
            if item is None:
                return
            yield item

    def drain(self, limit: int | None = None) -> list[PartialAnswer]:
        """Pull up to *limit* outputs (all of them when ``None``)."""
        results: list[PartialAnswer] = []
        for item in self:
            results.append(item)
            if limit is not None and len(results) >= limit:
                break
        return results


EXHAUSTED_BOUND = -math.inf
