"""Rank Join — the HRJN algorithm (Ilyas et al., VLDB 2003/04; §2.1).

A binary rank join reads two score-sorted inputs, maintains a hash table
per side keyed on the shared join variables, probes the opposite table on
every pull, and buffers join results in a priority queue.  A buffered
result is released only when its score is at least the HRJN *threshold*

    T = max(top_left + ub_right, ub_left + top_right)

(the best score any future join result could reach, where ``top`` is the
first score seen on a side and ``ub`` the side's current upper bound), so
outputs come in non-increasing score order without computing the whole
join — the early-termination property the paper relies on.
"""

from __future__ import annotations

import heapq
import itertools
import math
import operator as _operator
from collections import defaultdict
from typing import Callable

from repro.errors import ExecutionError
from repro.operators.base import EXHAUSTED_BOUND, Operator
from repro.operators.memory import ExecutionContext
from repro.query.answer import PartialAnswer

#: Sentinel bucket for tuples stored before the join variables are known.
_PENDING_KEY = ("?pending",)


def _make_key_extractor(
    join_vars: tuple[str, ...],
) -> Callable[[PartialAnswer], tuple]:
    """A compiled join-key extractor for *join_vars*.

    Built once per join when the shared variables are discovered, so the
    per-probe work is a single ``itemgetter`` call instead of re-deriving
    the variable tuple and iterating it in Python.
    """
    if not join_vars:
        empty: tuple = ()
        return lambda item: empty
    getter = _operator.itemgetter(*join_vars)
    if len(join_vars) == 1:
        def extract_single(item: PartialAnswer) -> tuple:
            try:
                return (getter(item.bindings),)
            except KeyError as exc:
                raise ExecutionError(
                    f"partial answer missing join variable {exc.args[0]!r}"
                ) from None
        return extract_single

    def extract(item: PartialAnswer) -> tuple:
        try:
            return getter(item.bindings)
        except KeyError as exc:
            raise ExecutionError(
                f"partial answer missing join variable {exc.args[0]!r}"
            ) from None
    return extract


class RankJoin(Operator):
    """HRJN-style binary rank join over shared variables.

    When the inputs share no variable the operator degrades to a ranked
    cartesian product (still correct, just unselective) — queries in the
    paper's workloads are always connected, but plans over join groups may
    transiently create variable-disjoint pairs, and correctness must not
    depend on the planner avoiding them.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        context: ExecutionContext,
    ) -> None:
        overlap = left.patterns_covered & right.patterns_covered
        if overlap:
            raise ExecutionError(
                f"rank join inputs overlap on patterns {sorted(overlap)}"
            )
        self._left = left
        self._right = right
        self._context = context
        self._covered = left.patterns_covered | right.patterns_covered
        self._join_vars: tuple[str, ...] | None = None  # discovered lazily
        #: Compiled key extractor, shared by both sides once the join
        #: variables are known (both sides key on the same tuple).
        self._extract_key: Callable[[PartialAnswer], tuple] | None = None
        self._left_probe_keys: tuple[str, ...] | None = None
        self._right_probe_keys: tuple[str, ...] | None = None
        self._left_table: dict[tuple[str, ...], list[PartialAnswer]] = defaultdict(list)
        self._right_table: dict[tuple[str, ...], list[PartialAnswer]] = defaultdict(list)
        self._left_top: float | None = None
        self._right_top: float | None = None
        self._buffer: list[tuple[float, int, PartialAnswer]] = []
        self._counter = itertools.count()
        self._exhausted = False
        self._pull_left_next = True

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    # ------------------------------------------------------------------
    def _discover_join_vars(
        self, item: PartialAnswer, from_left: bool
    ) -> Callable[[PartialAnswer], tuple] | None:
        """Fix the join variables the first time we see a tuple from each
        side.  We take the intersection of binding keys; both sides emit
        all their patterns' variables, so this equals the shared query
        variables.  Once both sides have been seen the extractor is
        compiled, pending tuples are re-keyed, and this method is never
        consulted again (the extractor caches the discovery)."""
        if from_left:
            self._left_probe_keys = tuple(sorted(item.bindings))
        else:
            self._right_probe_keys = tuple(sorted(item.bindings))
        if self._left_probe_keys is None or self._right_probe_keys is None:
            return None
        right_names = set(self._right_probe_keys)
        self._join_vars = tuple(
            name for name in self._left_probe_keys if name in right_names
        )
        self._extract_key = _make_key_extractor(self._join_vars)
        self._rekey_pending()
        return self._extract_key

    def _insert_and_probe(self, item: PartialAnswer, from_left: bool) -> None:
        extract = self._extract_key
        if extract is None:
            extract = self._discover_join_vars(item, from_left)
            if extract is None:
                # Only one side seen so far: just store under a sentinel
                # key; tables are re-keyed once join vars are known.
                table = self._left_table if from_left else self._right_table
                table[_PENDING_KEY].append(item)
                return
        own_table = self._left_table if from_left else self._right_table
        other_table = self._right_table if from_left else self._left_table
        key = extract(item)
        own_table[key].append(item)
        self._context.joins_attempted += 1
        matches = other_table.get(key, ())
        produced = False
        for candidate in matches:
            left_item = item if from_left else candidate
            right_item = candidate if from_left else item
            joined = self._context.factory.join(left_item, right_item)
            if joined is not None:
                heapq.heappush(
                    self._buffer, (-joined.score, next(self._counter), joined)
                )
                produced = True
        if produced:
            self._context.joins_matched += 1

    def _rekey_pending(self) -> None:
        assert self._extract_key is not None
        for table in (self._left_table, self._right_table):
            pending = table.pop(_PENDING_KEY, None)
            if pending:
                for stored in pending:
                    table[self._extract_key(stored)].append(stored)

    # ------------------------------------------------------------------
    def _pull_once(self) -> bool:
        """Pull one tuple from the side chosen by simple alternation
        (HRJN's round-robin strategy), preferring a non-exhausted side.
        Returns False when both inputs are exhausted."""
        left_bound = self._left.upper_bound()
        right_bound = self._right.upper_bound()
        if left_bound == EXHAUSTED_BOUND and right_bound == EXHAUSTED_BOUND:
            return False
        pull_left = self._pull_left_next
        if left_bound == EXHAUSTED_BOUND:
            pull_left = False
        elif right_bound == EXHAUSTED_BOUND:
            pull_left = True
        self._pull_left_next = not pull_left
        source = self._left if pull_left else self._right
        item = source.next()
        if item is None:
            return (
                self._left.upper_bound() != EXHAUSTED_BOUND
                or self._right.upper_bound() != EXHAUSTED_BOUND
            )
        if pull_left and self._left_top is None:
            self._left_top = item.score
        if not pull_left and self._right_top is None:
            self._right_top = item.score
        self._insert_and_probe(item, from_left=pull_left)
        return True

    def _threshold(self) -> float:
        """The HRJN bound on any future (not-yet-buffered) join result."""
        left_ub = self._left.upper_bound()
        right_ub = self._right.upper_bound()
        left_top = self._left_top if self._left_top is not None else left_ub
        right_top = self._right_top if self._right_top is not None else right_ub
        candidates = []
        if left_top != EXHAUSTED_BOUND and right_ub != EXHAUSTED_BOUND:
            candidates.append(left_top + right_ub)
        if right_top != EXHAUSTED_BOUND and left_ub != EXHAUSTED_BOUND:
            candidates.append(right_top + left_ub)
        if not candidates:
            return EXHAUSTED_BOUND
        return max(candidates)

    def next(self) -> PartialAnswer | None:
        if self._exhausted:
            return None
        while True:
            threshold = self._threshold()
            if self._buffer and -self._buffer[0][0] >= threshold:
                _, _, item = heapq.heappop(self._buffer)
                return item
            if not self._pull_once():
                if self._buffer:
                    _, _, item = heapq.heappop(self._buffer)
                    return item
                self._exhausted = True
                return None

    def upper_bound(self) -> float:
        if self._exhausted:
            return EXHAUSTED_BOUND
        candidates = []
        if self._buffer:
            candidates.append(-self._buffer[0][0])
        threshold = self._threshold()
        if threshold != EXHAUSTED_BOUND:
            candidates.append(threshold)
        return max(candidates) if candidates else EXHAUSTED_BOUND

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankJoin(covering={sorted(self._covered)})"
