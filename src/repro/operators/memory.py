"""Execution context: answer-object accounting and pull statistics.

The paper measures memory as "the total number of answer objects created",
covering every intermediate object built by Incremental Merges and Rank
Joins.  One :class:`ExecutionContext` is threaded through an operator tree
per query execution; its :class:`~repro.query.answer.AnswerFactory` is the
only way operators construct partial answers, so the counter is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.answer import AnswerFactory


@dataclass
class ExecutionContext:
    """Shared per-execution state for an operator tree."""

    factory: AnswerFactory = field(default_factory=AnswerFactory)
    tuples_pulled: int = 0       # items read from base match lists
    joins_attempted: int = 0     # probe operations in rank joins
    joins_matched: int = 0       # probes that produced at least one output

    @property
    def answer_objects_created(self) -> int:
        """The paper's memory metric."""
        return self.factory.objects_created

    def snapshot(self) -> dict[str, int]:
        """A plain-dict view for reports and tests."""
        return {
            "answer_objects_created": self.answer_objects_created,
            "tuples_pulled": self.tuples_pulled,
            "joins_attempted": self.joins_attempted,
            "joins_matched": self.joins_matched,
        }
