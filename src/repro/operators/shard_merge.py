"""Top-k merge of per-shard answer streams with threshold early termination.

The sharded substrate (:mod:`repro.kg.sharding`) slices every match list
into per-shard sorted runs.  This module turns those runs back into the
single sorted stream the rest of the operator algebra expects, without
giving up the two properties the engine's correctness rests on:

* **Exactness** — the merged stream is item-for-item the stream an
  unsharded :class:`~repro.operators.scan.SortedScan` would emit: same
  partial answers, same (globally normalised) scores, same order, same
  upper bounds.  Parent operators therefore behave identically, so
  sharded execution returns byte-identical answers.  One caveat bounds
  the claim: the merge orders by *normalised* score, the unsharded list
  by *raw* score.  The two orders coincide whenever distinct raw scores
  stay distinct after the ``score / global_max`` division — true for
  any score distribution with relative gaps above one ulp (integer
  counts, the paper's setting, trivially qualify).  If two raw scores
  in different shards collide to the same float quotient, the reported
  scores are still identical but the merged order among just those
  items falls back to the ``spo`` tie-break, which may pick a different
  equal-scored answer at the top-k boundary.
* **Laziness** — a shard's match list is only decoded and sorted when
  the merge actually needs an item from it.  :class:`ShardMerge` pulls a
  stream only while its upper bound can still reach the current merge
  frontier (the classic rank-join threshold argument), so under
  ``score-range`` sharding the cold shards of a top-k query are usually
  never materialised at all.

:func:`build_leaf_scan` is the factory the planner's operator-tree
construction calls for every leaf: plain graphs get a plain
:class:`SortedScan`; sharded graphs get a :class:`ShardMerge` over lazy
:class:`ShardScan` streams.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ExecutionError
from repro.kg.graph import KnowledgeGraph
from repro.kg.index import MatchList
from repro.kg.pattern import TriplePattern
from repro.operators.base import EXHAUSTED_BOUND, Operator
from repro.operators.memory import ExecutionContext
from repro.operators.scan import SortedScan
from repro.query.answer import PartialAnswer

#: Orders equal-score items; must be a total order within one merge.
TieKey = Callable[[PartialAnswer], tuple]


def _identity_tie_key(item: PartialAnswer) -> tuple:
    return item.identity()


class ShardScan(Operator):
    """One shard's share of a pattern's match list, built on first pull.

    Until the first :meth:`next`, the scan knows only what a vectorised
    peek (or a shard-cache hit) provided: how many rows match and the
    shard's maximum raw score.  That is enough for an *exact* upper
    bound — ``weight * (local_max / global_max)`` is bit-for-bit the
    score of the first item the scan would emit — so a merge can defer
    or skip the build entirely.

    Parameters
    ----------
    shard_graph:
        The shard's :class:`~repro.kg.columnar.ColumnarGraph`; its
        ``match_list`` (and per-shard cache) serves the eventual build.
    global_max:
        The pattern's *global* maximum raw score, the Definition-5
        normaliser.  Emitted scores divide by this, not the shard-local
        maximum, which is what keeps sharded scores identical to
        unsharded ones.
    n_matches / local_max:
        The peeked shape of the shard's list.
    match_list:
        The shard's already-cached list, if one existed (skips the
        rebuild but still rescales to *global_max*).
    """

    def __init__(
        self,
        shard_graph: KnowledgeGraph,
        pattern: TriplePattern,
        pattern_index: int,
        context: ExecutionContext,
        weight: float,
        global_max: float,
        n_matches: int,
        local_max: float,
        match_list: MatchList | None = None,
    ) -> None:
        self._graph = shard_graph
        self._pattern = pattern
        self._pattern_index = pattern_index
        self._context = context
        self._weight = weight
        self._global_max = global_max
        self._n_matches = n_matches
        self._local_max = local_max
        self._prebuilt = match_list
        self._covered = frozenset({pattern_index})
        self._inner: SortedScan | None = None

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    @property
    def built(self) -> bool:
        """Whether the shard's match list has been materialised."""
        return self._inner is not None

    def _rescaled(self, match_list: MatchList) -> MatchList:
        """*match_list* with scores normalised by the global maximum.

        When the shard happens to hold the global maximum the shard's
        own normalisation already divided by the same float, so the list
        is reused as-is (identical bits, no copy).
        """
        if match_list.max_score == self._global_max:
            return match_list
        if self._global_max > 0:
            normalized = tuple(
                triple.score / self._global_max for triple in match_list.triples
            )
        else:
            normalized = tuple(0.0 for _ in match_list.triples)
        return MatchList(
            match_list.pattern_key, match_list.triples, self._global_max, normalized
        )

    def _ensure_built(self) -> SortedScan:
        if self._inner is None:
            match_list = self._prebuilt
            if match_list is None:
                match_list = self._graph.match_list(self._pattern)
            self._inner = SortedScan(
                self._graph,
                self._pattern,
                self._pattern_index,
                self._context,
                self._weight,
                match_list=self._rescaled(match_list),
            )
        return self._inner

    def next(self) -> PartialAnswer | None:
        if self._n_matches == 0:
            return None
        return self._ensure_built().next()

    def upper_bound(self) -> float:
        if self._n_matches == 0:
            return EXHAUSTED_BOUND
        if self._inner is not None:
            return self._inner.upper_bound()
        if self._global_max > 0:
            return self._weight * (self._local_max / self._global_max)
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "built" if self.built else f"lazy({self._n_matches})"
        return f"ShardScan({self._pattern}, {state})"


class ShardMerge(Operator):
    """Merge N score-sorted streams into one, pulling as little as possible.

    Each input stream must emit in non-increasing score order and honour
    the :class:`~repro.operators.base.Operator` upper-bound contract; all
    streams must cover the same query pattern(s).  The merge keeps at
    most one peeked head per stream and **only pulls a stream whose
    upper bound can still reach the best peeked head** — the threshold
    rule that lets cold shards terminate early (often without a single
    pull, see :class:`ShardScan`).

    Ordering among equal scores follows *tie_key* (ascending), then the
    stream position.  When the streams partition one match list and
    *tie_key* restores that list's tie order — as
    :func:`build_leaf_scan` arranges — the merged stream is exactly the
    unsharded stream.
    """

    def __init__(
        self,
        streams: Sequence[Operator],
        tie_key: TieKey | None = None,
    ) -> None:
        if not streams:
            raise ExecutionError("shard merge needs at least one input stream")
        covered = streams[0].patterns_covered
        for stream in streams[1:]:
            if stream.patterns_covered != covered:
                raise ExecutionError(
                    "all shard-merge inputs must cover the same query patterns"
                )
        self._streams = list(streams)
        self._covered = covered
        self._tie_key = tie_key or _identity_tie_key
        self._heads: list[PartialAnswer | None] = [None] * len(self._streams)
        self._done = [False] * len(self._streams)
        #: Memoised upper_bound (parents probe bounds far more often than
        #: they pull); invalidated by every next().
        self._bound: float | None = None

    @property
    def patterns_covered(self) -> frozenset[int]:
        return self._covered

    @property
    def n_streams(self) -> int:
        return len(self._streams)

    # ------------------------------------------------------------------
    def _advance(self, index: int) -> None:
        item = self._streams[index].next()
        if item is None:
            self._done[index] = True
        else:
            self._heads[index] = item

    def _best_head(self) -> int | None:
        best: int | None = None
        best_key: tuple | None = None
        for index, head in enumerate(self._heads):
            if head is None:
                continue
            key = (-head.score, self._tie_key(head))
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def next(self) -> PartialAnswer | None:
        while True:
            best = self._best_head()
            frontier = self._heads[best].score if best is not None else None
            # The most promising stream without a peeked head.
            top_bound: float | None = None
            top_index: int | None = None
            for index, head in enumerate(self._heads):
                if head is not None or self._done[index]:
                    continue
                bound = self._streams[index].upper_bound()
                if bound == EXHAUSTED_BOUND:
                    self._done[index] = True
                    continue
                if top_bound is None or bound > top_bound:
                    top_bound, top_index = bound, index
            # A stream strictly below the frontier cannot contribute the
            # next item (ties must be compared, hence the >=); pulling
            # one stream at a time lets each pull raise the frontier and
            # spare the remaining streams.
            if top_index is None or (frontier is not None and top_bound < frontier):
                break
            self._advance(top_index)
        self._bound = None
        best = self._best_head()
        if best is None:
            return None
        item = self._heads[best]
        self._heads[best] = None
        return item

    def upper_bound(self) -> float:
        if self._bound is not None:
            return self._bound
        candidates = [head.score for head in self._heads if head is not None]
        for index, stream in enumerate(self._streams):
            if self._heads[index] is None and not self._done[index]:
                bound = stream.upper_bound()
                if bound != EXHAUSTED_BOUND:
                    candidates.append(bound)
        self._bound = max(candidates) if candidates else EXHAUSTED_BOUND
        return self._bound

    def stream_states(self) -> list[str]:
        """Diagnostics: ``"exhausted"``, ``"peeked"`` or ``"untouched"``
        per stream (plus ``"lazy"``/``"built"`` for shard scans)."""
        states = []
        for index, stream in enumerate(self._streams):
            if self._done[index]:
                state = "exhausted"
            elif self._heads[index] is not None:
                state = "peeked"
            else:
                state = "untouched"
            if isinstance(stream, ShardScan):
                state += ":built" if stream.built else ":lazy"
            states.append(state)
        return states

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardMerge({len(self._streams)} streams)"


def _pattern_tie_key(pattern: TriplePattern) -> TieKey:
    """Tie order restoring a match list's ``spo`` tie-break.

    Within one pattern's match list all triples agree on the constant
    positions, so comparing the variable bindings in S-P-O *position*
    order is exactly the Definition-5 ``(s, p, o)`` comparison.
    """
    names = tuple(variable.name for variable in pattern.variables)

    def key(item: PartialAnswer) -> tuple:
        return tuple(item.bindings[name] for name in names)

    return key


def build_leaf_scan(
    graph: KnowledgeGraph,
    pattern: TriplePattern,
    pattern_index: int,
    context: ExecutionContext,
    weight: float = 1.0,
) -> Operator:
    """The leaf operator for *pattern* over *graph*.

    Plain graphs stream their match list through a
    :class:`~repro.operators.scan.SortedScan`.  Graphs exposing
    ``shard_leaf_inputs`` — :class:`~repro.kg.sharding.ShardedGraph`,
    and :class:`~repro.kg.delta.LiveGraph` overlays on sharded bases
    (whose inputs are per-shard *live slices*: the shard's list minus
    tombstones plus its routed delta adds) — get a :class:`ShardMerge`
    over one lazy :class:`ShardScan` per shard, each normalised by the
    pattern's global maximum score — an exact, lazily materialised
    replacement for the unsharded scan.

    Two fast paths keep repeat-heavy (fully warm) workloads free of
    merge overhead, both emitting the identical stream: a pattern whose
    *merged* list is already cached streams it through a plain
    ``SortedScan``, and a pattern whose matches live in a single shard
    skips the merge layer.
    """
    shard_leaf_inputs = getattr(graph, "shard_leaf_inputs", None)
    if shard_leaf_inputs is None:
        return SortedScan(graph, pattern, pattern_index, context, weight)
    merged = graph.peek_match_list(pattern)
    if merged is not None:
        return SortedScan(
            graph, pattern, pattern_index, context, weight, match_list=merged
        )
    global_max, inputs = shard_leaf_inputs(pattern)
    streams = [
        ShardScan(
            entry.graph,
            pattern,
            pattern_index,
            context,
            weight,
            global_max,
            entry.n_matches,
            entry.max_score,
            entry.match_list,
        )
        for entry in inputs
        if entry.n_matches
    ]
    if not streams:
        # No shard matches: one born-exhausted scan keeps the operator
        # contract (next() -> None, upper bound -inf).
        return ShardScan(
            inputs[0].graph, pattern, pattern_index, context, weight,
            global_max, 0, 0.0, None,
        )
    if len(streams) == 1:
        return streams[0]
    return ShardMerge(streams, tie_key=_pattern_tie_key(pattern))
