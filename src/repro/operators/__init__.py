"""Physical top-k operators (§2.1).

All operators are pull-based: ``next()`` returns the next output in
descending-score order (or ``None`` when exhausted) and ``upper_bound()``
gives the best score any *future* output can still have.  Rank Join uses
the bounds for HRJN-style early termination; Incremental Merge uses them
to merge a pattern's relaxation lists lazily.

* :class:`~repro.operators.scan.SortedScan` — stream a match list.
* :class:`~repro.operators.incremental_merge.IncrementalMerge` — merge the
  original pattern's list with its relaxations' lists (weighted).
* :class:`~repro.operators.rank_join.RankJoin` — HRJN-style binary join.
* :class:`~repro.operators.shard_merge.ShardMerge` /
  :class:`~repro.operators.shard_merge.ShardScan` — lazy top-k merge of
  per-shard answer streams with threshold early termination.
* :class:`~repro.operators.topk.TopK` — dedup + collect the final top-k.
* :class:`~repro.operators.memory.ExecutionContext` — answer-object
  accounting (the paper's memory metric) and pull statistics.
"""

from repro.operators.base import Operator
from repro.operators.incremental_merge import IncrementalMerge, WeightedInput
from repro.operators.memory import ExecutionContext
from repro.operators.rank_join import RankJoin
from repro.operators.scan import SortedScan
from repro.operators.shard_merge import ShardMerge, ShardScan, build_leaf_scan
from repro.operators.topk import TopK

__all__ = [
    "ExecutionContext",
    "IncrementalMerge",
    "Operator",
    "RankJoin",
    "ShardMerge",
    "ShardScan",
    "SortedScan",
    "TopK",
    "WeightedInput",
    "build_leaf_scan",
]
