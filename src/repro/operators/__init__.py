"""Physical top-k operators (§2.1).

All operators are pull-based: ``next()`` returns the next output in
descending-score order (or ``None`` when exhausted) and ``upper_bound()``
gives the best score any *future* output can still have.  Rank Join uses
the bounds for HRJN-style early termination; Incremental Merge uses them
to merge a pattern's relaxation lists lazily.

* :class:`~repro.operators.scan.SortedScan` — stream a match list.
* :class:`~repro.operators.incremental_merge.IncrementalMerge` — merge the
  original pattern's list with its relaxations' lists (weighted).
* :class:`~repro.operators.rank_join.RankJoin` — HRJN-style binary join.
* :class:`~repro.operators.shard_merge.ShardMerge` /
  :class:`~repro.operators.shard_merge.ShardScan` — lazy top-k merge of
  per-shard answer streams with threshold early termination.
* :class:`~repro.operators.topk.TopK` — dedup + collect the final top-k.
* :class:`~repro.operators.memory.ExecutionContext` — answer-object
  accounting (the paper's memory metric) and pull statistics.

The block-at-a-time vectorized twins (same upper-bound contract, batches
of dictionary-encoded id columns instead of answer objects — see
:mod:`repro.operators.block`):

* :class:`~repro.operators.vector_scan.VectorScan` /
  :class:`~repro.operators.vector_scan.VectorIncrementalMerge` — leaf
  scans and relaxation merges over encoded match lists.
* :class:`~repro.operators.vector_join.VectorRankJoin` — block HRJN rank
  join probing int64 id columns.
* :class:`~repro.operators.block.BlockTopK` — the decoding top-k sink.
"""

from repro.operators.base import Operator
from repro.operators.block import (
    Block,
    BlockOperator,
    BlockTopK,
    EncodedMatchList,
    TermCodec,
    build_encoded_match_list,
)
from repro.operators.incremental_merge import IncrementalMerge, WeightedInput
from repro.operators.memory import ExecutionContext
from repro.operators.rank_join import RankJoin
from repro.operators.scan import SortedScan
from repro.operators.shard_merge import ShardMerge, ShardScan, build_leaf_scan
from repro.operators.topk import TopK
from repro.operators.vector_join import VectorRankJoin
from repro.operators.vector_scan import VectorIncrementalMerge, VectorScan

__all__ = [
    "Block",
    "BlockOperator",
    "BlockTopK",
    "EncodedMatchList",
    "ExecutionContext",
    "IncrementalMerge",
    "Operator",
    "RankJoin",
    "ShardMerge",
    "ShardScan",
    "SortedScan",
    "TermCodec",
    "TopK",
    "VectorIncrementalMerge",
    "VectorRankJoin",
    "VectorScan",
    "WeightedInput",
    "build_encoded_match_list",
    "build_leaf_scan",
]
