"""Workload-level aggregation: latencies, throughput, cache and plan mix.

One :class:`QueryOutcome` per executed query, one :class:`WorkloadReport`
per batch.  The report is what ``python -m repro.experiments workload``
prints and what the throughput benchmark asserts on: nearest-rank latency
percentiles, queries/second over the batch wall clock, the match-list
cache hit rate, and how PLANGEN's decisions distributed over the batch
(exact / partially relaxed / fully relaxed plans).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.service.cache import CacheStats

#: Percentiles the report renders by default.
REPORT_PERCENTILES = (50, 90, 99)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of *values*.

    Nearest-rank keeps every reported latency an actually observed one,
    which is the convention serving systems use for tail latencies.
    """
    if not values:
        raise ExperimentError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ExperimentError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-q * len(ordered) // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class QueryOutcome:
    """What one query run contributed to the batch."""

    query_name: str
    k: int
    n_patterns: int
    seconds: float
    n_answers: int
    n_relaxed: int
    plan: str
    top_score: float = 0.0
    #: Which pipeline served this query: ``"tuple"``, ``"block"``, or
    #: ``"cached"`` when the whole-answer result cache answered it
    #: without executing anything.  Empty for reports predating the
    #: field (it never affects equality-of-answers comparisons).
    executor: str = ""

    @property
    def plan_kind(self) -> str:
        """``exact`` (nothing relaxed), ``partial``, or ``all-relaxed``."""
        if self.n_relaxed == 0:
            return "exact"
        if self.n_relaxed >= self.n_patterns:
            return "all-relaxed"
        return "partial"


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregates a batch run; everything derived is a property.

    ``wall_seconds`` is the end-to-end batch time (including planning and
    any pool scheduling), which with ``n_workers > 1`` is less than the
    sum of per-query latencies — that is the point of the pool.
    """

    outcomes: tuple[QueryOutcome, ...]
    wall_seconds: float
    n_workers: int = 1
    mode: str = "warm"
    cache: CacheStats | None = None
    warmup_seconds: float = 0.0
    dataset: str = ""
    extras: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ExperimentError("a WorkloadReport needs at least one outcome")

    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        return len(self.outcomes)

    @property
    def latencies(self) -> list[float]:
        return [outcome.seconds for outcome in self.outcomes]

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / self.n_queries

    @property
    def max_latency(self) -> float:
        return max(self.latencies)

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies, q)

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_queries / self.wall_seconds

    @property
    def plan_mix(self) -> dict[str, int]:
        """How PLANGEN's decisions distributed over the batch."""
        mix = {"exact": 0, "partial": 0, "all-relaxed": 0}
        for outcome in self.outcomes:
            mix[outcome.plan_kind] += 1
        return mix

    @property
    def mean_relaxed(self) -> float:
        return sum(o.n_relaxed for o in self.outcomes) / self.n_queries

    @property
    def total_answers(self) -> int:
        return sum(o.n_answers for o in self.outcomes)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """A flat, JSON-ready summary (used by tests and exporters)."""
        summary: dict[str, object] = {
            "dataset": self.dataset,
            "mode": self.mode,
            "n_queries": self.n_queries,
            "n_workers": self.n_workers,
            "wall_seconds": self.wall_seconds,
            "warmup_seconds": self.warmup_seconds,
            "queries_per_second": self.queries_per_second,
            "mean_latency": self.mean_latency,
            "max_latency": self.max_latency,
            "plan_mix": self.plan_mix,
            "mean_relaxed": self.mean_relaxed,
            "total_answers": self.total_answers,
        }
        for q in REPORT_PERCENTILES:
            summary[f"p{q}_latency"] = self.latency_percentile(q)
        if self.cache is not None:
            summary["cache"] = self.cache.as_dict()
        summary.update(self.extras)
        return summary

    def render(self) -> str:
        """A human-readable block, the CLI's output."""
        width = 23
        lines = [
            f"WorkloadReport — {self.dataset or 'workload'} "
            f"[{self.mode} cache, {self.n_workers} worker"
            f"{'s' if self.n_workers != 1 else ''}]",
            "-" * 60,
            f"{'queries':<{width}} {self.n_queries}",
            f"{'wall time':<{width}} {self.wall_seconds:.3f} s"
            + (
                f"  (+{self.warmup_seconds:.3f} s warm-up)"
                if self.warmup_seconds
                else ""
            ),
            f"{'throughput':<{width}} {self.queries_per_second:.1f} queries/s",
            f"{'latency mean / max':<{width}} "
            f"{self.mean_latency * 1e3:.2f} / {self.max_latency * 1e3:.2f} ms",
        ]
        percentiles = " / ".join(
            f"{self.latency_percentile(q) * 1e3:.2f}" for q in REPORT_PERCENTILES
        )
        labels = " / ".join(f"p{q}" for q in REPORT_PERCENTILES)
        lines.append(f"{'latency ' + labels:<{width}} {percentiles} ms")
        mix = self.plan_mix
        lines.append(
            f"{'plan mix':<{width}} "
            f"exact={mix['exact']} partial={mix['partial']} "
            f"all-relaxed={mix['all-relaxed']} "
            f"(mean relaxed {self.mean_relaxed:.2f})"
        )
        lines.append(f"{'answers':<{width}} {self.total_answers}")
        if self.cache is not None:
            lines.append(
                f"{'match-list cache':<{width}} "
                f"{self.cache.hits} hits / {self.cache.misses} misses "
                f"(hit rate {self.cache.hit_rate:.1%}, "
                f"size {self.cache.size}/{self.cache.capacity}, "
                f"evictions {self.cache.evictions})"
            )
        if "plan_cache_hits" in self.extras:
            plan_line = (
                f"{'plan cache':<{width}} "
                f"{self.extras['plan_cache_hits']} hits"
            )
            # Process-model reports sum worker-side hits but have no
            # master-side plan cache to size.
            if "plan_cache_size" in self.extras:
                plan_line += f", {self.extras['plan_cache_size']} plans"
            lines.append(plan_line)
        if self.extras.get("worker_model") == "process":
            lines.append(
                f"{'process fleet':<{width}} "
                f"{self.extras.get('process_workers_used', 0)} workers "
                f"(generation {self.extras.get('process_generation', 0)}), "
                f"{self.extras.get('process_chunks', 0)} chunks, "
                f"attach "
                f"{self.extras.get('process_attach_seconds', 0.0) * 1e3:.1f} ms"
            )
        if "result_cache_hits" in self.extras:
            lines.append(
                f"{'result cache':<{width}} "
                f"{self.extras['result_cache_hits']} hits / "
                f"{self.extras['result_cache_misses']} misses "
                f"({self.extras['result_cache_size']} answers cached)"
            )
        if "auto_executor_mix" in self.extras:
            mix = self.extras["auto_executor_mix"]
            lines.append(
                f"{'auto executor mix':<{width}} "
                f"tuple={mix['tuple']} block={mix['block']} "
                f"cached={mix['cached']}"
            )
        if "updates_applied" in self.extras:
            lines.append(
                f"{'live updates':<{width}} "
                f"{self.extras['updates_applied']} applied in "
                f"{self.extras['update_batches']} batches, "
                f"{self.extras['update_compactions']} compactions "
                f"(graph v{self.extras['graph_version']})"
            )
        if "shards" in self.extras:
            shard_line = (
                f"{'shards':<{width}} "
                f"{self.extras['shards']} ({self.extras['shard_strategy']})"
            )
            # Per-shard caches live in the workers under the process
            # model, so their traffic is absent from master reports.
            if "shard_cache_hits" in self.extras:
                shard_line += (
                    f", shard caches {self.extras['shard_cache_hits']} hits /"
                    f" {self.extras['shard_cache_misses']} misses"
                )
            lines.append(shard_line)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadReport(n_queries={self.n_queries}, mode={self.mode!r}, "
            f"qps={self.queries_per_second:.1f})"
        )
