"""A versioned whole-answer top-k result cache (the serving fast path).

The match-list cache (PR 1) amortises *sorting*, the plan cache
amortises *planning*, the encoded-list store (PR 5) amortises
*encoding* — but a repeated query still walks the whole operator
pipeline every time.  Served traffic is dominated by exact repeats, and
under the paper's exact threshold semantics a top-k answer set is a pure
function of ``(graph state, planning inputs, query, k)``.  So the final
level of the hierarchy caches whole answers: a hit skips planning and
execution entirely and costs one dict lookup.

Soundness rests on the same discipline as every other cache in the
service layer — the graph's monotone version counter:

* every :meth:`ResultCache.put` is tagged with the graph version the
  answers were computed at (captured *before* execution started);
* every :meth:`ResultCache.get` carries the current version and misses
  on any mismatch, so a mutated graph can never serve yesterday's
  answers;
* :meth:`~repro.service.runner.WorkloadRunner.apply_updates` eagerly
  sweeps the cache (:meth:`ResultCache.purge_stale`) under its writer
  gate, so by the time a post-update batch is admitted, nothing stale is
  even resident.

Cache-key canonicalization (see :func:`result_key`): two requests share
an entry exactly when they are the same query under the repo's query
set-semantics — same *set* of triple patterns (variable names included:
they name the answer bindings), same *set* of projection variables, same
``k`` — and the same planning inputs (rule set + planner configuration,
folded into an opaque *plan signature* by the runner).  Query names and
pattern order never split the cache; a different ``k``, rule set or
planner config always does.  The cached answers are executor-independent
by the block engine's byte-identity guarantee, so one entry serves the
tuple pipeline, the block pipeline and the cost-based ``"auto"`` mode
alike — the signature deliberately excludes the executor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery
from repro.service.cache import CacheStats

#: Entry bound of the runner's whole-answer cache.  Entries are small
#: (k answers, not match lists), so the default is roomier than the
#: match-list cache's.
DEFAULT_RESULT_CAPACITY = 4096

#: An opaque, hashable digest of everything besides the query and the
#: graph version that determines the answers (rules + planner config).
PlanSignature = Hashable

#: The canonical cache key — see :func:`result_key`.
ResultKey = tuple[frozenset, frozenset, int, PlanSignature]


def result_key(
    query: TriplePatternQuery, k: int, plan_signature: PlanSignature
) -> ResultKey:
    """The canonical cache key for *query* at *k*.

    Patterns and projection collapse to frozensets — exactly the
    equality/hash semantics :class:`~repro.query.query.TriplePatternQuery`
    itself uses, under which plans (and therefore answers) are already
    shared by the runner's plan cache.  The query's display name is
    irrelevant to its answers and is excluded on purpose.
    """
    return (
        frozenset(query.patterns),
        frozenset(query.projection),
        k,
        plan_signature,
    )


@dataclass(frozen=True)
class CachedResult:
    """One cached top-k answer set plus the outcome metadata a
    :class:`~repro.service.report.QueryOutcome` needs — a hit must be
    able to produce a full report row without replanning."""

    answers: tuple[Answer, ...]
    n_relaxed: int
    plan: str
    executor: str

    @property
    def top_score(self) -> float:
        return self.answers[0].score if self.answers else 0.0


class ResultCache:
    """Thread-safe, bounded, version-aware LRU over whole top-k answers.

    The structural twin of :class:`~repro.service.cache.MatchListCache`,
    one level up: keys are canonical ``(query, k, plan signature)``
    triples (:func:`result_key`) instead of pattern keys, values are
    :class:`CachedResult` entries instead of match lists.  Staleness is
    version-driven — entries tagged with another graph version miss and
    are dropped lazily on :meth:`get`, swept eagerly on the first
    :meth:`put` at a newer version, and swept explicitly by the writer
    path through :meth:`purge_stale`.
    """

    def __init__(self, capacity: int = DEFAULT_RESULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[ResultKey, tuple[int, CachedResult]] = (
            OrderedDict()
        )
        self._latest_version: int | None = None
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: ResultKey, version: int) -> CachedResult | None:
        """The cached answers for *key* at graph *version*, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            entry_version, result = entry
            if entry_version != version:
                # Computed against another graph state: stale, drop it.
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, key: ResultKey, version: int, result: CachedResult) -> None:
        """Cache *result* as the answers of *key* at graph *version*.

        *version* must be the version captured **before** the query
        executed: if the graph moved on mid-flight, the entry lands
        tagged with the superseded version and the next :meth:`get`
        discards it — a racing writer can delay a hit, never corrupt one.
        """
        with self._lock:
            if self._latest_version is None or version > self._latest_version:
                if self._latest_version is not None:
                    self._purge_stale_locked(version)
                self._latest_version = version
            self._entries[key] = (version, result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def purge_stale(self, current_version: int) -> int:
        """Eagerly drop every entry not computed at *current_version*.

        Called under the runner's writer gate right after a mutation
        batch lands, so post-update readers start from a cache that
        holds only current-version entries (or nothing).  Returns how
        many entries went.
        """
        with self._lock:
            if self._latest_version is None or current_version > self._latest_version:
                self._latest_version = current_version
            return self._purge_stale_locked(current_version)

    def _purge_stale_locked(self, current_version: int) -> int:
        stale = [
            key
            for key, (version, _) in self._entries.items()
            if version != current_version
        ]
        for key in stale:
            del self._entries[key]
        self._invalidations += len(stale)
        return len(stale)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries (counters survive; used when the served graph
        object itself is replaced, e.g. the runner's frozen → live wrap)."""
        with self._lock:
            self._entries.clear()
            self._latest_version = None

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"ResultCache(size={s.size}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses}, hit_rate={s.hit_rate:.2f})"
        )
