"""Multiprocess warm serving: N workers, one physical graph copy.

The thread pool in :class:`~repro.service.runner.WorkloadRunner` shares
the GIL, so adding workers mostly adds scheduling.  This module is the
process-model substrate behind ``WorkloadRunner(worker_model="process")``:

* the master exports (or reuses) one **v2 packed snapshot** of the served
  graph (:func:`repro.kg.storage.save_snapshot_v2`);
* each worker process attaches it read-only via
  :meth:`~repro.kg.columnar.ColumnarStore.open_mmap` — an O(ms)
  ``np.memmap``, so all workers share a single physical copy of the
  columns through the page cache — and builds its own serving substrate
  (catalog, match-list/encoded/plan caches, engine) over it;
* batches are dispatched as contiguous chunks over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and re-assembled in
  submission order, so the merged report (and the canonical top-k answer
  tuples) are byte-identical to single-worker serving;
* live updates travel by **versioned delta shipping**: every task carries
  the snapshot generation plus the master's update log, and a worker
  replays exactly the log prefix the task names before serving — all
  chunks of one batch name the same prefix (the master's writer gate
  guarantees no update lands mid-batch), so no worker ever serves a mix
  of versions.  When the log grows past the re-export threshold the
  master writes a fresh snapshot (generation + 1) and workers re-attach.

Worker-side state lives in module globals (one serving substrate per
worker process, reused across chunks); everything crossing the process
boundary — :class:`WorkerSpec`, queries, updates, outcomes, answers — is
plain picklable data.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import EngineConfig
from repro.kg.delta import GraphUpdate
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RuleSet
from repro.service.report import QueryOutcome

#: Chunks submitted per worker per batch: enough to rebalance skewed
#: chunks, few enough that per-chunk pickling stays amortised.
CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild the serving substrate.

    Shipped once, through the pool initializer.  The snapshot itself
    never crosses the boundary — only its path does.
    """

    graph_name: str
    rules: RuleSet
    config: EngineConfig
    cache_capacity: int
    plan_cache: bool
    shards: int
    shard_strategy: str
    executor: str
    warm_queries: tuple[TriplePatternQuery, ...]


@dataclass(frozen=True)
class ChunkTask:
    """One contiguous slice of a batch, stamped with the graph epoch.

    ``generation``/``snapshot_path`` name the base snapshot; ``log``
    is the master's update log for that generation and ``log_len`` the
    prefix to replay before serving.  Every chunk of one batch carries
    the same ``(generation, log_len)`` pair — that is the cross-process
    version barrier.
    """

    generation: int
    snapshot_path: str
    log: tuple[GraphUpdate, ...]
    log_len: int
    queries: tuple[TriplePatternQuery, ...]
    k: int


@dataclass(frozen=True)
class ChunkResult:
    """What a worker sends back: report rows plus the answers themselves."""

    outcomes: tuple[QueryOutcome, ...]
    answers: tuple[tuple[Answer, ...], ...]
    pid: int
    generation: int
    log_len: int
    graph_version: int
    attach_seconds: float
    plan_hits: int


# One serving substrate per worker process, reused across chunks.
_STATE: dict = {}


def _init_worker(spec: WorkerSpec) -> None:
    _STATE.clear()
    _STATE["spec"] = spec
    _STATE["runner"] = None
    _STATE["generation"] = -1
    _STATE["log_len"] = 0
    _STATE["attach_seconds"] = 0.0


def _ensure_runner(generation: int, snapshot_path: str):
    """The worker's local runner over the named snapshot generation.

    (Re)attaches when this process has never served, or when the master
    re-exported a fresh snapshot: the mmap columns of the old generation
    are dropped and the new file is attached — O(ms), no copies.
    """
    from repro.datasets.workload import Workload
    from repro.kg.storage import load_snapshot_v2
    from repro.service.runner import WorkloadRunner

    if _STATE["runner"] is not None and _STATE["generation"] == generation:
        return _STATE["runner"]
    spec: WorkerSpec = _STATE["spec"]
    started = time.perf_counter()
    graph = load_snapshot_v2(snapshot_path, name=spec.graph_name)
    workload = Workload(
        name=spec.graph_name,
        graph=graph,
        rules=spec.rules,
        queries=list(spec.warm_queries),
    )
    _STATE["runner"] = WorkloadRunner(
        workload,
        config=spec.config,
        n_workers=1,
        cache_capacity=spec.cache_capacity,
        plan_cache=spec.plan_cache,
        shards=spec.shards,
        shard_strategy=spec.shard_strategy,  # type: ignore[arg-type]
        executor=spec.executor,  # type: ignore[arg-type]
        # The master's result cache fronts the pool; a second level here
        # would only hide worker execution from benchmarks.
        result_cache_capacity=0,
    )
    _STATE["generation"] = generation
    _STATE["log_len"] = 0
    _STATE["attach_seconds"] = time.perf_counter() - started
    return _STATE["runner"]


def run_chunk(task: ChunkTask) -> ChunkResult:
    """Serve one chunk at exactly the version the task names.

    Replays ``task.log[:task.log_len]`` (the part this worker has not
    applied yet) through the local runner's own
    :meth:`~repro.service.runner.WorkloadRunner.apply_updates` — the
    same delta-overlay write path the master used, so the worker's graph
    state equals the master's state at dispatch time and answers stay
    byte-identical.
    """
    runner = _ensure_runner(task.generation, task.snapshot_path)
    attach_seconds = _STATE.pop("attach_seconds", 0.0)
    applied: int = _STATE["log_len"]
    if task.log_len < applied:  # pragma: no cover - master never rewinds
        raise RuntimeError(
            f"update log rewound: worker at {applied}, task names {task.log_len}"
        )
    if task.log_len > applied:
        runner.apply_updates(list(task.log[applied : task.log_len]))
        _STATE["log_len"] = task.log_len
    plan_hits_before = runner._plan_hits
    served = [runner._serve_query_locally(query, task.k) for query in task.queries]
    return ChunkResult(
        outcomes=tuple(outcome for outcome, _ in served),
        answers=tuple(answers for _, answers in served),
        pid=os.getpid(),
        generation=task.generation,
        log_len=task.log_len,
        graph_version=runner.graph.version,
        attach_seconds=attach_seconds,
        plan_hits=runner._plan_hits - plan_hits_before,
    )


def make_chunks(
    n_queries: int, n_workers: int
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunk bounds for a batch.

    Aims for :data:`CHUNKS_PER_WORKER` chunks per worker so a slow chunk
    cannot serialise the batch, while keeping chunks contiguous — the
    master reassembles results by chunk order, preserving submission
    order exactly.
    """
    if n_queries == 0:
        return []
    target = max(1, n_workers * CHUNKS_PER_WORKER)
    size = max(1, -(-n_queries // target))
    return [
        (start, min(start + size, n_queries))
        for start in range(0, n_queries, size)
    ]
