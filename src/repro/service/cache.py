"""A shared, bounded, version-aware LRU cache for match lists.

The per-graph :class:`~repro.kg.index.PatternIndex` already memoises match
lists, but its dict is unbounded, private to one graph object, and wiped
wholesale on mutation.  Workload-scale serving wants the opposite trade:
one bounded cache shared across every query of a batch (and across the
engines of concurrent workers), with hit/miss statistics the
:class:`~repro.service.report.WorkloadReport` can surface.

:class:`MatchListCache` implements the
:class:`~repro.kg.index.MatchListCacheHook` protocol: every ``get``/``put``
carries the graph version, so entries built against an older graph simply
miss and are replaced — no invalidation callback choreography needed.  On
the first ``put`` at a newer version the cache additionally sweeps every
superseded entry at once (:meth:`MatchListCache.purge_stale`), so a
version bump reclaims memory eagerly instead of waiting out the LRU.
All operations are guarded by a lock, making the cache safe to share
between :class:`~concurrent.futures.ThreadPoolExecutor` workers.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import KnowledgeGraphError
from repro.kg.index import MatchList, PatternKey

DEFAULT_CAPACITY = 2048


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }

    def since(self, before: "CacheStats") -> "CacheStats":
        """Counters attributable to the window after *before* was taken.

        Size and capacity are point-in-time readings, so they come from
        ``self``; the monotone counters are differenced.  This is how
        :class:`~repro.service.runner.WorkloadRunner` attributes cache
        activity (match-list, result, shard caches alike) to one batch.
        """
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            evictions=self.evictions - before.evictions,
            invalidations=self.invalidations - before.invalidations,
            size=self.size,
            capacity=self.capacity,
        )


class MatchListCache:
    """Thread-safe LRU over score-sorted match lists, keyed by pattern key.

    Parameters
    ----------
    capacity:
        Maximum number of match lists retained; least recently used
        entries are evicted beyond it.

    >>> cache = MatchListCache(capacity=256)
    >>> graph.attach_match_list_cache(cache)  # doctest: +SKIP
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[PatternKey, tuple[int, MatchList]] = OrderedDict()
        self._owner: "weakref.ref[object] | None" = None
        self._latest_version: int | None = None
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    def bind(self, owner: object) -> None:
        """Tie this cache to one graph (called on attach).

        Entries are keyed by pattern key and graph version only, so one
        cache serving two graphs would hand one graph's triples to the
        other.  Binding rejects that outright; if the previous owner has
        been garbage collected the cache is cleared and rebound.
        """
        with self._lock:
            if self._owner is not None:
                previous = self._owner()
                if previous is owner:
                    return
                if previous is not None:
                    raise KnowledgeGraphError(
                        "MatchListCache is already attached to a different "
                        "graph; use one cache per graph"
                    )
                self._entries.clear()  # old owner is gone, entries are orphans
                self._latest_version = None
            self._owner = weakref.ref(owner)

    def release(self, owner: object) -> None:
        """Detach from *owner* so the cache can serve another graph.

        Entries are cleared (they describe the old graph) but counters
        survive.  A no-op when the cache is bound to a different, still
        living owner — releasing someone else's binding would reroute
        their lookups.  Used by
        :meth:`repro.service.WorkloadRunner.apply_updates` when it wraps
        the served graph in a live overlay.
        """
        with self._lock:
            if self._owner is None:
                return
            previous = self._owner()
            if previous is None or previous is owner:
                self._entries.clear()
                self._latest_version = None
                self._owner = None

    # ------------------------------------------------------------------
    # MatchListCacheHook protocol
    # ------------------------------------------------------------------
    def get(self, key: PatternKey, version: int) -> MatchList | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            entry_version, match_list = entry
            if entry_version != version:
                # Built against another graph state: stale, drop it.
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return match_list

    def put(self, key: PatternKey, version: int, match_list: MatchList) -> None:
        with self._lock:
            if self._latest_version is None or version > self._latest_version:
                # First put at a newer graph version: eagerly sweep every
                # entry built against a superseded version instead of
                # letting them linger until LRU eviction or a stale get.
                if self._latest_version is not None:
                    self._purge_stale_locked(version)
                self._latest_version = version
            self._entries[key] = (version, match_list)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def purge_stale(self, current_version: int) -> int:
        """Eagerly drop every entry not built against *current_version*.

        Counted as invalidations (they are — the graph moved on), same
        as the lazy per-``get`` drops.  Returns how many entries went.
        Also called automatically by :meth:`put` on a version bump;
        explicit calls let a writer (e.g.
        :meth:`repro.service.WorkloadRunner.apply_updates`) reclaim the
        memory before any new list is built.
        """
        with self._lock:
            if self._latest_version is None or current_version > self._latest_version:
                self._latest_version = current_version
            return self._purge_stale_locked(current_version)

    def _purge_stale_locked(self, current_version: int) -> int:
        stale = [
            key
            for key, (version, _) in self._entries.items()
            if version != current_version
        ]
        for key in stale:
            del self._entries[key]
        self._invalidations += len(stale)
        return len(stale)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = 0
            self._evictions = self._invalidations = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"MatchListCache(size={s.size}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses}, hit_rate={s.hit_rate:.2f})"
        )
