"""Workload-scale batch execution: shared caches, worker pools, reports.

The single-query path (:class:`~repro.core.engine.SpecQPEngine`) answers
one query; this package serves *batches* through one shared substrate:

* :class:`MatchListCache` — bounded, thread-safe, version-aware LRU over
  score-sorted match lists, shared by every query of a batch.
* :class:`ResultCache` — the same discipline one level up: a versioned
  whole-answer top-k cache in front of both executors; a hit skips
  planning and execution entirely (see
  :mod:`repro.service.result_cache`).
* :class:`WorkloadRunner` — executes batches sequentially, on a thread
  pool (per-worker engines, shared catalog + cache), or on a *process*
  pool (``worker_model="process"``: every worker mmap-attaches one
  shared v2 snapshot — a single physical copy of the graph across all
  cores, see :mod:`repro.service.procpool`), warm or cold, and takes
  writes between batches (``apply_updates``: delta-overlay mutations
  behind a reader-writer gate, with version-driven cache and catalog
  invalidation — see :mod:`repro.kg.delta`; process workers receive the
  same writes by versioned delta shipping).
* :class:`WorkloadReport` — latency percentiles, queries/second, cache
  hit rates and the PLANGEN plan-decision mix for a batch.

Quickstart::

    from repro.datasets import XKGConfig, generate_xkg
    from repro.service import WorkloadRunner

    workload = generate_xkg(XKGConfig(n_entities=800, n_queries=24))
    runner = WorkloadRunner(workload, n_workers=4)
    report = runner.run(workload.stretched(100))
    print(report.render())
"""

from repro.service.cache import CacheStats, MatchListCache
from repro.service.report import QueryOutcome, WorkloadReport, percentile
from repro.service.result_cache import CachedResult, ResultCache, result_key
from repro.service.runner import WORKER_MODELS, WorkloadRunner

__all__ = [
    "CacheStats",
    "CachedResult",
    "MatchListCache",
    "QueryOutcome",
    "ResultCache",
    "WORKER_MODELS",
    "WorkloadReport",
    "WorkloadRunner",
    "percentile",
    "result_key",
]
