"""Batch execution of query workloads over one shared engine substrate.

The reproduction's single-query path builds everything per engine: the
statistics catalog, the shape indexes, the sorted match lists.  A serving
system executes *workloads* — hundreds of queries against one graph — so
those structures must be built once and shared.  :class:`WorkloadRunner`
owns that sharing:

* one :class:`~repro.stats.catalog.StatisticsCatalog`, built (and
  precomputed over the workload's patterns) once per graph version;
* one :class:`~repro.service.cache.MatchListCache` attached to the graph,
  so identical triple patterns across queries never re-sort;
* one plan cache: PLANGEN is deterministic given the catalog, so repeated
  queries (the normal case in served traffic) skip planning entirely;
* optionally a :class:`~concurrent.futures.ThreadPoolExecutor`, with one
  :class:`~repro.core.engine.SpecQPEngine` per worker thread (operator
  state is per-query, planner/executor objects per worker) over the shared
  catalog and cache.

``run(mode="cold")`` is the control: caches dropped and the catalog
rebuilt before every query, i.e. the per-query cost the single-query path
pays.  :meth:`compare` runs both and reports the speed-up.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Iterable, Literal, Sequence

from repro.core.config import EngineConfig
from repro.core.engine import QueryResult, SpecQPEngine
from repro.core.executor import (
    EXECUTOR_MODES,
    ExecutorKind,
    ExecutorMode,
    supports_block_execution,
)
from repro.datasets.workload import Workload
from repro.errors import ExperimentError
from repro.kg.delta import GraphUpdate, LiveGraph
from repro.kg.sharding import ShardedGraph, ShardStrategy
from repro.operators.block import EncodedListStore
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery
from repro.service.cache import DEFAULT_CAPACITY, CacheStats, MatchListCache
from repro.service.report import QueryOutcome, WorkloadReport
from repro.service.result_cache import (
    DEFAULT_RESULT_CAPACITY,
    CachedResult,
    ResultCache,
    result_key,
)
from repro.stats.catalog import StatisticsCatalog

CacheMode = Literal["warm", "cold"]

WorkerModel = Literal["thread", "process"]

#: Worker models ``WorkloadRunner`` accepts.
WORKER_MODELS: tuple[WorkerModel, ...] = ("thread", "process")

#: Updates the master ships per task before re-exporting a fresh
#: snapshot generation (bounds per-chunk pickling of the delta log).
REEXPORT_THRESHOLD = 10_000


class _BatchGate:
    """A writer-preferring reader-writer gate between batches and updates.

    Batches are readers (many at once), :meth:`WorkloadRunner.apply_updates`
    is the writer: it waits for every in-flight batch to finish on the old
    graph version, blocks new batches while it mutates, then lets them in
    on the new version — the epoch-swap discipline that keeps the "graph
    is static during a batch" serving contract intact under live writes.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextmanager
    def reader(self):
        with self._condition:
            while self._writing or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                self._condition.notify_all()

    @contextmanager
    def writer(self):
        with self._condition:
            self._writers_waiting += 1
            while self._readers or self._writing:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._condition:
                self._writing = False
                self._condition.notify_all()


def _release_fleet(state: dict) -> None:
    """Shut down a process fleet and remove its exported snapshots.

    Module-level (not a bound method) so ``weakref.finalize`` can hold it
    without keeping the runner alive.
    """
    fleet = state.get("fleet")
    if fleet is not None:
        fleet.shutdown(wait=False, cancel_futures=True)
        state["fleet"] = None
    directory = state.get("dir")
    if directory:
        shutil.rmtree(directory, ignore_errors=True)
        state["dir"] = None


class WorkloadRunner:
    """Executes batches of queries through one shared Spec-QP substrate.

    Parameters
    ----------
    workload:
        The graph + rules + default query set to serve.
    config:
        Engine knobs shared by all workers; defaults reproduce the paper.
    n_workers:
        Worker threads for ``mode="warm"`` batches.  ``1`` executes
        inline; higher values share the catalog and match-list cache
        across per-worker engines.  Cold mode is always sequential (it
        drops shared state between queries, which cannot race).
    cache_capacity:
        Entry bound of the shared :class:`MatchListCache`.
    plan_cache:
        Reuse PLANGEN decisions for structurally identical ``(query, k)``
        repeats.  Sound because planning only reads the (shared, warm)
        catalog; disable to force a fresh PLANGEN run per query.  Bounded
        to ``cache_capacity`` entries (LRU), like the match-list cache.
    shards:
        When >= 2, serve the workload from a
        :class:`~repro.kg.sharding.ShardedGraph` built over the
        workload's graph: every leaf scan becomes a lazy per-shard merge
        with threshold early termination, and each shard gets its own
        PR-1 match-list cache of ``cache_capacity // shards`` entries —
        *on top of* the shared merged-list cache, which keeps the full
        *cache_capacity*, so a sharded runner retains up to twice the
        budget in match lists.  Answers are identical to unsharded
        serving.
    shard_strategy:
        ``"hash-subject"`` or ``"score-range"``; ``"score-range"`` is
        the throughput choice for top-k workloads (cold shards are
        rarely materialised).
    compact_threshold:
        Passed to the :class:`~repro.kg.delta.LiveGraph` the first
        :meth:`apply_updates` call wraps the served graph in: the delta
        auto-compacts into a fresh base once it holds this many pending
        mutations (``None`` = only explicit compaction).
    executor:
        ``"tuple"``, ``"block"`` or ``"auto"`` — the execution strategy
        every worker engine uses (see
        :class:`~repro.core.engine.SpecQPEngine`).  ``"block"`` is the
        warm-throughput choice on columnar/sharded backends; ``"auto"``
        resolves tuple vs block *per query* with the catalog cost rule
        (:func:`~repro.core.planner.choose_executor`) — cache-resident
        short lists stream through the tuple pipeline, cold or long
        rebuilds vectorize — and records the mix in the report extras.
        Answers are byte-identical under all three.  The attribute is
        settable on a live runner (worker engines are rebuilt, and the
        plan cache keys on the executor kind, so toggling never replays
        state built for the other strategy); the setter takes the same
        writer gate as :meth:`apply_updates`, so it waits for in-flight
        batches — every batch runs, and is reported, under exactly one
        strategy.  Do not toggle from inside a batch.
    result_cache_capacity:
        Entry bound of the versioned whole-answer
        :class:`~repro.service.result_cache.ResultCache` in front of
        both executors: a warm repeat of ``(query, k)`` at an unchanged
        graph version skips planning and execution entirely.  ``0``
        disables result caching (every query executes).  Invalidation is
        driven by the graph's monotone version counter plus the
        :meth:`apply_updates` writer gate, so a cached hit is always an
        answer the current graph version would produce.
    worker_model:
        ``"thread"`` (default) serves warm batches on a GIL-sharing
        :class:`ThreadPoolExecutor`.  ``"process"`` serves them on a
        :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
        each mmap-attach **one shared v2 snapshot** of the graph
        (:meth:`~repro.kg.columnar.ColumnarStore.open_mmap`): a single
        physical copy of the columns across all workers, true multi-core
        execution, answers byte-identical to thread serving.  The fleet
        is created lazily on the first warm batch (exporting a snapshot
        to a temp directory unless the graph was itself loaded from a
        ``.kg2`` file, whose path is reused as-is); cold mode stays
        sequential in the master either way.  Live updates reach workers
        by versioned delta shipping — see :meth:`apply_updates` — and
        :meth:`close` (also a context manager) tears the fleet down.
    start_method:
        Multiprocessing start method for the fleet (``"fork"`` where the
        platform offers it, else ``"spawn"``).  Fork is the memory-
        sharing choice: workers also share the interpreter/module pages
        copy-on-write, not just the snapshot mmap.

    The runner assumes the graph is not mutated *during* a batch, and
    :meth:`apply_updates` enforces that: batches and update batches go
    through a reader-writer gate, so in-flight queries finish on the old
    graph version before the write lands and the version bump drives
    every invalidation (match-list cache sweep, plan cache clear,
    incremental catalog refresh).  External mutations between batches
    are still picked up automatically: the match-list cache is
    version-aware, and the catalog and plan cache are rebuilt when the
    graph version they were built against no longer matches.  Sharded
    runners snapshot the graph at construction time, so they serve the
    triples the workload held when the runner was built.
    """

    def __init__(
        self,
        workload: Workload,
        config: EngineConfig | None = None,
        n_workers: int = 1,
        cache_capacity: int = DEFAULT_CAPACITY,
        plan_cache: bool = True,
        shards: int = 1,
        shard_strategy: ShardStrategy = "score-range",
        compact_threshold: int | None = None,
        executor: ExecutorMode = "tuple",
        result_cache_capacity: int = DEFAULT_RESULT_CAPACITY,
        worker_model: WorkerModel = "thread",
        start_method: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ExperimentError(f"n_workers must be >= 1, got {n_workers}")
        if shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {shards}")
        if executor not in EXECUTOR_MODES:
            raise ExperimentError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_MODES}"
            )
        if worker_model not in WORKER_MODELS:
            raise ExperimentError(
                f"unknown worker model {worker_model!r}; "
                f"choose from {WORKER_MODELS}"
            )
        if result_cache_capacity < 0:
            raise ExperimentError(
                f"result_cache_capacity must be >= 0, got {result_cache_capacity}"
            )
        self.workload = workload
        self.config = config or EngineConfig()
        self.n_workers = n_workers
        self.shards = shards
        self.shard_strategy = shard_strategy
        if shards > 1:
            self._graph = ShardedGraph.from_graph(
                workload.graph,
                shards,
                strategy=shard_strategy,
                shard_cache_capacity=max(1, cache_capacity // shards),
            )
        else:
            self._graph = workload.graph
        self.cache = MatchListCache(cache_capacity)
        self.plan_cache = plan_cache
        self.compact_threshold = compact_threshold
        self._executor: ExecutorMode = executor
        #: The whole-answer cache in front of both executors (``None``
        #: when disabled).  Keys fold in the *plan signature* below, so
        #: an entry can only ever be replayed under the exact planning
        #: inputs that produced it.
        self.result_cache: ResultCache | None = (
            ResultCache(result_cache_capacity) if result_cache_capacity else None
        )
        # Everything besides (query, k, graph version) that determines
        # the answers: the rule set's content and the planner-relevant
        # config.  Rules and config are fixed for a runner's lifetime
        # (like the plan cache, the runner does not support mutating the
        # workload's RuleSet in place), so this is computed once.  The
        # executor is deliberately absent — answers are byte-identical
        # across pipelines, one entry serves them all.
        self._plan_signature = (
            frozenset(workload.rules),
            self.config,
        )
        #: The block twin of :attr:`cache`, shared by every worker
        #: engine: one bounded store of encoded (id-column) match lists,
        #: so a pattern is encoded once per graph version per runner.
        self.encoded_store = EncodedListStore(cache_capacity)
        self._plans: OrderedDict[object, object] = OrderedDict()
        self._plan_hits = 0
        self._plan_lock = threading.Lock()
        self._catalog: StatisticsCatalog | None = None
        self._catalog_version = -1
        self._local = threading.local()
        self._gate = _BatchGate()
        #: Process-model state (worker_model="process"): the fleet is a
        #: lazily created ProcessPoolExecutor whose workers mmap-attach
        #: one exported v2 snapshot; ``_proc_log`` is the update log of
        #: the current snapshot generation, shipped with every task.
        self.worker_model: WorkerModel = worker_model
        self.start_method = start_method
        self._fleet = None
        self._fleet_lock = threading.Lock()
        self._proc_generation = 0
        self._proc_snapshot: str | None = None
        self._proc_dir: str | None = None
        self._proc_log: list[GraphUpdate] = []
        # The GC backstop for close(): shuts the pool down and removes
        # the exported snapshots even if the runner is just dropped.
        self._fleet_state: dict = {"fleet": None, "dir": None}
        self._finalizer = weakref.finalize(self, _release_fleet, self._fleet_state)
        self._updates = {
            "update_batches": 0,
            "updates_applied": 0,
            "update_removes_absent": 0,
            "update_compactions": 0,
            "update_cache_purged": 0,
            "update_results_purged": 0,
            "update_seconds": 0.0,
        }

    @classmethod
    def from_scenario(
        cls, name: str, seed: int | None = None, **kwargs
    ) -> "WorkloadRunner":
        """A runner serving the named scenario pack.

        Builds the pack (``seed=None`` = its frozen default seed), serves
        ``pack.workload``, and defaults the engine ``k`` to the pack's
        ``k`` so edge-of-k packs (``adversarial-edge-k`` ships ``k=25``)
        exercise the regime they were generated for.  The pack itself is
        kept on the runner as :attr:`scenario` so callers can reach its
        update stream (``runner.apply_updates(list(pack.updates))``).
        """
        from repro.datasets.scenarios import build_scenario

        pack = build_scenario(name, seed=seed)
        if "config" not in kwargs:
            kwargs["config"] = EngineConfig(k=pack.k)
        runner = cls(pack.workload, **kwargs)
        runner.scenario = pack
        return runner

    # ------------------------------------------------------------------
    # Shared substrate
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The served graph — the workload's, or its sharded snapshot."""
        return self._graph

    @property
    def executor(self) -> ExecutorMode:
        """The execution strategy worker engines use (settable)."""
        return self._executor

    @executor.setter
    def executor(self, kind: ExecutorMode) -> None:
        if kind not in EXECUTOR_MODES:
            raise ExperimentError(
                f"unknown executor {kind!r}; choose from {EXECUTOR_MODES}"
            )
        # Take the writer side of the batch gate — the serialization
        # :meth:`apply_updates` uses: in-flight batches finish on the old
        # strategy (and report it in their extras) before the swap lands,
        # so a batch never mixes strategies or mislabels its results.
        # Consequently the toggle must not be issued from inside a batch
        # (it would wait for that batch to finish).
        with self._gate.writer():
            if kind != self._executor:
                self._executor = kind
                # Engines carry per-executor state (codec, encoded-list
                # cache); rebuild them lazily.  Cached plans stay valid —
                # their keys include the executor kind.
                self._local = threading.local()
                # Process workers are pinned to the spec's executor;
                # drop the fleet so the next batch respawns under the
                # new strategy (the exported snapshot is reused).
                with self._fleet_lock:
                    self._shutdown_fleet()

    @property
    def catalog(self) -> StatisticsCatalog:
        """The shared catalog, (re)built lazily per graph version."""
        if self._catalog is None or self._catalog_version != self.graph.version:
            self.warm_up()
        assert self._catalog is not None
        return self._catalog

    def warm_up(self, queries: Sequence[TriplePatternQuery] | None = None) -> float:
        """Build the catalog and precompute workload statistics.

        Returns the wall seconds spent — reported as ``warmup_seconds`` so
        throughput numbers stay honest about the offline phase.
        """
        queries = list(queries if queries is not None else self.workload.queries)
        started = time.perf_counter()
        self.graph.attach_match_list_cache(self.cache)
        self._catalog = StatisticsCatalog(
            self.graph,
            mass_fraction=self.config.mass_fraction,
            histogram_kind=self.config.histogram_kind,  # type: ignore[arg-type]
            n_buckets=self.config.n_buckets,
            selectivity_mode=self.config.selectivity_mode,  # type: ignore[arg-type]
        )
        self._catalog.precompute(queries=queries)
        if self._pre_encodes_blocks():
            # The block twin of the precompute above: encode the
            # workload's patterns into the shared store up front, so the
            # first measured batch starts as warm as the tuple path
            # (whose string lists the catalog precompute just built).
            for pattern in {p for query in queries for p in query.patterns}:
                self.encoded_store.get_or_build(self.graph, pattern)
        self._catalog_version = self.graph.version
        self._plans.clear()
        self._local = threading.local()  # engines built on the old catalog die
        return time.perf_counter() - started

    def _pre_encodes_blocks(self) -> bool:
        """Whether warm-up should pre-encode the workload's patterns.

        Gated on the *effective* executor: a runner pinned to
        ``"tuple"`` never touches the block pipeline, so pre-encoding
        would only inflate ``warmup_seconds`` for lists no query reads.
        ``"block"`` and ``"auto"`` (which may route any query through
        the block pipeline) pre-encode whenever the backend supports
        block execution at all.
        """
        return self._executor in ("block", "auto") and supports_block_execution(
            self.graph
        )

    def _worker_engine(self) -> SpecQPEngine:
        """The calling thread's engine over the shared catalog and cache."""
        engine = getattr(self._local, "engine", None)
        if engine is None:
            engine = SpecQPEngine(
                self.graph,
                self.workload.rules,
                self.config,
                catalog=self.catalog,
                match_list_cache=self.cache,
                executor=self._executor,
                encoded_store=self.encoded_store,
            )
            self._local.engine = engine
        return engine

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        queries: Sequence[TriplePatternQuery] | None = None,
        k: int | None = None,
        mode: CacheMode = "warm",
    ) -> WorkloadReport:
        """Execute *queries* (default: the workload's set) end to end."""
        queries = list(queries if queries is not None else self.workload.queries)
        if not queries:
            raise ExperimentError("cannot run an empty batch")
        if mode not in ("warm", "cold"):
            raise ExperimentError(f"unknown cache mode {mode!r}")
        k = k or self.config.k

        with self._gate.reader():
            if mode == "cold":
                return self._run_cold(queries, k)
            return self._run_warm(queries, k)

    def _run_warm(
        self, queries: Sequence[TriplePatternQuery], k: int
    ) -> WorkloadReport:
        if self.worker_model == "process":
            return self._run_warm_process(queries, k)
        warmup_seconds = 0.0
        if self._catalog is None or self._catalog_version != self.graph.version:
            warmup_seconds = self.warm_up(queries)
        else:
            self.graph.attach_match_list_cache(self.cache)
        stats_before = self.cache.stats()
        plan_hits_before = self._plan_hits
        result_before = (
            self.result_cache.stats() if self.result_cache is not None else None
        )
        encoded_before = (
            self.encoded_store.stats()
            if self._executor in ("block", "auto")
            else None
        )
        shard_stats_before = (
            self.graph.shard_cache_stats() if self.shards > 1 else None
        )

        started = time.perf_counter()
        if self.n_workers == 1:
            outcomes = [self._execute_warm(q, k) for q in queries]
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                outcomes = list(pool.map(lambda q: self._execute_warm(q, k), queries))
        wall = time.perf_counter() - started

        extras: dict[str, object] = {
            "executor": self._executor,
            "plan_cache_hits": self._plan_hits - plan_hits_before,
            "plan_cache_size": len(self._plans),
        }
        if self._executor == "auto":
            # Per-query cost-rule decisions, recounted from the outcomes
            # themselves (each row records which pipeline served it), so
            # the mix needs no extra locking on the hot path.
            mix = {"tuple": 0, "block": 0, "cached": 0}
            for outcome in outcomes:
                if outcome.executor in mix:
                    mix[outcome.executor] += 1
            extras["auto_executor_mix"] = mix
        if result_before is not None:
            result_delta = self.result_cache.stats().since(result_before)
            extras["result_cache_hits"] = result_delta.hits
            extras["result_cache_misses"] = result_delta.misses
            extras["result_cache_size"] = result_delta.size
        if encoded_before is not None:
            encoded_after = self.encoded_store.stats()
            extras["encoded_list_hits"] = (
                encoded_after["hits"] - encoded_before["hits"]
            )
            extras["encoded_list_misses"] = (
                encoded_after["misses"] - encoded_before["misses"]
            )
        if self._updates["update_batches"]:
            extras.update(self.update_stats)
            extras["graph_version"] = self.graph.version
        if shard_stats_before is not None:
            shard_delta = self._stats_delta(
                shard_stats_before, self.graph.shard_cache_stats()
            )
            extras["shards"] = self.shards
            extras["shard_strategy"] = self.shard_strategy
            extras["shard_cache_hits"] = shard_delta.hits
            extras["shard_cache_misses"] = shard_delta.misses

        return WorkloadReport(
            outcomes=tuple(outcomes),
            wall_seconds=wall,
            n_workers=self.n_workers,
            mode="warm",
            cache=self._stats_delta(stats_before, self.cache.stats()),
            warmup_seconds=warmup_seconds,
            dataset=self.workload.name,
            extras=extras,
        )

    def _run_cold(
        self, queries: Sequence[TriplePatternQuery], k: int
    ) -> WorkloadReport:
        """Per-query rebuild of every shared structure (the control)."""
        self.graph.detach_match_list_cache()
        outcomes = []
        started = time.perf_counter()
        for query in queries:
            self.graph.invalidate_caches()
            engine = SpecQPEngine(
                self.graph, self.workload.rules, self.config,
                executor=self._executor,
            )
            outcomes.append(self._execute(engine, query, k))
        wall = time.perf_counter() - started
        self.graph.invalidate_caches()
        return WorkloadReport(
            outcomes=tuple(outcomes),
            wall_seconds=wall,
            n_workers=1,
            mode="cold",
            cache=None,
            dataset=self.workload.name,
        )

    # ------------------------------------------------------------------
    # Process-model serving (worker_model="process")
    # ------------------------------------------------------------------
    def _ensure_fleet(self) -> float:
        """Create the process fleet lazily; returns the seconds it took.

        Exports a v2 snapshot of the served graph unless the graph was
        itself attached from a ``.kg2`` file (then that file is shared
        as-is, zero copies anywhere).  Workers attach the snapshot in
        their initializer-built runner on first task.  Thread-safe: warm
        batches run concurrently and must agree on one fleet.
        """
        with self._fleet_lock:
            if self._fleet is not None:
                return 0.0
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            from repro.kg.storage import save_snapshot_v2
            from repro.service import procpool

            started = time.perf_counter()
            if self._proc_snapshot is None:
                source = getattr(
                    getattr(self.workload.graph, "store", None), "source_path", None
                )
                if source and not self._proc_log and os.path.exists(source):
                    self._proc_snapshot = source
                else:
                    self._proc_dir = tempfile.mkdtemp(prefix="spec-qp-fleet-")
                    self._fleet_state["dir"] = self._proc_dir
                    path = os.path.join(
                        self._proc_dir, f"snapshot-g{self._proc_generation}.kg2"
                    )
                    # Export the *current* merged state: the pristine
                    # workload graph normally, the live overlay's merged
                    # view if updates landed before the fleet existed —
                    # either way the log restarts empty.
                    graph = (
                        self._graph
                        if isinstance(self._graph, LiveGraph)
                        else self.workload.graph
                    )
                    save_snapshot_v2(graph, path)
                    self._proc_snapshot = path
                    self._proc_log.clear()
            spec = procpool.WorkerSpec(
                graph_name=self.workload.graph.name,
                rules=self.workload.rules,
                config=self.config,
                cache_capacity=self.cache.capacity,
                plan_cache=self.plan_cache,
                shards=self.shards,
                shard_strategy=self.shard_strategy,
                executor=self._executor,
                warm_queries=tuple(self.workload.queries),
            )
            methods = multiprocessing.get_all_start_methods()
            method = self.start_method or (
                "fork" if "fork" in methods else "spawn"
            )
            self._fleet = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context(method),
                initializer=procpool._init_worker,
                initargs=(spec,),
            )
            self._fleet_state["fleet"] = self._fleet
            return time.perf_counter() - started

    def _shutdown_fleet(self) -> None:
        """Stop the worker processes (snapshots stay; respawn is lazy)."""
        if self._fleet is not None:
            self._fleet.shutdown(wait=True, cancel_futures=True)
            self._fleet = None
            self._fleet_state["fleet"] = None

    def _reexport_snapshot(self) -> None:
        """Fold the update log into a fresh snapshot generation.

        Called under the writer gate once the log crosses
        :data:`REEXPORT_THRESHOLD`: writes the merged current state as
        ``snapshot-g{N+1}.kg2``, clears the log, and drops the previous
        exported file (workers still mapping it keep serving — a POSIX
        unlink only detaches the name — and re-attach on their next
        task, which names the new generation).
        """
        from repro.kg.storage import save_snapshot_v2

        if self._proc_dir is None:
            self._proc_dir = tempfile.mkdtemp(prefix="spec-qp-fleet-")
            self._fleet_state["dir"] = self._proc_dir
        previous = self._proc_snapshot
        self._proc_generation += 1
        path = os.path.join(
            self._proc_dir, f"snapshot-g{self._proc_generation}.kg2"
        )
        save_snapshot_v2(self._graph, path)
        self._proc_snapshot = path
        self._proc_log.clear()
        if previous and previous.startswith(self._proc_dir):
            try:
                os.unlink(previous)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _run_warm_process(
        self, queries: Sequence[TriplePatternQuery], k: int
    ) -> WorkloadReport:
        """Warm batch over the process fleet, order and answers preserved.

        The master fronts the fleet with the result cache (hits never
        cross a process boundary), splits the misses into contiguous
        chunks, and stamps every task with the same
        ``(generation, log length)`` pair — the cross-process version
        barrier: a worker serves a chunk only after replaying exactly
        that log prefix, so one batch is answered at one graph version
        everywhere, mirroring the in-process writer-gate contract.
        """
        from repro.service import procpool

        warmup_seconds = self._ensure_fleet()
        result_before = (
            self.result_cache.stats() if self.result_cache is not None else None
        )
        n_queries = len(queries)
        outcomes: list[QueryOutcome | None] = [None] * n_queries
        answers: list[tuple[Answer, ...] | None] = [None] * n_queries
        version = self.graph.version
        rkeys: list[object | None] = [None] * n_queries
        misses = list(range(n_queries))

        started = time.perf_counter()
        if self.result_cache is not None:
            misses = []
            for index, query in enumerate(queries):
                rkey = result_key(query, k, self._plan_signature)
                rkeys[index] = rkey
                cached = self.result_cache.get(rkey, version)
                if cached is None:
                    misses.append(index)
                    continue
                outcomes[index] = self._cached_outcome(query, k, cached, started)
                answers[index] = cached.answers
        chunk_results = []
        if misses:
            log = tuple(self._proc_log)
            bounds = procpool.make_chunks(len(misses), self.n_workers)
            tasks = [
                procpool.ChunkTask(
                    generation=self._proc_generation,
                    snapshot_path=self._proc_snapshot,  # type: ignore[arg-type]
                    log=log,
                    log_len=len(log),
                    queries=tuple(queries[i] for i in misses[start:stop]),
                    k=k,
                )
                for start, stop in bounds
            ]
            futures = [
                self._fleet.submit(procpool.run_chunk, task) for task in tasks
            ]
            for (start, stop), future in zip(bounds, futures):
                result = future.result()
                chunk_results.append(result)
                for offset, index in enumerate(misses[start:stop]):
                    outcomes[index] = result.outcomes[offset]
                    answers[index] = result.answers[offset]
                    if self.result_cache is not None:
                        self.result_cache.put(
                            rkeys[index],
                            version,
                            CachedResult(
                                answers=result.answers[offset],
                                n_relaxed=result.outcomes[offset].n_relaxed,
                                plan=result.outcomes[offset].plan,
                                executor=result.outcomes[offset].executor,
                            ),
                        )
        wall = time.perf_counter() - started

        extras: dict[str, object] = {
            "executor": self._executor,
            "worker_model": "process",
            "process_generation": self._proc_generation,
            "process_workers_used": len({r.pid for r in chunk_results}),
            "process_worker_pids": sorted({r.pid for r in chunk_results}),
            "process_chunks": len(chunk_results),
            # The versions workers actually served at — the no-mixed-
            # versions oracle: one batch must report at most one entry.
            "process_graph_versions": sorted(
                {r.graph_version for r in chunk_results}
            ),
            "process_attach_seconds": sum(r.attach_seconds for r in chunk_results),
            "plan_cache_hits": sum(r.plan_hits for r in chunk_results),
        }
        if self._executor == "auto":
            mix = {"tuple": 0, "block": 0, "cached": 0}
            for outcome in outcomes:
                if outcome is not None and outcome.executor in mix:
                    mix[outcome.executor] += 1
            extras["auto_executor_mix"] = mix
        if result_before is not None:
            result_delta = self.result_cache.stats().since(result_before)
            extras["result_cache_hits"] = result_delta.hits
            extras["result_cache_misses"] = result_delta.misses
            extras["result_cache_size"] = result_delta.size
        if self._updates["update_batches"]:
            extras.update(self.update_stats)
            extras["graph_version"] = self.graph.version
        if self.shards > 1:
            extras["shards"] = self.shards
            extras["shard_strategy"] = self.shard_strategy

        return WorkloadReport(
            outcomes=tuple(outcomes),  # type: ignore[arg-type]
            wall_seconds=wall,
            n_workers=self.n_workers,
            mode="warm",
            cache=None,  # match-list caches live in the workers
            warmup_seconds=warmup_seconds,
            dataset=self.workload.name,
            extras=extras,
        )

    @staticmethod
    def _cached_outcome(
        query: TriplePatternQuery, k: int, cached: CachedResult, started: float
    ) -> QueryOutcome:
        return QueryOutcome(
            query_name=query.name or str(query),
            k=k,
            n_patterns=len(query),
            seconds=time.perf_counter() - started,
            n_answers=len(cached.answers),
            n_relaxed=cached.n_relaxed,
            plan=cached.plan,
            top_score=cached.answers[0].score if cached.answers else 0.0,
            executor="cached",
        )

    def _serve_query_locally(
        self, query: TriplePatternQuery, k: int
    ) -> tuple[QueryOutcome, tuple[Answer, ...]]:
        """Warm-path single query without the gate — the process-worker
        hot path (a worker's runner is single-owner, so the batch gate
        and the reader lock are the master's concern, not the worker's)."""
        if self._catalog is None or self._catalog_version != self.graph.version:
            self.warm_up()
        else:
            self.graph.attach_match_list_cache(self.cache)
        return self._serve_warm(query, k)

    def close(self) -> None:
        """Tear down the process fleet and its exported snapshots.

        Idempotent; a no-op for thread runners.  The runner stays
        usable — the next process batch re-exports and respawns.
        """
        with self._fleet_lock:
            self._shutdown_fleet()
            if self._proc_dir is not None:
                shutil.rmtree(self._proc_dir, ignore_errors=True)
                self._fleet_state["dir"] = None
                self._proc_dir = None
            self._proc_snapshot = None

    def __enter__(self) -> "WorkloadRunner":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def execute_query(
        self, query: TriplePatternQuery, k: int | None = None
    ) -> tuple[Answer, ...]:
        """One query through the full warm substrate, answers included.

        The single-query twin of ``run(mode="warm")``: same reader gate,
        same result cache, plan cache and per-worker engine — but the
        return value is the complete top-k answer tuple rather than a
        report row, which is what equivalence tests and callers that
        need the bindings themselves want.
        """
        k = k or self.config.k
        with self._gate.reader():
            if self.worker_model == "process":
                return self._execute_query_process(query, k)
            if self._catalog is None or self._catalog_version != self.graph.version:
                self.warm_up()
            else:
                self.graph.attach_match_list_cache(self.cache)
            return self._serve_warm(query, k)[1]

    def _execute_query_process(
        self, query: TriplePatternQuery, k: int
    ) -> tuple[Answer, ...]:
        """Single query through the fleet: a one-query chunk, cache-fronted."""
        from repro.service import procpool

        self._ensure_fleet()
        version = self.graph.version
        rkey = None
        if self.result_cache is not None:
            rkey = result_key(query, k, self._plan_signature)
            cached = self.result_cache.get(rkey, version)
            if cached is not None:
                return cached.answers
        log = tuple(self._proc_log)
        task = procpool.ChunkTask(
            generation=self._proc_generation,
            snapshot_path=self._proc_snapshot,  # type: ignore[arg-type]
            log=log,
            log_len=len(log),
            queries=(query,),
            k=k,
        )
        result = self._fleet.submit(procpool.run_chunk, task).result()
        if rkey is not None:
            outcome = result.outcomes[0]
            self.result_cache.put(
                rkey,
                version,
                CachedResult(
                    answers=result.answers[0],
                    n_relaxed=outcome.n_relaxed,
                    plan=outcome.plan,
                    executor=outcome.executor,
                ),
            )
        return result.answers[0]

    def _execute_warm(self, query: TriplePatternQuery, k: int) -> QueryOutcome:
        return self._serve_warm(query, k)[0]

    def _serve_warm(
        self, query: TriplePatternQuery, k: int
    ) -> tuple[QueryOutcome, tuple[Answer, ...]]:
        """One query over the shared substrate, through every cache level.

        Checked in cost order: the whole-answer result cache first (a
        hit skips planning and execution entirely), then the plan cache
        (structurally identical queries — names aside, order aside,
        queries have set semantics — share one PLANGEN decision; the
        cached plan carries its own query object with the same patterns
        and projection, so execution is unaffected), then execution
        through the executor the runner is pinned to — or, in ``"auto"``
        mode, the one the cost rule picked when the plan-cache entry was
        built (resolution rides the plan cache, so a steady-state repeat
        pays nothing for the choice; every invalidation that clears the
        plan cache re-runs the rule against the new cache state).
        """
        engine = self._worker_engine()
        started = time.perf_counter()
        rkey = None
        version = 0
        if self.result_cache is not None:
            # Capture the version BEFORE doing any work: if a writer
            # lands mid-flight (impossible through apply_updates, which
            # waits out the batch, but possible for external mutators),
            # the put below tags the entry with the superseded version
            # and the next get discards it — stale answers cannot stick.
            version = self.graph.version
            rkey = result_key(query, k, self._plan_signature)
            cached = self.result_cache.get(rkey, version)
            if cached is not None:
                seconds = time.perf_counter() - started
                outcome = QueryOutcome(
                    query_name=query.name or str(query),
                    k=k,
                    n_patterns=len(query),
                    seconds=seconds,
                    n_answers=len(cached.answers),
                    n_relaxed=cached.n_relaxed,
                    plan=cached.plan,
                    top_score=cached.top_score,
                    executor="cached",
                )
                return outcome, cached.answers
        plan = None
        kind: ExecutorKind | None = None
        if self.plan_cache:
            # The executor *mode* is part of the key: plans are built per
            # strategy, so toggling ``executor=`` on a shared runner can
            # never replay a plan cached for the other pipeline.  The
            # entry carries the resolved concrete kind alongside the
            # plan: in ``"auto"`` mode the cost rule runs once per entry
            # (per plan-cache generation — updates clear it), so steady
            # state repeats pay nothing for the per-query choice.
            key = (frozenset(query.patterns), query.projection, k, self._executor)
            with self._plan_lock:
                entry = self._plans.get(key)
                if entry is not None:
                    plan, kind = entry
                    self._plans.move_to_end(key)
                    self._plan_hits += 1
        if plan is None:
            kind = engine.resolve_executor(query).executor
            plan = engine.planner.plan(query, k).plan
            if self.plan_cache:
                with self._plan_lock:
                    self._plans[key] = (plan, kind)
                    self._plans.move_to_end(key)
                    while len(self._plans) > self.cache.capacity:
                        self._plans.popitem(last=False)
        execution = engine.executor.execute(plan, k, executor=kind)
        if rkey is not None:
            self.result_cache.put(
                rkey,
                version,
                CachedResult(
                    answers=execution.answers,
                    n_relaxed=plan.n_relaxed,  # type: ignore[union-attr]
                    plan=plan.describe(),  # type: ignore[union-attr]
                    executor=str(kind),
                ),
            )
        seconds = time.perf_counter() - started
        outcome = QueryOutcome(
            query_name=query.name or str(query),
            k=k,
            n_patterns=len(query),
            seconds=seconds,
            n_answers=len(execution.answers),
            n_relaxed=plan.n_relaxed,  # type: ignore[union-attr]
            plan=plan.describe(),  # type: ignore[union-attr]
            top_score=execution.answers[0].score if execution.answers else 0.0,
            executor=str(kind),
        )
        return outcome, execution.answers

    @staticmethod
    def _execute(engine: SpecQPEngine, query: TriplePatternQuery, k: int) -> QueryOutcome:
        result: QueryResult = engine.query(query, k)
        return QueryOutcome(
            query_name=query.name or str(query),
            k=k,
            n_patterns=len(query),
            seconds=result.total_seconds,
            n_answers=len(result.answers),
            n_relaxed=result.plan.n_relaxed,
            plan=result.plan.describe(),
            top_score=result.answers[0].score if result.answers else 0.0,
            executor=str(engine.executor_kind),
        )

    # ------------------------------------------------------------------
    # Live updates (the write path)
    # ------------------------------------------------------------------
    def apply_updates(
        self,
        updates: Iterable[GraphUpdate],
        compact: bool = False,
    ) -> dict[str, object]:
        """Apply a batch of mutations to the served graph, coherently.

        Takes the writer side of the batch gate (in-flight query batches
        finish on the old graph version first), wraps the served graph in
        a :class:`~repro.kg.delta.LiveGraph` on first use, applies the
        batch, and drives every invalidation off the resulting version
        bump: the shared match-list cache is eagerly swept
        (:meth:`~repro.service.cache.MatchListCache.purge_stale`), the
        plan cache is cleared, and the statistics catalog is refreshed
        incrementally (:meth:`~repro.stats.catalog.StatisticsCatalog.refresh`)
        instead of rebuilt.  Pass ``compact=True`` to fold the delta into
        a fresh base afterwards (the runner's ``compact_threshold`` also
        triggers this automatically).

        Returns the per-batch counters; cumulative totals appear in the
        next :class:`~repro.service.report.WorkloadReport` extras and in
        :attr:`update_stats`.
        """
        batch = list(updates)
        with self._gate.writer():
            started = time.perf_counter()
            if not isinstance(self._graph, LiveGraph):
                frozen = self._graph
                # The cache is bound to the frozen graph; hand it to the
                # live wrapper (its entries describe the superseded view).
                frozen.detach_match_list_cache()
                self.cache.release(frozen)
                self.encoded_store.release(frozen)
                if self.result_cache is not None:
                    # Entries describe the frozen graph object; the live
                    # wrapper continues its version counter, so only a
                    # full clear (not a version sweep) is safe here.
                    self.result_cache.clear()
                self._graph = LiveGraph(
                    frozen, compact_threshold=self.compact_threshold
                )
                self._graph.attach_match_list_cache(self.cache)
                # Catalog and engines were built over the frozen graph
                # object; the next batch warms up over the live wrapper.
                self._catalog = None
                self._catalog_version = -1
                self._local = threading.local()
            live = self._graph
            compactions_before = live.compactions
            counts = live.apply_updates(batch)
            if compact:
                live.compact()
            purged = self.cache.purge_stale(live.version)
            results_purged = (
                self.result_cache.purge_stale(live.version)
                if self.result_cache is not None
                else 0
            )
            with self._plan_lock:
                self._plans.clear()
            if self._catalog is not None:
                self._catalog.refresh()
                self._catalog_version = live.version
            seconds = time.perf_counter() - started
            result: dict[str, object] = {
                **counts,
                "compacted": live.compactions > compactions_before,
                "cache_purged": purged,
                "result_cache_purged": results_purged,
                "seconds": seconds,
                "graph_version": live.version,
            }
            self._updates["update_batches"] += 1
            self._updates["updates_applied"] += counts["adds"] + counts["removes"]
            self._updates["update_removes_absent"] += counts["absent_removes"]
            self._updates["update_compactions"] = live.compactions
            self._updates["update_cache_purged"] += purged
            self._updates["update_results_purged"] += results_purged
            self._updates["update_seconds"] += seconds
            if self.worker_model == "process":
                # Versioned delta shipping: the next batch stamps its
                # tasks with this log's length, and workers replay that
                # exact prefix before serving — still under the writer
                # gate here, so no batch observes a half-appended log.
                self._proc_log.extend(batch)
                if (
                    self._proc_snapshot is not None
                    and len(self._proc_log) >= REEXPORT_THRESHOLD
                ):
                    self._reexport_snapshot()
            return result

    @property
    def update_stats(self) -> dict[str, object]:
        """Cumulative live-update counters since the runner was built."""
        return dict(self._updates)

    # ------------------------------------------------------------------
    def compare(
        self,
        queries: Sequence[TriplePatternQuery] | None = None,
        k: int | None = None,
    ) -> dict[str, WorkloadReport | float]:
        """Cold batch, then warm batch; returns both plus the speed-up."""
        cold = self.run(queries, k, mode="cold")
        warm = self.run(queries, k, mode="warm")
        speedup = (
            warm.queries_per_second / cold.queries_per_second
            if cold.queries_per_second
            else float("inf")
        )
        return {"cold": cold, "warm": warm, "speedup": speedup}

    @staticmethod
    def _stats_delta(before: CacheStats, after: CacheStats) -> CacheStats:
        """Cache counters attributable to this batch alone."""
        return after.since(before)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sharding = (
            f", shards={self.shards} ({self.shard_strategy})"
            if self.shards > 1
            else ""
        )
        return (
            f"WorkloadRunner({self.workload.name!r}, "
            f"n_workers={self.n_workers}{sharding}, "
            f"executor={self._executor!r}, cache={self.cache!r})"
        )
