"""Spec-QP — speculative query planning for top-k joins over scored
knowledge graphs.

Reproduction of Mohanty, Ramanath, Yahya & Weikum, *Spec-QP: Speculative
Query Planning for Joins over Knowledge Graphs* (EDBT 2019).

Quickstart (complete and copy-pasteable)::

    from repro import (
        KnowledgeGraph, RelaxationRule, RuleSet, SpecQPEngine,
        TriplePattern, Variable,
    )

    kg = KnowledgeGraph()
    kg.add("shakira", "rdf:type", "singer", score=120)
    kg.add("shakira", "rdf:type", "lyricist", score=90)
    kg.add("freddie", "rdf:type", "vocalist", score=115)
    kg.add("freddie", "rdf:type", "lyricist", score=80)
    kg.add("dylan", "rdf:type", "singer", score=70)
    kg.add("dylan", "rdf:type", "lyricist", score=100)

    s = Variable("s")
    rules = RuleSet()
    rules.add(RelaxationRule(
        TriplePattern(s, "rdf:type", "singer"),
        TriplePattern(s, "rdf:type", "vocalist"),
        weight=0.8,
    ))

    engine = SpecQPEngine(kg, rules)
    result = engine.query(
        "SELECT ?s WHERE { ?s 'rdf:type' <singer>. ?s 'rdf:type' <lyricist> }",
        k=3,
    )
    for answer in result.answers:
        print(answer.as_dict()["s"], round(answer.score, 3))

Batches of queries are served through :class:`repro.service.WorkloadRunner`,
which shares the statistics catalog and a match-list LRU across the whole
workload — see ``docs/api.md`` for the full public surface.
"""

from repro.baselines import NaiveEngine, TriniTEngine
from repro.core import (
    EngineConfig,
    ExpectedScoreEstimator,
    QueryPlan,
    QueryResult,
    SpecQPEngine,
    SpecQPPlanner,
)
from repro.kg import KnowledgeGraph, Triple, TriplePattern, Variable
from repro.query import Answer, TriplePatternQuery, parse_sparql
from repro.relax import RelaxationRule, RuleSet
from repro.service import MatchListCache, WorkloadReport, WorkloadRunner
from repro.stats import StatisticsCatalog, TwoBucketHistogram

__version__ = "1.1.0"

__all__ = [
    "Answer",
    "EngineConfig",
    "ExpectedScoreEstimator",
    "KnowledgeGraph",
    "MatchListCache",
    "NaiveEngine",
    "QueryPlan",
    "QueryResult",
    "RelaxationRule",
    "RuleSet",
    "SpecQPEngine",
    "SpecQPPlanner",
    "StatisticsCatalog",
    "TriniTEngine",
    "Triple",
    "TriplePattern",
    "TriplePatternQuery",
    "TwoBucketHistogram",
    "Variable",
    "WorkloadReport",
    "WorkloadRunner",
    "parse_sparql",
    "__version__",
]
