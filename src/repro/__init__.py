"""Spec-QP — speculative query planning for top-k joins over scored
knowledge graphs.

Reproduction of Mohanty, Ramanath, Yahya & Weikum, *Spec-QP: Speculative
Query Planning for Joins over Knowledge Graphs* (EDBT 2019).

Quickstart::

    from repro import KnowledgeGraph, RuleSet, SpecQPEngine, parse_sparql

    kg = KnowledgeGraph()
    kg.add("shakira", "rdf:type", "singer", score=120)
    ...
    engine = SpecQPEngine(kg, rules)
    result = engine.query("SELECT ?s WHERE { ?s 'rdf:type' <singer> }", k=10)
"""

from repro.baselines import NaiveEngine, TriniTEngine
from repro.core import (
    EngineConfig,
    ExpectedScoreEstimator,
    QueryPlan,
    QueryResult,
    SpecQPEngine,
    SpecQPPlanner,
)
from repro.kg import KnowledgeGraph, Triple, TriplePattern, Variable
from repro.query import Answer, TriplePatternQuery, parse_sparql
from repro.relax import RelaxationRule, RuleSet
from repro.stats import StatisticsCatalog, TwoBucketHistogram

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "EngineConfig",
    "ExpectedScoreEstimator",
    "KnowledgeGraph",
    "NaiveEngine",
    "QueryPlan",
    "QueryResult",
    "RelaxationRule",
    "RuleSet",
    "SpecQPEngine",
    "SpecQPPlanner",
    "StatisticsCatalog",
    "TriniTEngine",
    "Triple",
    "TriplePattern",
    "TriplePatternQuery",
    "TwoBucketHistogram",
    "Variable",
    "parse_sparql",
    "__version__",
]
