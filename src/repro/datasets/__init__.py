"""Synthetic dataset substrate (the §4.2 substitution).

The paper evaluates on two proprietary/at-scale corpora; we generate
synthetic stand-ins that preserve the properties Spec-QP's behaviour
depends on — power-law score distributions, rich mined relaxation spaces,
and (for Twitter) the sparse-match regime where every pattern needs
relaxing.  See DESIGN.md §3 for the substitution rationale.

* :func:`~repro.datasets.xkg.generate_xkg` — XKG-like KG + 65-query workload.
* :func:`~repro.datasets.twitter.generate_twitter` — tweet KG + 50 queries.
* :class:`~repro.datasets.workload.Workload` — the bundle experiments run.
"""

from repro.datasets.twitter import TwitterConfig, generate_twitter
from repro.datasets.workload import Workload
from repro.datasets.xkg import XKGConfig, generate_xkg

__all__ = [
    "TwitterConfig",
    "Workload",
    "XKGConfig",
    "generate_twitter",
    "generate_xkg",
]
