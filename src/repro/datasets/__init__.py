"""Synthetic dataset substrate (the §4.2 substitution).

The paper evaluates on two proprietary/at-scale corpora; we generate
synthetic stand-ins that preserve the properties Spec-QP's behaviour
depends on — power-law score distributions, rich mined relaxation spaces,
and (for Twitter) the sparse-match regime where every pattern needs
relaxing.  See DESIGN.md §3 for the substitution rationale.

* :func:`~repro.datasets.xkg.generate_xkg` — XKG-like KG + 65-query workload.
* :func:`~repro.datasets.twitter.generate_twitter` — tweet KG + 50 queries.
* :class:`~repro.datasets.workload.Workload` — the bundle experiments run.
* :func:`~repro.datasets.synthetic.generate_scaled_graph` — columnar
  scale-test graphs up to the :data:`~repro.datasets.synthetic.SCALE_PROFILES`
  ``million`` profile (storage benchmarks, no query workload).
* :func:`~repro.datasets.scenarios.build_scenario` — named, seed-deterministic
  :class:`~repro.datasets.scenarios.ScenarioPack` coverage workloads
  (four domains × intents × augmentation, incl. adversarial shapes).
"""

from repro.datasets.scenarios import (
    SCENARIOS,
    ScenarioPack,
    ScenarioSpec,
    build_all_scenarios,
    build_scenario,
    scenario_names,
)
from repro.datasets.synthetic import SCALE_PROFILES, ScaleProfile, generate_scaled_graph
from repro.datasets.twitter import TwitterConfig, generate_twitter
from repro.datasets.workload import Workload
from repro.datasets.xkg import XKGConfig, generate_xkg

__all__ = [
    "SCALE_PROFILES",
    "SCENARIOS",
    "ScaleProfile",
    "ScenarioPack",
    "ScenarioSpec",
    "TwitterConfig",
    "Workload",
    "XKGConfig",
    "build_all_scenarios",
    "build_scenario",
    "generate_scaled_graph",
    "generate_twitter",
    "generate_xkg",
    "scenario_names",
]
