"""The workload bundle experiments run against.

A :class:`Workload` packages a generated KG, its mined relaxation rules
and a named query set, plus light self-validation mirroring the paper's
workload constraints (non-empty result sets, minimum relaxations per
pattern).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import DatasetError
from repro.kg.graph import KnowledgeGraph
from repro.query.query import TriplePatternQuery
from repro.relax.rules import RuleSet


@dataclass
class Workload:
    """A dataset + rule set + query set, ready for the harness."""

    name: str
    graph: KnowledgeGraph
    rules: RuleSet
    queries: list[TriplePatternQuery] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.queries:
            raise DatasetError(f"workload {self.name!r} has no queries")
        names = [q.name for q in self.queries]
        if len(set(names)) != len(names):
            raise DatasetError(f"workload {self.name!r} has duplicate query names")

    # ------------------------------------------------------------------
    def queries_by_size(self) -> dict[int, list[TriplePatternQuery]]:
        """Group queries by number of triple patterns (the figures' x-axis)."""
        grouped: dict[int, list[TriplePatternQuery]] = {}
        for query in self.queries:
            grouped.setdefault(len(query), []).append(query)
        return dict(sorted(grouped.items()))

    # ------------------------------------------------------------------
    # Batch iteration (the service layer's input shapes)
    # ------------------------------------------------------------------
    def iter_batches(
        self,
        batch_size: int,
        queries: Sequence[TriplePatternQuery] | None = None,
    ) -> Iterator[list[TriplePatternQuery]]:
        """Yield successive batches of at most *batch_size* queries.

        The final batch may be short.  Pass *queries* to batch an
        alternative stream (e.g. :meth:`stretched`).
        """
        if batch_size < 1:
            raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
        source = list(queries if queries is not None else self.queries)
        for start in range(0, len(source), batch_size):
            yield source[start : start + batch_size]

    def stretched(
        self, n_queries: int, seed: int | None = None
    ) -> list[TriplePatternQuery]:
        """At least *n_queries* queries, cycling the set as needed.

        Repeats keep their original name plus a round suffix so batch
        reports stay attributable.  Cycling is the standard way to drive a
        workload-scale run from a fixed query set — repeats are exactly
        what shared caches exist to exploit.

        With an explicit *seed* the stream is shuffled deterministically
        (same seed, same stream), interleaving the rounds the way served
        traffic actually arrives instead of replaying the set in order;
        ``None`` keeps the plain cycling order.
        """
        if n_queries < 1:
            raise DatasetError(f"n_queries must be >= 1, got {n_queries}")
        stream: list[TriplePatternQuery] = []
        round_no = 0
        while len(stream) < n_queries:
            for query in self.queries:
                if round_no == 0:
                    stream.append(query)
                else:
                    stream.append(
                        TriplePatternQuery(
                            query.patterns,
                            query.projection,
                            name=f"{query.name}#r{round_no}",
                        )
                    )
                if len(stream) == n_queries:
                    break
            round_no += 1
        if seed is not None:
            random.Random(seed).shuffle(stream)
        return stream

    def validate(
        self,
        min_relaxations_per_pattern: int = 0,
        require_nonempty: bool = False,
    ) -> list[str]:
        """Check the paper's workload constraints; returns violations
        (empty list = all good)."""
        problems: list[str] = []
        for query in self.queries:
            for pattern in query.patterns:
                n_rules = self.rules.n_rules_for(pattern)
                if n_rules < min_relaxations_per_pattern:
                    problems.append(
                        f"{query.name}: pattern '{pattern}' has {n_rules} "
                        f"relaxations (< {min_relaxations_per_pattern})"
                    )
            if require_nonempty:
                if any(
                    self.graph.match_list(pattern).is_empty
                    for pattern in query.patterns
                ):
                    problems.append(
                        f"{query.name}: some pattern has an empty match list"
                    )
        return problems

    def summary(self) -> dict[str, object]:
        sizes = {size: len(qs) for size, qs in self.queries_by_size().items()}
        return {
            "name": self.name,
            "triples": self.graph.size,
            "rules": len(self.rules),
            "queries": len(self.queries),
            "queries_by_size": sizes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workload({self.name!r}, triples={self.graph.size}, "
            f"queries={len(self.queries)}, rules={len(self.rules)})"
        )
