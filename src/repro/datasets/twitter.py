"""Synthetic Twitter-like dataset and workload (§4.2's second dataset).

The paper's corpus — 18M ``⟨tID, hasTag, term⟩`` triples from 30 days of
the Streaming API — cannot be redistributed; this generator reproduces its
structural regime:

* tweets draw their terms from latent *trends* (topics), so term
  co-occurrence is strong within a trend and weak across trends — the
  signal the ``w = #tweets(T1∧T2)/#tweets(T1)`` relaxation scheme mines;
* every triple of a tweet carries the tweet's retweet count as its score,
  and retweet counts are Zipf-distributed;
* queries combine 2–3 frequent terms, each with ≥5 mined relaxations;
  because individual terms match few tweets and conjunctions are sparse,
  most queries cannot fill a top-k from exact matches alone — the
  "all patterns need relaxing" regime of §4.5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import (
    make_rng,
    name_series,
    weighted_sample_without_replacement,
    zipf_rank_weights,
    zipf_scores,
)
from repro.datasets.workload import Workload
from repro.errors import DatasetError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery
from repro.relax.cooccurrence import CooccurrenceIndex, mine_cooccurrence_rules
from repro.relax.rules import RuleSet

#: The single predicate of the Twitter dataset.
HAS_TAG = "hasTag"


@dataclass(frozen=True)
class TwitterConfig:
    """Generation knobs for the synthetic tweet corpus."""

    n_tweets: int = 6000
    n_trends: int = 25
    vocabulary_per_trend: int = 30
    terms_per_tweet_min: int = 3
    terms_per_tweet_max: int = 8
    n_queries: int = 50
    retweet_alpha: float = 1.1
    min_relaxations: int = 5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.terms_per_tweet_min < 2:
            raise DatasetError("tweets need >= 2 terms for co-occurrence")
        if self.terms_per_tweet_max < self.terms_per_tweet_min:
            raise DatasetError("terms_per_tweet_max < terms_per_tweet_min")
        if self.n_queries < 1:
            raise DatasetError("n_queries must be >= 1")


def _trend_vocabularies(config: TwitterConfig) -> list[list[str]]:
    """Each trend owns a hashtag block plus a few shared plain terms."""
    vocabularies: list[list[str]] = []
    for trend in range(config.n_trends):
        tags = [
            f"#trend{trend:02d}_tag{j:02d}"
            for j in range(config.vocabulary_per_trend)
        ]
        vocabularies.append(tags)
    return vocabularies


def _generate_tweets(
    rng: np.random.Generator, config: TwitterConfig
) -> dict[str, list[str]]:
    """tweet id -> term list, with trend-driven co-occurrence."""
    vocabularies = _trend_vocabularies(config)
    trend_weights = zipf_rank_weights(config.n_trends, exponent=0.9)
    tweets: dict[str, list[str]] = {}
    for tweet_id in name_series("t", config.n_tweets, width=6):
        trend_index = int(rng.choice(config.n_trends, p=trend_weights))
        vocabulary = vocabularies[trend_index]
        term_weights = zipf_rank_weights(len(vocabulary), exponent=1.0)
        n_terms = int(
            rng.integers(config.terms_per_tweet_min, config.terms_per_tweet_max + 1)
        )
        terms = weighted_sample_without_replacement(
            rng, vocabulary, term_weights, n_terms
        )
        # Occasional cross-trend term: weak long-range co-occurrence.
        if rng.random() < 0.15:
            other = vocabularies[int(rng.choice(config.n_trends))]
            terms.append(other[int(rng.integers(len(other)))])
        tweets[tweet_id] = sorted(set(terms))
    return tweets


def _build_graph(
    rng: np.random.Generator,
    config: TwitterConfig,
    tweets: dict[str, list[str]],
) -> KnowledgeGraph:
    graph = KnowledgeGraph(name="twitter")
    retweets = zipf_scores(rng, len(tweets), alpha=config.retweet_alpha)
    for (tweet_id, terms), retweet_count in zip(tweets.items(), retweets):
        for term in terms:
            # Every triple of a tweet shares the tweet's retweet count.
            graph.add(tweet_id, HAS_TAG, term, score=float(retweet_count))
    return graph


def _build_queries(
    rng: np.random.Generator,
    config: TwitterConfig,
    tweets: dict[str, list[str]],
    rules: RuleSet,
) -> list[TriplePatternQuery]:
    """50 queries of 2–3 terms, non-empty, relaxation-rich.

    Terms are taken from actual tweets (so the conjunction has at least
    one exact answer) and, mirroring §4.2's "combinations of most
    frequent tags and terms", selection within a tweet is biased towards
    the corpus-frequent terms.  Terms are filtered to those with
    ≥ ``min_relaxations`` mined rules.
    """
    variable = Variable("s")
    eligible: set[str] = set()
    for key in rules.domains():
        _, pred, obj = key
        if pred == HAS_TAG and obj is not None:
            pattern = TriplePattern(variable, HAS_TAG, obj)
            if rules.n_rules_for(pattern) >= config.min_relaxations:
                eligible.add(obj)

    term_frequency: dict[str, int] = {}
    for terms in tweets.values():
        for term in terms:
            term_frequency[term] = term_frequency.get(term, 0) + 1

    half = config.n_queries // 2
    sizes = [2] * half + [3] * (config.n_queries - half)
    tweet_ids = sorted(tweets)
    order = list(rng.permutation(len(tweet_ids)))

    queries: list[TriplePatternQuery] = []
    seen: set[frozenset[str]] = set()
    position = 0
    attempts = 0
    for size in sizes:
        built = False
        while not built:
            attempts += 1
            if attempts > 100 * config.n_queries:
                raise DatasetError(
                    "could not build enough distinct Twitter queries; "
                    "increase corpus size or lower min_relaxations"
                )
            tweet_id = tweet_ids[order[position % len(tweet_ids)]]
            position += 1
            usable = [t for t in tweets[tweet_id] if t in eligible]
            if len(usable) < size:
                continue
            # "Most frequent tags and terms": keep the tweet's most
            # frequent eligible terms, with one random slot for variety.
            usable.sort(key=lambda t: (-term_frequency.get(t, 0), t))
            pool = usable[: size + 2]
            chosen_indexes = rng.choice(len(pool), size=size, replace=False)
            terms = sorted(pool[i] for i in chosen_indexes)
            key = frozenset(terms)
            if key in seen:
                continue
            seen.add(key)
            patterns = tuple(
                TriplePattern(variable, HAS_TAG, term) for term in terms
            )
            queries.append(
                TriplePatternQuery(
                    patterns,
                    projection=(variable,),
                    name=f"twitter-q{len(queries):03d}",
                )
            )
            built = True
    return queries


def generate_twitter(config: TwitterConfig | None = None) -> Workload:
    """Generate the Twitter-like workload: KG, mined rules, 50 queries."""
    config = config or TwitterConfig()
    rng = make_rng(config.seed)
    tweets = _generate_tweets(rng, config)
    graph = _build_graph(rng, config, tweets)
    rules = mine_cooccurrence_rules(
        graph,
        HAS_TAG,
        min_weight=0.03,
        max_rules_per_item=max(config.min_relaxations + 5, 10),
    )
    queries = _build_queries(rng, config, tweets, rules)
    return Workload(name="twitter", graph=graph, rules=rules, queries=queries)
