"""Shared synthetic-generation utilities.

Everything is driven by an explicit ``numpy.random.Generator`` so datasets
are reproducible bit-for-bit from a seed.  Scores follow discrete power
laws (Zipf) because both of the paper's score sources — occurrence /
inlink counts and retweet counts — are textbook power-law quantities, and
the 80/20 behaviour of those distributions is the paper's explicit
motivation for the two-bucket histogram model (§3.1.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DatasetError


def make_rng(seed: int | np.random.Generator) -> np.random.Generator:
    """Normalise a seed or generator into a ``Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def zipf_scores(
    rng: np.random.Generator,
    n: int,
    alpha: float = 1.1,
    max_score: float = 10_000.0,
) -> np.ndarray:
    """Draw ``n`` power-law scores (counts) in ``[1, max_score]``.

    Uses a bounded Pareto via inverse-cdf sampling so a single extreme
    outlier cannot flatten every other normalised score to ~0.
    """
    if n < 0:
        raise DatasetError(f"n must be >= 0, got {n}")
    if alpha <= 0:
        raise DatasetError(f"alpha must be > 0, got {alpha}")
    if n == 0:
        return np.empty(0)
    u = rng.random(n)
    lo, hi = 1.0, float(max_score)
    if abs(alpha - 1.0) < 1e-9:
        scores = lo * (hi / lo) ** u
    else:
        a = 1.0 - alpha
        scores = (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)
    return np.ceil(scores)


def zipf_rank_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf popularity weights for ``n`` ranked items."""
    if n <= 0:
        raise DatasetError(f"n must be > 0, got {n}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def weighted_sample_without_replacement(
    rng: np.random.Generator,
    items: Sequence[str],
    weights: np.ndarray,
    size: int,
) -> list[str]:
    """Sample up to ``size`` distinct items proportionally to ``weights``."""
    size = min(size, len(items))
    if size <= 0:
        return []
    probabilities = np.asarray(weights, dtype=float)
    probabilities = probabilities / probabilities.sum()
    chosen = rng.choice(len(items), size=size, replace=False, p=probabilities)
    return [items[i] for i in chosen]


def name_series(prefix: str, n: int, width: int | None = None) -> list[str]:
    """``prefix000, prefix001, ...`` with stable zero-padding."""
    if n < 0:
        raise DatasetError(f"n must be >= 0, got {n}")
    width = width or max(len(str(max(n - 1, 0))), 3)
    return [f"{prefix}{i:0{width}d}" for i in range(n)]
