"""Shared synthetic-generation utilities and scale-test graphs.

Everything is driven by an explicit ``numpy.random.Generator`` so datasets
are reproducible bit-for-bit from a seed.  Scores follow discrete power
laws (Zipf) because both of the paper's score sources — occurrence /
inlink counts and retweet counts — are textbook power-law quantities, and
the 80/20 behaviour of those distributions is the paper's explicit
motivation for the two-bucket histogram model (§3.1.1).

Beyond the workload generators' low-level helpers, this module provides
**scale profiles** (:data:`SCALE_PROFILES`, up to a million triples) and
:func:`generate_scaled_graph`, which builds a
:class:`~repro.kg.columnar.ColumnarGraph` entirely in NumPy — id columns
drawn under Zipf popularity, scores from the bounded power law — so the
storage benchmarks have realistic large graphs without a slow per-triple
generation loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import DatasetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.columnar import ColumnarGraph


def make_rng(seed: int | np.random.Generator) -> np.random.Generator:
    """Normalise a seed or generator into a ``Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def zipf_scores(
    rng: np.random.Generator,
    n: int,
    alpha: float = 1.1,
    max_score: float = 10_000.0,
) -> np.ndarray:
    """Draw ``n`` power-law scores (counts) in ``[1, max_score]``.

    Uses a bounded Pareto via inverse-cdf sampling so a single extreme
    outlier cannot flatten every other normalised score to ~0.
    """
    if n < 0:
        raise DatasetError(f"n must be >= 0, got {n}")
    if alpha <= 0:
        raise DatasetError(f"alpha must be > 0, got {alpha}")
    if n == 0:
        return np.empty(0)
    u = rng.random(n)
    lo, hi = 1.0, float(max_score)
    if abs(alpha - 1.0) < 1e-9:
        scores = lo * (hi / lo) ** u
    else:
        a = 1.0 - alpha
        scores = (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)
    return np.ceil(scores)


def zipf_rank_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf popularity weights for ``n`` ranked items."""
    if n <= 0:
        raise DatasetError(f"n must be > 0, got {n}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def weighted_sample_without_replacement(
    rng: np.random.Generator,
    items: Sequence[str],
    weights: np.ndarray,
    size: int,
) -> list[str]:
    """Sample up to ``size`` distinct items proportionally to ``weights``."""
    size = min(size, len(items))
    if size <= 0:
        return []
    probabilities = np.asarray(weights, dtype=float)
    probabilities = probabilities / probabilities.sum()
    chosen = rng.choice(len(items), size=size, replace=False, p=probabilities)
    return [items[i] for i in chosen]


def name_series(prefix: str, n: int, width: int | None = None) -> list[str]:
    """``prefix000, prefix001, ...`` with stable zero-padding."""
    if n < 0:
        raise DatasetError(f"n must be >= 0, got {n}")
    width = width or max(len(str(max(n - 1, 0))), 3)
    return [f"{prefix}{i:0{width}d}" for i in range(n)]


# ----------------------------------------------------------------------
# Scale profiles (storage / throughput testing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScaleProfile:
    """Sizing knobs for a synthetic scale-test graph.

    Subjects and objects are entities drawn under Zipf rank popularity
    (``entity_exponent``), predicates likewise (``predicate_exponent``),
    scores from the bounded power law of :func:`zipf_scores` — the same
    distributional shape as the paper's corpora, at whatever scale the
    profile asks for.
    """

    name: str
    n_triples: int
    n_entities: int
    n_predicates: int
    score_alpha: float = 1.1
    entity_exponent: float = 1.0
    predicate_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.n_triples < 1:
            raise DatasetError(f"n_triples must be >= 1, got {self.n_triples}")
        if self.n_entities < 1 or self.n_predicates < 1:
            raise DatasetError("n_entities and n_predicates must be >= 1")
        capacity = self.n_entities * self.n_predicates * self.n_entities
        if self.n_triples > capacity // 2:
            raise DatasetError(
                f"profile {self.name!r} wants {self.n_triples} distinct triples "
                f"from only {capacity} possible (s, p, o) combinations; "
                "increase n_entities/n_predicates"
            )


#: Ready-made profiles: ``smoke`` for tests, ``medium`` for local runs,
#: ``million`` for the snapshot-vs-TSV benchmark's headline scale.
SCALE_PROFILES: dict[str, ScaleProfile] = {
    "smoke": ScaleProfile("smoke", n_triples=10_000, n_entities=2_000, n_predicates=16),
    "medium": ScaleProfile(
        "medium", n_triples=100_000, n_entities=25_000, n_predicates=32
    ),
    "million": ScaleProfile(
        "million", n_triples=1_000_000, n_entities=200_000, n_predicates=64
    ),
}


def generate_scaled_graph(
    profile: str | ScaleProfile = "million",
    seed: int | np.random.Generator = 0,
) -> "ColumnarGraph":
    """Generate a columnar graph of exactly ``profile.n_triples`` triples.

    Fully vectorised: draws oversampled ``(s, p, o)`` id rows under the
    profile's Zipf popularity, dedupes them (identity is the term triple,
    as everywhere in the repo), tops up until the target count is reached,
    and scores every surviving row with the bounded power law.
    Deterministic for a given profile and seed.
    """
    from repro.kg.columnar import ColumnarGraph, ColumnarStore

    if isinstance(profile, str):
        try:
            profile = SCALE_PROFILES[profile]
        except KeyError:
            raise DatasetError(
                f"unknown scale profile {profile!r}; "
                f"choose from {sorted(SCALE_PROFILES)}"
            ) from None
    rng = make_rng(seed)
    n = profile.n_triples
    n_entities, n_predicates = profile.n_entities, profile.n_predicates
    entity_weights = zipf_rank_weights(n_entities, profile.entity_exponent)
    predicate_weights = zipf_rank_weights(n_predicates, profile.predicate_exponent)

    # Draw with oversampling, dedup on a packed (s, p, o) key, repeat
    # until n distinct rows exist.  Zipf concentration makes the hottest
    # cells collide, so a fixed oversample factor alone is not enough.
    packed = np.empty(0, dtype=np.int64)
    base = np.int64(n_entities)
    need = n
    while need > 0:
        batch = max(int(need * 1.2), 1024)
        s = rng.choice(n_entities, size=batch, p=entity_weights)
        p = rng.choice(n_predicates, size=batch, p=predicate_weights)
        o = rng.choice(n_entities, size=batch, p=entity_weights)
        fresh = (s * n_predicates + p) * base + o
        packed = np.unique(np.concatenate([packed, fresh]))
        need = n - len(packed)
    packed = rng.permutation(packed)[:n]  # drop surplus without rank bias

    objects = (packed % base).astype(np.int64)
    rest = packed // base
    predicates = (rest % n_predicates).astype(np.int64)
    subjects = (rest // n_predicates).astype(np.int64)
    scores = zipf_scores(rng, n, alpha=profile.score_alpha)

    entity_names = name_series("e", n_entities)
    predicate_names = name_series("p", n_predicates)
    terms = np.array(entity_names + predicate_names)
    store = ColumnarStore.from_arrays(
        terms,
        subjects,
        predicates + n_entities,  # predicate ids follow entity ids
        objects,
        scores,
        validate=False,  # constructed in-range and distinct by design
    )
    return ColumnarGraph(store, name=f"synthetic-{profile.name}")
