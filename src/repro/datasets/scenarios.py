"""Scenario packs: a schemas × intents × augmentation workload generator.

Every perf and correctness claim so far rests on one synthetic diverse
workload, so the test net cannot tell whether the cost rule, tie
resolution or cache invalidation hold under skewed, update-heavy or
adversarial traffic.  This module is the coverage substrate that fixes
that, following the schemas → intents → augmentation → deterministic
export pipeline:

* **schemas** — four hand-written graph domains (commerce, social, geo,
  media), each a :class:`DomainSchema` naming its entity classes and
  typed, Zipf-skewed predicates;
* **intents** — per-domain query generators reading the schema: point
  lookups over hot constants, star joins seeded from real entities
  (non-empty by construction), chain joins along class-compatible
  predicate pairs, and relaxation-heavy probes over sparse conjunctions;
* **augmentation** — passes that multiply the base traffic: Zipf-skewed
  hot-key repeats, an update stream (removes + score bumps + fresh adds
  aimed at the queried constants), and adversarial shapes — boundary-tie
  score runs, unselective open joins, ``k`` > result-count and empty
  match lists — exactly the query shapes a single distribution never
  produces and optimizer decisions flip on;
* **deterministic export** — each named :class:`ScenarioPack` is
  bit-reproducible from its seed and exposes a content-checksummed
  :meth:`~ScenarioPack.manifest`, so golden tests fail loudly on any
  generator drift.

Packs are registered in :data:`SCENARIOS` and built with
:func:`build_scenario`; the ``workload``/``update`` CLI subcommands
(``--scenario NAME``), ``scripts/bench_summary.py`` and the executor
equivalence suites consume them, so every claim is made across a
scenario matrix instead of one distribution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.datasets.synthetic import (
    make_rng,
    name_series,
    weighted_sample_without_replacement,
    zipf_rank_weights,
    zipf_scores,
)
from repro.datasets.workload import Workload
from repro.errors import DatasetError
from repro.kg.delta import GraphUpdate
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery
from repro.relax.mining import mine_object_relaxations
from repro.relax.rules import RuleSet

VAR_S = Variable("s")
VAR_O = Variable("o")
VAR_T = Variable("t")

#: Raw score shared by every row of an adversarial boundary-tie run.
TIE_SCORE = 64.0

#: Intent names the packs can mix (keys of :data:`INTENT_GENERATORS`).
INTENTS = ("point", "star", "chain", "relax")

#: Adversarial traits a pack can carry.
ADVERSARIAL_TRAITS = ("ties", "unselective", "over-k", "empty-match")


# ----------------------------------------------------------------------
# Schemas — hand-written domain descriptors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EntityClass:
    """A named entity population (``prefix000 … prefixNNN``)."""

    name: str
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise DatasetError(f"entity class {self.name!r} needs count >= 1")

    def names(self) -> list[str]:
        return name_series(f"{self.name}", self.count)


@dataclass(frozen=True)
class PredicateSpec:
    """One typed edge family: ``subject_class --name--> object_class``.

    ``fanout`` bounds the edges drawn per subject (inclusive);
    ``object_exponent`` is the Zipf skew of object popularity (higher =
    hotter heads); ``relaxable`` predicates get instance-overlap rules
    mined over their object constants, making their patterns the
    relaxation surface of the domain.
    """

    name: str
    subject_class: str
    object_class: str
    fanout: tuple[int, int]
    object_exponent: float = 1.0
    relaxable: bool = False

    def __post_init__(self) -> None:
        lo, hi = self.fanout
        if not 1 <= lo <= hi:
            raise DatasetError(
                f"predicate {self.name!r} fanout must satisfy 1 <= lo <= hi"
            )


@dataclass(frozen=True)
class DomainSchema:
    """A graph domain: entity classes plus the predicates joining them."""

    name: str
    entities: tuple[EntityClass, ...]
    predicates: tuple[PredicateSpec, ...]
    score_alpha: float = 1.1

    def __post_init__(self) -> None:
        class_names = {c.name for c in self.entities}
        if len(class_names) != len(self.entities):
            raise DatasetError(f"domain {self.name!r} has duplicate entity classes")
        for spec in self.predicates:
            for side in (spec.subject_class, spec.object_class):
                if side not in class_names:
                    raise DatasetError(
                        f"domain {self.name!r}: predicate {spec.name!r} "
                        f"references unknown class {side!r}"
                    )

    def entity_class(self, name: str) -> EntityClass:
        for entity_class in self.entities:
            if entity_class.name == name:
                return entity_class
        raise DatasetError(f"domain {self.name!r} has no class {name!r}")

    def predicates_of(self, subject_class: str) -> list[PredicateSpec]:
        return [p for p in self.predicates if p.subject_class == subject_class]


#: The four shipped domains.  Sizes are deliberately small — packs are a
#: correctness/coverage substrate first; the scale knobs live in
#: :data:`~repro.datasets.synthetic.SCALE_PROFILES`, not here.
DOMAINS: dict[str, DomainSchema] = {
    "commerce": DomainSchema(
        name="commerce",
        entities=(
            EntityClass("product", 240),
            EntityClass("category", 18),
            EntityClass("brand", 24),
            EntityClass("shopper", 120),
        ),
        predicates=(
            PredicateSpec("co:category", "product", "category", (1, 3),
                          object_exponent=1.1, relaxable=True),
            PredicateSpec("co:brand", "product", "brand", (1, 1),
                          object_exponent=1.2, relaxable=True),
            PredicateSpec("co:viewedWith", "product", "product", (1, 4),
                          object_exponent=1.3),
            PredicateSpec("co:bought", "shopper", "product", (2, 6),
                          object_exponent=1.2),
        ),
    ),
    "social": DomainSchema(
        name="social",
        entities=(
            EntityClass("user", 220),
            EntityClass("tag", 28),
            EntityClass("community", 12),
        ),
        predicates=(
            PredicateSpec("so:likes", "user", "tag", (2, 5),
                          object_exponent=1.1, relaxable=True),
            PredicateSpec("so:memberOf", "user", "community", (1, 2),
                          object_exponent=0.9, relaxable=True),
            PredicateSpec("so:follows", "user", "user", (1, 5),
                          object_exponent=1.4),
        ),
    ),
    "geo": DomainSchema(
        name="geo",
        entities=(
            EntityClass("place", 230),
            EntityClass("region", 14),
            EntityClass("amenity", 20),
        ),
        predicates=(
            PredicateSpec("geo:locatedIn", "place", "region", (1, 2),
                          object_exponent=0.8, relaxable=True),
            PredicateSpec("geo:amenity", "place", "amenity", (1, 4),
                          object_exponent=1.0, relaxable=True),
            PredicateSpec("geo:nearby", "place", "place", (1, 3),
                          object_exponent=1.2),
        ),
    ),
    "media": DomainSchema(
        name="media",
        entities=(
            EntityClass("track", 240),
            EntityClass("genre", 16),
            EntityClass("artist", 40),
            EntityClass("playlist", 36),
        ),
        predicates=(
            PredicateSpec("me:genre", "track", "genre", (1, 3),
                          object_exponent=1.0, relaxable=True),
            PredicateSpec("me:by", "track", "artist", (1, 2),
                          object_exponent=1.2, relaxable=True),
            PredicateSpec("me:features", "playlist", "track", (3, 8),
                          object_exponent=1.1),
        ),
    ),
}


# ----------------------------------------------------------------------
# Graph construction from a schema
# ----------------------------------------------------------------------
#: predicate name -> subject -> that subject's objects (insertion order).
Adjacency = dict[str, dict[str, list[str]]]


def _build_domain_graph(
    rng: np.random.Generator, schema: DomainSchema
) -> tuple[KnowledgeGraph, Adjacency]:
    """Materialise the schema: every subject draws Zipf-skewed edges.

    Rows are generated class by class, subject by subject, in name order,
    so the triple sequence (and therefore every score draw) is a pure
    function of the schema and the rng state.
    """
    graph = KnowledgeGraph(name=schema.name)
    adjacency: Adjacency = {spec.name: {} for spec in schema.predicates}
    rows: list[tuple[str, str, str]] = []
    for spec in schema.predicates:
        subjects = schema.entity_class(spec.subject_class).names()
        objects = schema.entity_class(spec.object_class).names()
        weights = zipf_rank_weights(len(objects), spec.object_exponent)
        lo, hi = spec.fanout
        for subject in subjects:
            n_edges = int(rng.integers(lo, hi + 1))
            chosen = weighted_sample_without_replacement(
                rng, objects, weights, n_edges
            )
            chosen = [obj for obj in chosen if obj != subject]  # no self loops
            adjacency[spec.name][subject] = chosen
            rows.extend((subject, spec.name, obj) for obj in chosen)
    scores = zipf_scores(rng, len(rows), alpha=schema.score_alpha)
    for (s, p, o), score in zip(rows, scores):
        graph.add(s, p, o, score=float(score))
    return graph, adjacency


def _mine_domain_rules(graph: KnowledgeGraph, schema: DomainSchema) -> RuleSet:
    rules = RuleSet()
    for spec in schema.predicates:
        if spec.relaxable:
            rules = rules.merged_with(
                mine_object_relaxations(
                    graph, spec.name, min_weight=0.02, max_rules_per_constant=12
                )
            )
    return rules


def _popular_constants(
    adjacency: Adjacency, predicate: str
) -> list[str]:
    """The predicate's object constants, most-matched first (ties by name)."""
    counts: dict[str, int] = {}
    for objects in adjacency[predicate].values():
        for obj in objects:
            counts[obj] = counts.get(obj, 0) + 1
    return sorted(counts, key=lambda obj: (-counts[obj], obj))


# ----------------------------------------------------------------------
# Intents — per-domain query generators
# ----------------------------------------------------------------------
def _point_lookups(
    rng: np.random.Generator,
    schema: DomainSchema,
    adjacency: Adjacency,
    rules: RuleSet,
    n: int,
) -> list[TriplePatternQuery]:
    """Single-pattern object-bound lookups over hot relaxable constants."""
    queries: list[TriplePatternQuery] = []
    relaxable = [p for p in schema.predicates if p.relaxable]
    for i in range(n):
        spec = relaxable[i % len(relaxable)]
        constants = _popular_constants(adjacency, spec.name)
        head = constants[: max(4, len(constants) // 3)]
        constant = head[int(rng.integers(len(head)))]
        queries.append(
            TriplePatternQuery(
                (TriplePattern(VAR_S, spec.name, constant),),
                projection=(VAR_S,),
                name=f"{schema.name}-point{i:02d}",
            )
        )
    return queries


def _star_joins(
    rng: np.random.Generator,
    schema: DomainSchema,
    adjacency: Adjacency,
    rules: RuleSet,
    n: int,
) -> list[TriplePatternQuery]:
    """2–3 same-subject patterns seeded from a real entity's own edges,
    so the unrelaxed query has at least one answer by construction."""
    queries: list[TriplePatternQuery] = []
    seen: set[frozenset[TriplePattern]] = set()
    classes = sorted(
        {c for c in (e.name for e in schema.entities)
         if len(schema.predicates_of(c)) >= 2}
    )
    if not classes:
        raise DatasetError(f"domain {schema.name!r} has no star-joinable class")
    attempts = 0
    while len(queries) < n:
        attempts += 1
        if attempts > 60 * n:
            raise DatasetError(
                f"domain {schema.name!r}: could not build {n} distinct star joins"
            )
        subject_class = classes[attempts % len(classes)]
        specs = schema.predicates_of(subject_class)
        subjects = schema.entity_class(subject_class).names()
        subject = subjects[int(rng.integers(len(subjects)))]
        candidates = [
            TriplePattern(VAR_S, spec.name, obj)
            for spec in specs
            for obj in adjacency[spec.name].get(subject, [])
        ]
        size = int(rng.integers(2, 4))
        if len(candidates) < size:
            continue
        chosen = rng.choice(len(candidates), size=size, replace=False)
        patterns = tuple(candidates[j] for j in sorted(chosen))
        key = frozenset(patterns)
        if key in seen or len(key) < size:
            continue
        seen.add(key)
        queries.append(
            TriplePatternQuery(
                patterns,
                projection=(VAR_S,),
                name=f"{schema.name}-star{len(queries):02d}",
            )
        )
    return queries


def _chain_joins(
    rng: np.random.Generator,
    schema: DomainSchema,
    adjacency: Adjacency,
    rules: RuleSet,
    n: int,
) -> list[TriplePatternQuery]:
    """``?s p1 ?o . ?o p2 ?t`` along class-compatible predicate pairs."""
    pairs = [
        (a, b)
        for a in schema.predicates
        for b in schema.predicates
        if a.object_class == b.subject_class and a.name != b.name
    ]
    if not pairs:
        raise DatasetError(f"domain {schema.name!r} has no chainable predicates")
    queries = []
    for i in range(n):
        first, second = pairs[i % len(pairs)]
        patterns = (
            TriplePattern(VAR_S, first.name, VAR_O),
            TriplePattern(VAR_O, second.name, VAR_T),
        )
        queries.append(
            TriplePatternQuery(
                patterns,
                projection=(VAR_S, VAR_O),
                name=f"{schema.name}-chain{i:02d}",
            )
        )
    return queries


def _relaxation_probes(
    rng: np.random.Generator,
    schema: DomainSchema,
    adjacency: Adjacency,
    rules: RuleSet,
    n: int,
) -> list[TriplePatternQuery]:
    """Sparse conjunctions over rule-covered constants.

    Constants come from the *tail* of two relaxable predicates'
    popularity ranking and from different seed subjects, so the exact
    conjunction is small (often empty) while every pattern carries mined
    rules — the regime where the relaxation frontier, not the exact
    lists, decides the top-k.
    """
    pools = {
        spec.name: (spec, _ruled_tail_constants(adjacency, rules, spec))
        for spec in schema.predicates
        if spec.relaxable
    }
    # A fanout-(1,1) predicate has disjoint subject sets per constant, so
    # mining yields nothing for it — probe only rule-bearing predicates.
    ruled = [name for name, (_, pool) in sorted(pools.items()) if pool]
    if not ruled:
        raise DatasetError(
            f"domain {schema.name!r} mined no rules on any relaxable predicate"
        )
    queries: list[TriplePatternQuery] = []
    seen: set[frozenset[TriplePattern]] = set()
    attempts = 0
    while len(queries) < n:
        attempts += 1
        if attempts > 80 * n:
            raise DatasetError(
                f"domain {schema.name!r}: could not build {n} relaxation probes"
            )
        spec_a, pool_a = pools[ruled[attempts % len(ruled)]]
        spec_b, pool_b = pools[ruled[(attempts + 1) % len(ruled)]]
        const_a = pool_a[int(rng.integers(len(pool_a)))]
        const_b = pool_b[int(rng.integers(len(pool_b)))]
        if spec_a.name == spec_b.name and const_a == const_b:
            continue
        patterns = (
            TriplePattern(VAR_S, spec_a.name, const_a),
            TriplePattern(VAR_S, spec_b.name, const_b),
        )
        key = frozenset(patterns)
        if key in seen or len(key) < 2:
            continue
        seen.add(key)
        queries.append(
            TriplePatternQuery(
                patterns,
                projection=(VAR_S,),
                name=f"{schema.name}-relax{len(queries):02d}",
            )
        )
    return queries


def _ruled_tail_constants(
    adjacency: Adjacency, rules: RuleSet, spec: PredicateSpec
) -> list[str]:
    """Low-popularity constants of *spec* that still carry mined rules.

    Falls back to any ruled constant when the unpopular half carries no
    rules at all (mining weights can concentrate on the head).
    """
    ranked = _popular_constants(adjacency, spec.name)
    ruled = [
        c for c in ranked
        if rules.has_rules_for(TriplePattern(VAR_S, spec.name, c))
    ]
    tail = [c for c in ruled if c in set(ranked[len(ranked) // 2:])]
    return tail or ruled


IntentGenerator = Callable[
    [np.random.Generator, DomainSchema, Adjacency, RuleSet, int],
    list[TriplePatternQuery],
]

INTENT_GENERATORS: dict[str, IntentGenerator] = {
    "point": _point_lookups,
    "star": _star_joins,
    "chain": _chain_joins,
    "relax": _relaxation_probes,
}


# ----------------------------------------------------------------------
# Augmentation passes
# ----------------------------------------------------------------------
def _augment_hot_keys(
    rng: np.random.Generator,
    queries: list[TriplePatternQuery],
    rounds: int,
    exponent: float = 1.2,
) -> list[TriplePatternQuery]:
    """Append Zipf-skewed repeats: hot queries dominate the stream.

    Each round draws ``len(queries)`` repeats under a Zipf rank law over
    the base set, renamed ``…#hN`` so the Workload name-uniqueness
    invariant holds while (query, k) result-cache keys still collide —
    exactly the reuse profile served traffic has.
    """
    base = list(queries)
    weights = zipf_rank_weights(len(base), exponent)
    stream = list(base)
    counter = 0
    for _ in range(rounds):
        picks = rng.choice(len(base), size=len(base), p=weights)
        for index in picks:
            origin = base[int(index)]
            stream.append(
                TriplePatternQuery(
                    origin.patterns,
                    origin.projection,
                    name=f"{origin.name}#h{counter}",
                )
            )
            counter += 1
    return stream


def _augment_update_stream(
    rng: np.random.Generator,
    graph: KnowledgeGraph,
    queries: list[TriplePatternQuery],
    n_updates: int,
) -> list[GraphUpdate]:
    """An update stream aimed at the traffic: removes and score bumps of
    existing rows plus fresh adds landing on the constants the queries
    read, so applying it actually invalidates hot cache entries."""
    triples = sorted(graph.triples(), key=lambda t: t.spo)
    queried_constants = sorted(
        {
            (p.predicate, p.object)
            for q in queries
            for p in q.patterns
            if isinstance(p.predicate, str) and isinstance(p.object, str)
        }
    )
    updates: list[GraphUpdate] = []
    n_removes = n_updates // 3
    n_bumps = n_updates // 3
    n_adds = n_updates - n_removes - n_bumps
    picked = rng.choice(len(triples), size=min(n_removes + n_bumps, len(triples)),
                        replace=False)
    removed = [triples[int(i)] for i in picked[:n_removes]]
    bumped = [triples[int(i)] for i in picked[n_removes:]]
    updates += [GraphUpdate.remove(*t.spo) for t in removed]
    updates += [
        GraphUpdate.add(t.subject, t.predicate, t.object, t.score + 7.0)
        for t in bumped
    ]
    for i in range(n_adds):
        if queried_constants:
            predicate, obj = queried_constants[
                int(rng.integers(len(queried_constants)))
            ]
        else:  # pragma: no cover - every pack queries constants
            predicate, obj = "adv:pred", "adv:obj"
        updates.append(
            GraphUpdate.add(
                f"fresh{i:03d}", predicate, obj, float(zipf_scores(rng, 1)[0])
            )
        )
    return updates


def _augment_boundary_ties(
    graph: KnowledgeGraph,
    schema: DomainSchema,
    k: int,
) -> list[TriplePatternQuery]:
    """Inject score runs that straddle the top-k boundary.

    A dedicated tie bucket gets ``k + 6`` rows at exactly
    :data:`TIE_SCORE` under 3 rows that beat it — the k-th answer then
    falls *inside* an equal-score run, the shape the canonical tie cut
    (sort ``(-score, bindings)``, cut ``k``) exists for and the shape
    where a non-canonical executor diverges first.  A second bucket
    drives a two-pattern join whose joined scores tie as well.
    """
    for i in range(3):
        graph.add(f"{schema.name}-tietop{i:02d}", "adv:tied", "adv:tie-bucket",
                  score=TIE_SCORE * 2 + i)
    for i in range(k + 6):
        graph.add(f"{schema.name}-tiesub{i:02d}", "adv:tied", "adv:tie-bucket",
                  score=TIE_SCORE)
    for i in range(k + 2):
        graph.add(f"{schema.name}-tiesub{i:02d}", "adv:tied2", "adv:tie-bucket2",
                  score=TIE_SCORE / 2)
    return [
        TriplePatternQuery(
            (TriplePattern(VAR_S, "adv:tied", "adv:tie-bucket"),),
            projection=(VAR_S,),
            name=f"{schema.name}-adv-ties-scan",
        ),
        TriplePatternQuery(
            (
                TriplePattern(VAR_S, "adv:tied", "adv:tie-bucket"),
                TriplePattern(VAR_S, "adv:tied2", "adv:tie-bucket2"),
            ),
            projection=(VAR_S,),
            name=f"{schema.name}-adv-ties-join",
        ),
    ]


def _augment_unselective(
    schema: DomainSchema,
) -> list[TriplePatternQuery]:
    """Open scans and open joins over the fattest predicates: every
    pattern matches a large fraction of the graph, so selectivity
    estimates are near-useless and join buffers actually fill."""
    by_fanout = sorted(
        schema.predicates, key=lambda p: (-(p.fanout[0] + p.fanout[1]), p.name)
    )
    first, second = by_fanout[0], by_fanout[1 % len(by_fanout)]
    queries = [
        TriplePatternQuery(
            (TriplePattern(VAR_S, first.name, VAR_O),),
            name=f"{schema.name}-adv-open-scan",
        ),
        TriplePatternQuery(
            (
                TriplePattern(VAR_S, first.name, VAR_O),
                TriplePattern(VAR_S, second.name, VAR_T),
            ),
            projection=(VAR_S,),
            name=f"{schema.name}-adv-open-star",
        ),
    ]
    chain_pairs = [
        (a, b)
        for a in schema.predicates
        for b in schema.predicates
        if a.object_class == b.subject_class
    ]
    if chain_pairs:
        a, b = chain_pairs[0]
        queries.append(
            TriplePatternQuery(
                (
                    TriplePattern(VAR_S, a.name, VAR_O),
                    TriplePattern(VAR_O, b.name, VAR_T),
                ),
                projection=(VAR_S, VAR_O),
                name=f"{schema.name}-adv-open-chain",
            )
        )
    return queries


def _augment_edge_k(
    graph: KnowledgeGraph,
    schema: DomainSchema,
    adjacency: Adjacency,
) -> list[TriplePatternQuery]:
    """``k`` > result-count and empty-match-list shapes.

    A two-row private bucket can never fill a default ``k``; a pattern
    over an absent constant has an empty match list; their conjunction
    with a live pattern must come back empty without tripping any
    executor.
    """
    graph.add(f"{schema.name}-rare0", "adv:rare", "adv:rare-bucket", score=9.0)
    graph.add(f"{schema.name}-rare1", "adv:rare", "adv:rare-bucket", score=5.0)
    live_pred = schema.predicates[0].name
    return [
        TriplePatternQuery(
            (TriplePattern(VAR_S, "adv:rare", "adv:rare-bucket"),),
            projection=(VAR_S,),
            name=f"{schema.name}-adv-overk",
        ),
        TriplePatternQuery(
            (TriplePattern(VAR_S, "adv:rare", "adv:absent-bucket"),),
            projection=(VAR_S,),
            name=f"{schema.name}-adv-empty-scan",
        ),
        TriplePatternQuery(
            (
                TriplePattern(VAR_S, live_pred, VAR_O),
                TriplePattern(VAR_S, "adv:absent-predicate", VAR_T),
            ),
            projection=(VAR_S,),
            name=f"{schema.name}-adv-empty-join",
        ),
    ]


# ----------------------------------------------------------------------
# Packs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """The recipe for one named pack — everything but the seed's dice."""

    name: str
    domain: str
    description: str
    seed: int = 1009
    k: int = 10
    intents: Mapping[str, int] = field(
        default_factory=lambda: {"point": 6, "star": 6, "chain": 2, "relax": 4}
    )
    hot_rounds: int = 0
    n_updates: int = 0
    adversarial: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.domain not in DOMAINS:
            raise DatasetError(
                f"scenario {self.name!r}: unknown domain {self.domain!r}"
            )
        for intent in self.intents:
            if intent not in INTENT_GENERATORS:
                raise DatasetError(
                    f"scenario {self.name!r}: unknown intent {intent!r}"
                )
        for trait in self.adversarial:
            if trait not in ADVERSARIAL_TRAITS:
                raise DatasetError(
                    f"scenario {self.name!r}: unknown adversarial trait {trait!r}"
                )
        if self.k < 1:
            raise DatasetError(f"scenario {self.name!r}: k must be >= 1")


@dataclass(frozen=True)
class ScenarioPack:
    """A built scenario: workload + update stream, seed-deterministic.

    The same ``(spec, seed)`` always yields byte-identical content —
    :meth:`manifest` checksums the full export so golden tests catch any
    generator drift, and :meth:`validate` re-checks the structural
    contract each pack ships under.
    """

    name: str
    description: str
    seed: int
    k: int
    workload: Workload
    updates: tuple[GraphUpdate, ...]
    traits: frozenset[str]

    # ------------------------------------------------------------------
    def export_lines(self) -> Iterator[str]:
        """The pack's full content as deterministic text lines.

        Triples sorted by ``(s, p, o)``, queries and updates in stream
        order; scores rendered with ``repr`` (exact for doubles).  This
        is the byte stream the manifest checksum is defined over.
        """
        for triple in sorted(self.workload.graph.triples(), key=lambda t: t.spo):
            yield (
                f"T\t{triple.subject}\t{triple.predicate}\t{triple.object}"
                f"\t{triple.score!r}"
            )
        for query in self.workload.queries:
            yield f"Q\t{query.name}\t{query}"
        for update in self.updates:
            yield (
                f"U\t{update.op}\t{update.subject}\t{update.predicate}"
                f"\t{update.object}\t{update.score!r}"
            )

    def checksum(self) -> str:
        digest = hashlib.sha256()
        for line in self.export_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()[:16]

    def manifest(self) -> dict[str, object]:
        """Counts + content checksum — the golden-test contract."""
        return {
            "name": self.name,
            "seed": self.seed,
            "k": self.k,
            "triples": self.workload.graph.size,
            "queries": len(self.workload.queries),
            "updates": len(self.updates),
            "rules": len(self.workload.rules),
            "checksum": self.checksum(),
        }

    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Structural problems with the pack (empty list = all good)."""
        problems = self.workload.validate()
        if "empty-match" not in self.traits:
            problems += self.workload.validate(require_nonempty=True)
        if "ties" in self.traits:
            pattern = TriplePattern(VAR_S, "adv:tied", "adv:tie-bucket")
            matches = self.workload.graph.match_list(pattern)
            scores = [t.score for t in matches.triples]
            if scores.count(TIE_SCORE) <= self.k:
                problems.append(
                    f"{self.name}: tie run does not straddle k={self.k}"
                )
        if "over-k" in self.traits:
            pattern = TriplePattern(VAR_S, "adv:rare", "adv:rare-bucket")
            if self.workload.graph.count(pattern) >= self.k:
                problems.append(f"{self.name}: over-k probe fills k")
        for update in self.updates:
            if update.op not in ("+", "-"):  # pragma: no cover - constructor guards
                problems.append(f"{self.name}: invalid update op {update.op!r}")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioPack({self.name!r}, triples={self.workload.graph.size}, "
            f"queries={len(self.workload.queries)}, updates={len(self.updates)})"
        )


#: The shipped packs: one base pack per domain, a hot-key pack, an
#: update-heavy pack, a relaxation-heavy pack, and three adversarial
#: packs covering the shapes the equivalence suites must survive.
SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "commerce-base", "commerce",
            "balanced commerce traffic: lookups, star and chain joins",
            seed=101,
        ),
        ScenarioSpec(
            "social-base", "social",
            "balanced social-graph traffic over likes/membership/follows",
            seed=211,
        ),
        ScenarioSpec(
            "geo-base", "geo",
            "balanced geo traffic over containment, amenities and proximity",
            seed=307,
        ),
        ScenarioSpec(
            "media-base", "media",
            "balanced media traffic over genres, artists and playlists",
            seed=401,
        ),
        ScenarioSpec(
            "commerce-hot", "commerce",
            "Zipf-skewed hot-key repeats: a few queries dominate the stream",
            seed=523,
            intents={"point": 8, "star": 6, "chain": 2},
            hot_rounds=3,
        ),
        ScenarioSpec(
            "social-update-heavy", "social",
            "update-heavy mix: removes, score bumps and fresh adds aimed "
            "at the queried constants",
            seed=613,
            intents={"point": 6, "star": 6, "chain": 2},
            n_updates=240,
        ),
        ScenarioSpec(
            "media-relax-heavy", "media",
            "relaxation-heavy probes: sparse conjunctions where the mined "
            "rule frontier decides the top-k",
            seed=701,
            intents={"point": 2, "relax": 12},
        ),
        ScenarioSpec(
            "adversarial-ties", "commerce",
            "boundary-tie score runs straddling k: the canonical tie cut "
            "is load-bearing on every query",
            seed=809,
            intents={"point": 4, "star": 4},
            adversarial=("ties",),
        ),
        ScenarioSpec(
            "adversarial-unselective", "geo",
            "open scans and unselective joins: estimates are useless and "
            "join buffers fill",
            seed=907,
            intents={"star": 4, "chain": 2},
            adversarial=("unselective",),
        ),
        ScenarioSpec(
            "adversarial-edge-k", "social",
            "k > result-count, empty match lists and empty joins, plus a "
            "small update stream over them",
            seed=1013,
            k=25,
            intents={"point": 4, "star": 4},
            n_updates=60,
            adversarial=("over-k", "empty-match"),
        ),
    )
}


def scenario_names() -> list[str]:
    """The shipped pack names, sorted."""
    return sorted(SCENARIOS)


def build_scenario(name: str, seed: int | None = None) -> ScenarioPack:
    """Build the named pack, deterministically.

    ``seed=None`` uses the spec's default seed — the configuration the
    golden manifests freeze; any other seed yields the same shapes over
    different dice (distinct content, same structural contract).
    """
    try:
        spec = SCENARIOS[name]
    except KeyError:
        raise DatasetError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
    seed = spec.seed if seed is None else seed
    schema = DOMAINS[spec.domain]
    rng = make_rng(seed)

    # schemas -> graph + rules
    graph, adjacency = _build_domain_graph(rng, schema)
    rules = _mine_domain_rules(graph, schema)

    # intents -> base queries (generation order fixed by INTENTS order)
    queries: list[TriplePatternQuery] = []
    for intent in INTENTS:
        count = spec.intents.get(intent, 0)
        if count:
            queries += INTENT_GENERATORS[intent](
                rng, schema, adjacency, rules, count
            )

    # augmentation passes (adversarial first: their graph rows exist
    # before the update stream samples the triple population)
    traits = frozenset(spec.adversarial)
    if "ties" in traits:
        queries += _augment_boundary_ties(graph, schema, spec.k)
    if "unselective" in traits:
        queries += _augment_unselective(schema)
    if "over-k" in traits or "empty-match" in traits:
        queries += _augment_edge_k(graph, schema, adjacency)
    if spec.hot_rounds:
        queries = _augment_hot_keys(rng, queries, spec.hot_rounds)
    updates: tuple[GraphUpdate, ...] = ()
    if spec.n_updates:
        updates = tuple(
            _augment_update_stream(rng, graph, queries, spec.n_updates)
        )

    workload = Workload(
        name=f"scenario:{name}", graph=graph, rules=rules, queries=queries
    )
    return ScenarioPack(
        name=name,
        description=spec.description,
        seed=seed,
        k=spec.k,
        workload=workload,
        updates=updates,
        traits=traits,
    )


def build_all_scenarios(seed: int | None = None) -> dict[str, ScenarioPack]:
    """Every shipped pack, by name (the ``make scenarios`` smoke surface)."""
    return {name: build_scenario(name, seed=seed) for name in scenario_names()}
