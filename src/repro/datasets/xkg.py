"""Synthetic XKG-like dataset and workload (§4.2's first dataset).

The real XKG (YAGO2s + OpenIE textual triples, ~105M triples) is not
redistributable; this generator produces a KG with the properties Spec-QP
exercises:

* **entity types in overlapping clusters** — each "domain" (music, film,
  sport, …) carries a family of related types (``singer``, ``vocalist``,
  ``musician``, …) with heavy instance overlap, so the instance-overlap
  miner recovers ≥10 weighted relaxations per query type, mirroring
  Table 1;
* **topic predicates** — a second relaxable pattern family
  (``?s xkg:hasTopic t``) with its own co-occurrence structure, standing
  in for XKG's textual-token triples;
* **power-law scores** — triple scores are Zipf counts, matching the
  inlink/occurrence-count scoring and producing the 80/20 shape the
  two-bucket histogram assumes;
* **65 manually-shaped queries** with 2–4 triple patterns each, all with
  non-empty result sets, built from actually co-typed entities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import (
    make_rng,
    name_series,
    weighted_sample_without_replacement,
    zipf_rank_weights,
    zipf_scores,
)
from repro.datasets.workload import Workload
from repro.errors import DatasetError
from repro.kg.graph import KnowledgeGraph
from repro.kg.namespace import RDF_TYPE
from repro.kg.pattern import TriplePattern, Variable
from repro.query.query import TriplePatternQuery
from repro.relax.mining import mine_object_relaxations
from repro.relax.rules import RuleSet

#: The topic predicate standing in for XKG's textual triples.
HAS_TOPIC = "xkg:hasTopic"


@dataclass(frozen=True)
class XKGConfig:
    """Generation knobs (defaults give a laptop-scale but non-trivial KG)."""

    n_domains: int = 8
    types_per_domain: int = 14
    n_entities: int = 2500
    types_per_entity: int = 5
    n_topics: int = 120
    topics_per_entity: int = 6
    n_queries: int = 65
    score_alpha: float = 1.1
    min_relaxations: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        if self.types_per_domain < self.min_relaxations + 1:
            raise DatasetError(
                "types_per_domain must exceed min_relaxations so every "
                "type can have enough relaxation candidates"
            )
        if self.n_queries < 1:
            raise DatasetError("n_queries must be >= 1")


def _make_type_families(config: XKGConfig) -> list[list[str]]:
    """One list of related type names per domain."""
    domains = name_series("domain", config.n_domains)
    return [
        [f"{domain}_type{j:02d}" for j in range(config.types_per_domain)]
        for domain in domains
    ]


def _assign_types(
    rng: np.random.Generator,
    config: XKGConfig,
    families: list[list[str]],
    entities: list[str],
) -> dict[str, list[str]]:
    """Give each entity a handful of types from (mostly) one domain.

    Drawing an entity's types from a single family with Zipf-weighted
    popularity creates exactly the overlap structure the miner needs:
    popular types inside a family share many instances (high relaxation
    weights), unpopular ones share few (low weights).
    """
    types_of: dict[str, list[str]] = {}
    family_weights = zipf_rank_weights(len(families), exponent=0.8)
    for entity in entities:
        family_index = int(rng.choice(len(families), p=family_weights))
        family = families[family_index]
        type_weights = zipf_rank_weights(len(family), exponent=1.0)
        n_types = int(rng.integers(2, config.types_per_entity + 1))
        chosen = weighted_sample_without_replacement(
            rng, family, type_weights, n_types
        )
        # A small chance of one cross-domain type keeps the miner honest
        # (overlap across families exists but is weak).
        if rng.random() < 0.1:
            other_index = int(rng.choice(len(families)))
            other_family = families[other_index]
            chosen.append(other_family[int(rng.integers(len(other_family)))])
        types_of[entity] = sorted(set(chosen))
    return types_of


def _assign_topics(
    rng: np.random.Generator,
    config: XKGConfig,
    entities: list[str],
) -> dict[str, list[str]]:
    """Topics cluster as well: each entity draws from a topic block."""
    topics = name_series("topic", config.n_topics)
    block_size = max(config.n_topics // 10, config.topics_per_entity + 2)
    topics_of: dict[str, list[str]] = {}
    for entity in entities:
        block_start = int(rng.integers(0, max(config.n_topics - block_size, 1)))
        block = topics[block_start:block_start + block_size]
        weights = zipf_rank_weights(len(block), exponent=0.9)
        n_topics = int(rng.integers(2, config.topics_per_entity + 1))
        topics_of[entity] = sorted(
            set(weighted_sample_without_replacement(rng, block, weights, n_topics))
        )
    return topics_of


def _build_graph(
    rng: np.random.Generator,
    config: XKGConfig,
    types_of: dict[str, list[str]],
    topics_of: dict[str, list[str]],
) -> KnowledgeGraph:
    graph = KnowledgeGraph(name="xkg")
    rows: list[tuple[str, str, str]] = []
    for entity, type_names in types_of.items():
        for type_name in type_names:
            rows.append((entity, RDF_TYPE, type_name))
    for entity, topic_names in topics_of.items():
        for topic in topic_names:
            rows.append((entity, HAS_TOPIC, topic))
    scores = zipf_scores(rng, len(rows), alpha=config.score_alpha)
    for (s, p, o), score in zip(rows, scores):
        graph.add(s, p, o, score=float(score))
    return graph


def _eligible_constants(
    rules: RuleSet, predicate: str, min_relaxations: int
) -> list[str]:
    """Object constants of *predicate* with enough mined relaxations."""
    eligible: list[str] = []
    for key in rules.domains():
        _, pred, obj = key
        if pred == predicate and obj is not None:
            pattern = TriplePattern(Variable("s"), predicate, obj)
            if rules.n_rules_for(pattern) >= min_relaxations:
                eligible.append(obj)
    return eligible


def _build_queries(
    rng: np.random.Generator,
    config: XKGConfig,
    graph: KnowledgeGraph,
    rules: RuleSet,
    types_of: dict[str, list[str]],
    topics_of: dict[str, list[str]],
) -> list[TriplePatternQuery]:
    """65 queries with 2–4 patterns, non-empty by construction.

    Each query is seeded from a real entity: its patterns are drawn from
    that entity's own types and topics (so the original query has at
    least one answer), restricted to constants with enough relaxations.
    """
    eligible_types = set(_eligible_constants(rules, RDF_TYPE, config.min_relaxations))
    eligible_topics = set(_eligible_constants(rules, HAS_TOPIC, config.min_relaxations))
    variable = Variable("s")
    entities = sorted(types_of)

    # Paper's mix: 2-, 3- and 4-pattern queries.  Split 65 ≈ 20/25/20.
    thirds = config.n_queries // 3
    sizes = (
        [2] * thirds
        + [3] * (config.n_queries - 2 * thirds)
        + [4] * thirds
    )

    queries: list[TriplePatternQuery] = []
    seen: set[frozenset[TriplePattern]] = set()
    attempts = 0
    entity_order = list(rng.permutation(len(entities)))
    position = 0
    for size in sizes:
        built = False
        while not built:
            attempts += 1
            if attempts > 50 * config.n_queries:
                raise DatasetError(
                    "could not build enough distinct queries; increase "
                    "entity count or lower min_relaxations"
                )
            entity = entities[entity_order[position % len(entities)]]
            position += 1
            usable_types = [
                t for t in types_of[entity] if t in eligible_types
            ]
            usable_topics = [
                t for t in topics_of.get(entity, []) if t in eligible_topics
            ]
            candidates = [
                TriplePattern(variable, RDF_TYPE, t) for t in usable_types
            ] + [
                TriplePattern(variable, HAS_TOPIC, t) for t in usable_topics
            ]
            if len(candidates) < size:
                continue
            chosen_indexes = rng.choice(len(candidates), size=size, replace=False)
            patterns = tuple(candidates[i] for i in sorted(chosen_indexes))
            key = frozenset(patterns)
            if key in seen:
                continue
            seen.add(key)
            queries.append(
                TriplePatternQuery(
                    patterns,
                    projection=(variable,),
                    name=f"xkg-q{len(queries):03d}",
                )
            )
            built = True
    return queries


def generate_xkg(config: XKGConfig | None = None) -> Workload:
    """Generate the XKG-like workload: KG, mined rules and 65 queries."""
    config = config or XKGConfig()
    rng = make_rng(config.seed)
    families = _make_type_families(config)
    entities = name_series("entity", config.n_entities)
    types_of = _assign_types(rng, config, families, entities)
    topics_of = _assign_topics(rng, config, entities)
    graph = _build_graph(rng, config, types_of, topics_of)

    type_rules = mine_object_relaxations(
        graph,
        RDF_TYPE,
        min_weight=0.02,
        max_rules_per_constant=max(config.min_relaxations + 5, 15),
    )
    topic_rules = mine_object_relaxations(
        graph,
        HAS_TOPIC,
        min_weight=0.02,
        max_rules_per_constant=max(config.min_relaxations + 5, 15),
    )
    rules = type_rules.merged_with(topic_rules)

    queries = _build_queries(rng, config, graph, rules, types_of, topics_of)
    return Workload(name="xkg", graph=graph, rules=rules, queries=queries)
