"""Quality metrics (§4.3): precision/recall, prediction ground truth,
score error.

Precision and recall coincide in the paper's setup (both divide the size
of the intersection of Spec-QP's top-k with the true top-k by k), so one
function serves both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pattern import TriplePattern
from repro.query.answer import Answer
from repro.query.query import TriplePatternQuery


def precision_at_k(
    approx: Sequence[Answer], truth: Sequence[Answer]
) -> float:
    """|approx ∩ truth| / |truth| over answer identities (bindings).

    Equals recall in this setting (same denominator).  Empty truth gives
    1.0 when the approximation is also empty, else 0.0.
    """
    truth_keys = {answer.bindings for answer in truth}
    if not truth_keys:
        return 1.0 if not approx else 0.0
    approx_keys = {answer.bindings for answer in approx}
    return len(approx_keys & truth_keys) / len(truth_keys)


@dataclass(frozen=True)
class ScoreError:
    """Average absolute rank-wise score deviation (Table 4).

    ``percent`` normalises the mean error by the query's maximum possible
    answer score (= number of triple patterns, since each normalised
    triple score is at most 1) — the convention behind the percentages in
    the paper's Table 4.
    """

    mean: float
    std: float
    percent: float


def score_error(
    approx: Sequence[Answer],
    truth: Sequence[Answer],
    n_patterns: int,
) -> ScoreError:
    """Rank-wise ``mean |score_approx_i - score_truth_i|`` with std.

    Ranks present in the truth but missing from the approximation count
    the full truth score as error (the approximation returned nothing at
    that rank).
    """
    if n_patterns < 1:
        raise ExperimentError(f"n_patterns must be >= 1, got {n_patterns}")
    if not truth:
        return ScoreError(0.0, 0.0, 0.0)
    deviations: list[float] = []
    for rank, true_answer in enumerate(truth):
        approx_score = approx[rank].score if rank < len(approx) else 0.0
        deviations.append(abs(approx_score - true_answer.score))
    mean = sum(deviations) / len(deviations)
    variance = sum((d - mean) ** 2 for d in deviations) / len(deviations)
    return ScoreError(
        mean=mean,
        std=math.sqrt(variance),
        percent=100.0 * mean / n_patterns,
    )


def required_relaxations(
    graph: KnowledgeGraph,
    query: TriplePatternQuery,
    truth: Sequence[Answer],
) -> frozenset[int]:
    """Ground truth for Table 3: which pattern slots *required* relaxation.

    A slot requires relaxation when at least one true top-k answer's
    bindings do not satisfy the slot's original pattern — i.e. that answer
    could only have been produced through a relaxation of the slot.
    """
    required: set[int] = set()
    for index, pattern in enumerate(query.patterns):
        for answer in truth:
            if not _answer_satisfies(graph, pattern, answer):
                required.add(index)
                break
    return frozenset(required)


def _answer_satisfies(
    graph: KnowledgeGraph, pattern: TriplePattern, answer: Answer
) -> bool:
    """Does *answer* have a KG triple matching the original *pattern*?"""
    bound = pattern.substitute(answer.as_dict())
    if bound.variables:
        # The answer does not bind every variable of the pattern (possible
        # under projection); fall back to a match-list probe.
        return any(
            bound.matches(triple) for triple in graph.match_list(bound).triples
        )
    return bound.terms in graph  # type: ignore[comparison-overlap]


def prediction_is_exact(
    predicted: Sequence[int] | frozenset[int], required: frozenset[int]
) -> bool:
    """Table 3's criterion: Spec-QP identified *exactly* the required set."""
    return frozenset(predicted) == required
