"""Plain-text table rendering for the experiment harness.

Every table/figure runner produces rows of strings; this module lines
them up.  Nothing fancy — the goal is diff-able, paper-comparable output.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in string_rows)
    return "\n".join(lines)


def fmt_seconds(value: float) -> str:
    """Milliseconds under a second, else seconds — compact and unambiguous."""
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    return f"{value:.2f}s"


def fmt_ratio(numerator: float, denominator: float) -> str:
    """``numerator/denominator`` as e.g. '3.2x'; '-' when undefined."""
    if denominator <= 0:
        return "-"
    return f"{numerator / denominator:.2f}x"
